//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `read()` / `write()` / `lock()` return guards directly instead of
//! `Result`s. A poisoned std lock means a writer panicked mid-critical
//! section; matching parking_lot semantics, we propagate the inner data
//! anyway rather than surfacing the poison.

use std::sync::{self, LockResult};

/// Reader–writer lock with parking_lot's panic-transparent guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> RwLock<T> {
    /// New lock owning `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }
}

/// Mutex with parking_lot's panic-transparent guard.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex owning `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Exclusive guard.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
