//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) API subset of `rand 0.9` that the workspace uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `random`, `random_range` and `random_bool`, and slice `choose` via
//! [`seq::IndexedRandom`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, which is all the synthetic-web generators require. It is NOT
//! the same stream as upstream `StdRng` (ChaCha12) and is not cryptographic.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range by [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as i128) - (low as i128); // fits: all ints <= 64 bit
                if span == (u64::MAX as i128) {
                    return rng.next_u64() as $t;
                }
                let span = (span + 1) as u64;
                // Debiased multiply-shift (Lemire); bias is < 2^-64 per draw
                // without rejection, good enough for synthetic data.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as i128) + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + RangeStep> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Exclusive-upper-bound adjustment for `Range<T>` sampling.
pub trait RangeStep {
    /// The largest value strictly below `self`.
    fn step_down(self) -> Self;
}

macro_rules! impl_range_step_int {
    ($($t:ty),*) => {$(
        impl RangeStep for $t {
            fn step_down(self) -> Self {
                self.checked_sub(1).expect("random_range: empty range")
            }
        }
    )*};
}

impl_range_step_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeStep for f64 {
    fn step_down(self) -> Self {
        self // half-open float ranges sample [low, high) closely enough
    }
}

/// Values producible by [`Rng::random`] from uniform bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (`f64` in `[0, 1)`, full-width integers).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named RNG types.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence sampling helpers.
    use super::{Rng, RngCore};

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng as DefaultStdRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(1..=28u8);
            assert!((1..=28).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        use super::seq::IndexedRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
