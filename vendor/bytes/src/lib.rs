//! Offline vendored stand-in for the `bytes` crate.
//!
//! Provides `Bytes`, `BytesMut` and the `Buf`/`BufMut` trait subset the
//! index's posting-list codec uses. `Bytes` here is a plain owned buffer
//! with a cursor rather than a refcounted slice — the codec only ever
//! consumes buffers front to back, so zero-copy sharing buys nothing.

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Consume and return one byte. Panics if empty.
    fn get_u8(&mut self) -> u8;
}

/// Append sink for bytes.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
}

/// Immutable byte buffer with a consume cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Length in bytes (unconsumed portion).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if fully consumed or empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = BytesMut::with_capacity(4);
        m.put_u8(7);
        m.put_u8(9);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 7);
        assert!(b.has_remaining());
        assert_eq!(b.get_u8(), 9);
        assert!(!b.has_remaining());
    }

    #[test]
    fn from_static_and_vec() {
        let b = Bytes::from_static(&[1, 2]);
        assert_eq!(b.as_slice(), &[1, 2]);
        let v: Bytes = vec![3].into();
        assert_eq!(v.len(), 1);
    }
}
