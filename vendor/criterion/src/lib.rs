//! Offline vendored stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! `sample_size`, and [`Bencher::iter`]. Timing is plain wall-clock with an
//! adaptive iteration count per sample; results print as min/mean/max per
//! iteration. There is no statistical analysis, HTML report, or baseline
//! comparison. Honors `cargo bench -- <filter>` substring filtering and a
//! `WOC_BENCH_SAMPLE_SIZE` env override (useful to keep CI smoke runs fast).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work; benches here mostly use
/// `std::hint::black_box` directly.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall-clock time per sample; iteration count adapts to reach it.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // skip harness flags like `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let default_sample_size = std::env::var("WOC_BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Self {
            filter,
            default_sample_size,
        }
    }
}

impl Criterion {
    /// Run one benchmark under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.default_sample_size;
        self.run(id, samples, f);
        self
    }

    /// Start a named group; group ids render as `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            per_iter: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// Scoped benchmark group returned by [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run(&full, samples, f);
        self
    }

    /// End the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`, adapting iterations per sample to [`TARGET_SAMPLE`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and size the batch from a single timed call.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.per_iter.push(start.elapsed() / iters);
        }
    }

    fn report(&self, id: &str) {
        if self.per_iter.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let min = self.per_iter.iter().min().unwrap();
        let max = self.per_iter.iter().max().unwrap();
        let mean = self.per_iter.iter().sum::<Duration>() / self.per_iter.len() as u32;
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("test/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        sum_bench(&mut c);
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(21) * 2));
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz_nomatch".into()),
            default_sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("test/other", |_b| ran = true);
        assert!(!ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
