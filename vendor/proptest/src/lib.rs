//! Offline vendored stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use: `proptest!`, `prop_assert*`, `prop_oneof!`, `Strategy` with
//! `prop_map`/`prop_recursive`/`boxed`, integer-range and regex-string
//! strategies, and `prop::collection` / `prop::option`. Differences from
//! upstream: cases are sampled from a deterministic per-test seed (no
//! persisted failure files), there is **no shrinking** (the failing case
//! index and seed are printed instead), and the regex-string strategy
//! implements only the pattern subset found in this repo's tests
//! (character classes, literal alternations, `.`, `\PC`, `{m,n}` repeats).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    /// Recursive structures: at each of `depth` levels, generation picks
    /// the leaf (`self`) or one step of `branch` built over the inner
    /// strategy. `_size_hint` and `_items_hint` are accepted for upstream
    /// signature compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size_hint: u32,
        _items_hint: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            let shallow = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.random_bool(0.5) {
                    shallow.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            }));
        }
        current
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $n:tt),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

pub mod regex {
    //! Pattern-subset string generation for `&str` strategies.

    use super::TestRng;
    use rand::Rng;

    enum Atom {
        /// `[a-z0-9 ]`: inclusive char ranges (singletons are `(c, c)`).
        Class(Vec<(char, char)>),
        /// `(foo|bar)`: literal alternatives.
        Alt(Vec<String>),
        /// `.` or `\PC`: any printable char from [`POOL`].
        Any,
        /// A literal character.
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Sample pool for `.` / `\PC`: printable ASCII plus a few multi-byte
    /// chars so byte-offset handling gets exercised.
    const EXTRA: &[char] = &['é', 'ß', 'λ', '→', '中', '界', '€', 'Ω'];

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // ']'
                    Atom::Class(ranges)
                }
                '(' => {
                    i += 1;
                    let mut alts = vec![String::new()];
                    while i < chars.len() && chars[i] != ')' {
                        if chars[i] == '|' {
                            alts.push(String::new());
                        } else {
                            alts.last_mut().unwrap().push(chars[i]);
                        }
                        i += 1;
                    }
                    assert!(i < chars.len(), "unterminated group in {pattern:?}");
                    i += 1; // ')'
                    Atom::Alt(alts)
                }
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    // Only `\PC` (printable chars) appears in this repo.
                    assert!(
                        chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                        "unsupported escape in pattern {pattern:?}"
                    );
                    i += 3;
                    Atom::Any
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repeat")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let (lo, hi) = ranges[rng.random_range(0..ranges.len())];
        char::from_u32(rng.random_range(lo as u32..=hi as u32)).unwrap_or(lo)
    }

    fn sample_any(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally multi-byte.
        if rng.random_bool(0.12) {
            EXTRA[rng.random_range(0..EXTRA.len())]
        } else {
            char::from_u32(rng.random_range(0x20u32..0x7f)).unwrap()
        }
    }

    /// Generate one string matching `pattern` (subset grammar).
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.random_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                    Atom::Alt(alts) => out.push_str(&alts[rng.random_range(0..alts.len())]),
                    Atom::Any => out.push(sample_any(rng)),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod prop {
    //! The `prop::` helper namespace.

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Vec of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy produced by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// BTreeMap of `key → value` with approximately `size` entries
        /// (duplicate keys collapse, as upstream).
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: std::ops::Range<usize>,
        ) -> BTreeMapStrategy<K, V> {
            BTreeMapStrategy { key, value, size }
        }

        /// Strategy produced by [`btree_map`].
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: std::ops::Range<usize>,
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = std::collections::BTreeMap<K::Value, V::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.random_range(self.size.clone());
                (0..len)
                    .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                    .collect()
            }
        }
    }

    pub mod option {
        //! Option strategies.
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// `None` half the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy produced by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.random_bool(0.5) {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Cases per property (upstream default is 256; 64 keeps CI fast while
/// still exercising the generators).
pub const CASES: u64 = 64;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: runs [`CASES`] deterministic cases, printing the
/// case index and seed before propagating any panic.
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, mut body: F) {
    for case in 0..CASES {
        let seed = fnv1a(name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("proptest property `{name}` failed at case {case} (seed {seed:#x})");
            resume_unwind(payload);
        }
    }
}

/// Define property tests: `proptest! { #[test] fn p(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Assert within a property (panics; no shrink/resume semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::regex::generate("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let z = crate::regex::generate("[0-9]{5}", &mut rng);
            assert_eq!(z.len(), 5);
            assert!(z.chars().all(|c| c.is_ascii_digit()));

            let t = crate::regex::generate("(div|span|p)", &mut rng);
            assert!(["div", "span", "p"].contains(&t.as_str()));

            let any = crate::regex::generate("\\PC{0,10}", &mut rng);
            assert!(any.chars().count() <= 10);

            let cls = crate::regex::generate("[<>a-z\"=/ ]{0,20}", &mut rng);
            assert!(cls
                .chars()
                .all(|c| "<>\"=/ ".contains(c) || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn strategies_compose() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        let s = prop_oneof![
            (0u8..4).prop_map(|x| x as usize),
            (0u8..2, 0u8..2).prop_map(|(a, b)| (a + b) as usize),
        ];
        for _ in 0..100 {
            assert!(s.sample(&mut rng) < 4);
        }
        let v = prop::collection::vec(0u32..5, 2..4);
        for _ in 0..50 {
            let xs = v.sample(&mut rng);
            assert!((2..4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
        let o = prop::option::of(0u8..3);
        let some = (0..100).filter(|_| o.sample(&mut rng).is_some()).count();
        assert!((20..80).contains(&some));
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn max_leaf(t: &Tree) -> u8 {
            match t {
                Tree::Leaf(n) => *n,
                Tree::Node(kids) => kids.iter().map(max_leaf).max().unwrap_or(0),
            }
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 5 + 1);
            assert!(max_leaf(&t) < 8);
        }
    }

    proptest! {
        #[test]
        fn macro_binds_multiple_args(a in 0u8..10, s in "[a-c]{2}", pair in (0u8..3, 1u8..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(s.len(), 2);
            prop_assert_ne!(pair.1, 0);
        }
    }
}
