//! Offline vendored stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate supplies the
//! serialization surface the workspace uses: `#[derive(Serialize,
//! Deserialize)]` and the two traits, routed through an owned JSON-like
//! [`Value`] model instead of serde's zero-copy visitor machinery. The
//! companion vendored `serde_json` renders/parses [`Value`] as JSON text.
//!
//! Fidelity notes: externally-tagged enums, transparent newtypes and
//! string-keyed maps follow serde_json's conventions, so snapshots written
//! by the real serde_json of the same shapes parse fine and vice versa.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Owned serialization tree (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer beyond `i64` or naturally unsigned.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as object entries, if an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow as array elements, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// "expected X while reading Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} in {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Encode `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Decode from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a required object field (derive-generated code calls this).
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("{context}.{name}: {e}"))),
        None => Err(Error(format!("missing field {context}.{name}"))),
    }
}

// --- primitive impls -----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(Error::expected("integer", other.kind())),
                };
                <$t>::try_from(wide).map_err(|_| Error(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(Error::expected("integer", other.kind())),
                };
                <$t>::try_from(wide).map_err(|_| Error(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

// --- container impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let expect = [$($n,)+].len();
                if items.len() != expect {
                    return Err(Error(format!(
                        "tuple length mismatch: expected {expect}, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Encode a map key as the string serde_json would use.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error(format!(
            "map key must be scalar, got {}",
            other.kind()
        ))),
    }
}

/// Decode a map key encoded by [`key_to_string`].
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error(format!("unparseable map key {s:?}")))
}

macro_rules! impl_serde_map {
    ($map:ident, $($bound:tt)+) => {
        impl<K: Serialize + $($bound)+, V: Serialize> Serialize for $map<K, V> {
            fn to_value(&self) -> Value {
                let mut entries = Vec::with_capacity(self.len());
                for (k, v) in self {
                    let key = key_to_string(k.to_value())
                        .expect("map keys must serialize to scalars");
                    entries.push((key, v.to_value()));
                }
                Value::Object(entries)
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let obj = v.as_object().ok_or_else(|| Error::expected("object", "map"))?;
                let mut out = Self::default();
                for (k, item) in obj {
                    out.insert(key_from_string(k)?, V::from_value(item)?);
                }
                Ok(out)
            }
        }
    };
}

impl_serde_map!(HashMap, Eq + std::hash::Hash);
impl_serde_map!(BTreeMap, Ord);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<String> = None;
        assert_eq!(Option::<String>::from_value(&o.to_value()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert(5u64, "five".to_string());
        assert_eq!(
            HashMap::<u64, String>::from_value(&m.to_value()).unwrap(),
            m
        );
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()).unwrap(), t);
    }
}
