//! Offline vendored stand-in for `crossbeam`'s scoped threads.
//!
//! Delegates to `std::thread::scope` (stable since 1.63), exposing the
//! `crossbeam::scope(|s| { s.spawn(|_| …) })` call shape the pipeline uses.
//! Only the scoped-thread API is provided; channels, deques and epoch GC are
//! absent because nothing here needs them.

use std::any::Any;
use std::marker::PhantomData;
use std::thread;

/// Error payload of a panicked scope (mirrors `std::thread::Result`).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure; spawns borrowing workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Join handle of a scoped worker.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker that may borrow from the enclosing scope. The closure
    /// receives the scope (crossbeam's signature) so workers can spawn
    /// sub-workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            _marker: PhantomData,
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the worker and return its result.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// Run `f` with a scope in which borrowing worker threads can be spawned.
/// All workers are joined before `scope` returns. Returns `Err` only if `f`
/// itself panics — worker panics surface through their `join()` calls, or
/// abort the scope exactly as with `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_workers_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
