//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored value-model `serde` without `syn`/`quote` (unavailable offline):
//! the item is parsed with a hand-rolled token walker and the impl is
//! emitted as source text. Supported shapes are exactly what this workspace
//! derives on — non-generic structs (named, tuple, unit) and enums with
//! unit/newtype/tuple/struct variants. `#[serde(...)]` attributes are not
//! supported and generics are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next(); // '#'
                         // Outer attribute body is a bracket group.
            if matches!(self.peek(), Some(TokenTree::Group(_))) {
                self.next();
            }
        }
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            // pub(crate) / pub(super) / pub(in …)
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("derive parser: expected {what}, got {other:?}"),
        }
    }

    /// Skip a type (or discriminant expression) up to a top-level comma,
    /// tracking `<` / `>` nesting. The comma itself is consumed.
    fn skip_past_top_level_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        fields.push(c.expect_ident("field name"));
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive parser: expected ':' after field, got {other:?}"),
        }
        c.skip_past_top_level_comma();
    }
    fields
}

fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut arity = 0usize;
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        arity += 1;
        c.skip_past_top_level_comma();
    }
    arity
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident("struct/enum keyword");
    let name = c.expect_ident("type name");
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("derive parser: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive parser: expected enum body, got {other:?}"),
            };
            let mut vc = Cursor::new(body);
            let mut variants = Vec::new();
            loop {
                vc.skip_attributes();
                if vc.peek().is_none() {
                    break;
                }
                let vname = vc.expect_ident("variant name");
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        vc.next();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(parse_tuple_arity(g.stream()));
                        vc.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                // Discriminant (`= expr`) or the separating comma.
                vc.skip_past_top_level_comma();
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Item::Enum { name, variants }
        }
        other => panic!("derive parser: expected struct or enum, got {other}"),
    }
}

// --- Serialize codegen ---------------------------------------------------

fn serialize_named(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{access_prefix}{f}))")
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => serialize_named(fs, "self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let inner = serialize_named(fs, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}\n",
                arms.join("\n")
            )
        }
    }
}

// --- Deserialize codegen -------------------------------------------------

fn deserialize_named(type_path: &str, fields: &[String], obj_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field({obj_expr}, \"{f}\", \"{type_path}\")?,"))
        .collect();
    format!("{type_path} {{ {} }}", inits.join(" "))
}

fn deserialize_tuple_items(n: usize, arr_expr: &str, context: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{arr_expr}[{i}])?"))
        .collect();
    format!(
        "{{\n\
             let arr = {arr_expr};\n\
             if arr.len() != {n} {{\n\
                 return Err(::serde::Error(format!(\n\
                     \"{context}: expected {n} elements, got {{}}\", arr.len())));\n\
             }}\n\
             ({})\n\
         }}",
        items.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
                     Ok({})",
                    deserialize_named(name, fs, "obj")
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => format!(
                    "let arr = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                     let items = {};\n\
                     Ok({name}(items.0{}))",
                    deserialize_tuple_items(*n, "arr", name),
                    (1..*n).map(|i| format!(", items.{i}")).collect::<String>()
                ),
                Fields::Unit => format!("let _ = v; Ok({name})"),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("::serde::Value::Str(s) if s == \"{vn}\" => Ok({name}::{vn}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    let path = format!("{name}::{vn}");
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => Ok({path}(::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => format!(
                            "\"{vn}\" => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{path}\"))?;\n\
                                 let items = {};\n\
                                 Ok({path}(items.0{}))\n\
                             }}",
                            deserialize_tuple_items(*n, "arr", &path),
                            (1..*n).map(|i| format!(", items.{i}")).collect::<String>()
                        ),
                        Fields::Named(fs) => format!(
                            "\"{vn}\" => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{path}\"))?;\n\
                                 Ok({})\n\
                             }}",
                            deserialize_named(&path, fs, "obj")
                        ),
                    }
                })
                .collect();
            let payload_match = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n{}\n\
                             other => Err(::serde::Error(format!(\"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}",
                    payload_arms.join("\n")
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             {}\n\
                             {}\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"invalid {name} value: {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}\n",
                unit_arms.join("\n"),
                payload_match
            )
        }
    }
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
