//! Offline vendored stand-in for `serde_json`: renders and parses the
//! vendored `serde` [`Value`] model as JSON text.
//!
//! Supports the full JSON grammar (string escapes incl. `\uXXXX` surrogate
//! pairs, exponent floats, nested containers). Floats are written with
//! Rust's shortest round-trip formatting; non-finite floats are rejected at
//! serialization time like real serde_json.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// --- writer --------------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error("JSON cannot represent non-finite floats".into()));
            }
            // `{:?}` is Rust's shortest round-trip float form; ensure it
            // still looks like a JSON number (always has . or e).
            let s = format!("{x:?}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + (((hi as u32) - 0xd800) << 10)
                                    + ((lo as u32) - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "42", "-7", "\"hi\""] {
            let v = parse_value_complete(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0).unwrap();
            assert_eq!(out, json);
        }
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.5, -3.25, 1e10, 0.1, 123.456] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_escape_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{08}\u{0c}\u{1f}héllo→";
        let s = to_string(tricky).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, tricky);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let json = "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}";
        let v = parse_value_complete(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0).unwrap();
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_is_parseable() {
        let v: Vec<u32> = vec![1, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<u32> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_complete("{\"a\":}").is_err());
        assert!(parse_value_complete("[1,]").is_err());
        assert!(parse_value_complete("12 34").is_err());
        assert!(parse_value_complete("").is_err());
    }
}
