//! Integration check for experiments E1–E4: every Section-3 statistic the
//! paper reports is reproduced, at full log volume, within tight tolerance.
//! (The bench binary `usage_studies` prints the full tables; this test pins
//! the numbers in CI.)

use web_of_concepts::prelude::*;
use web_of_concepts::usage::{analyze, AGGREGATOR_HOST};

#[test]
fn section3_statistics_within_tolerance() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let config = UsageConfig {
        aggregator_queries: 10_000,
        homepage_queries: 10_000,
        trails: 10_000,
        ..UsageConfig::default()
    };
    let log = simulate(&world, &corpus, &config);

    // E1 — "59% are biz URLs … 19% are search URLs … 11% are c URLs".
    let e1 = analyze::click_categories(&log, AGGREGATOR_HOST);
    assert!((e1.biz - 0.59).abs() < 0.02, "biz {}", e1.biz);
    assert!((e1.search - 0.19).abs() < 0.02, "search {}", e1.search);
    assert!(
        (e1.category - 0.11).abs() < 0.02,
        "category {}",
        e1.category
    );

    // E2 — "menu (3%), coupons (1.8%), online, weekly specials,
    // locations (1.5%)".
    let (homepages, host_map) = analyze::homepage_inventory(&world);
    let names = analyze::name_location_tokens(&world);
    let tally = analyze::attribute_queries(&log, &homepages, &names);
    let rate = |tok: &str| {
        tally
            .iter()
            .find(|(t, _)| t == tok)
            .map(|(_, r)| *r)
            .unwrap_or(0.0)
    };
    assert!((rate("menu") - 0.030).abs() < 0.01, "menu {}", rate("menu"));
    assert!(
        (rate("coupons") - 0.018).abs() < 0.008,
        "coupons {}",
        rate("coupons")
    );
    assert!(
        (rate("locations") - 0.015).abs() < 0.008,
        "locations {}",
        rate("locations")
    );
    // Long-tail attributes surface too (paper: nutrition, to go, delivery,
    // careers).
    for tok in ["nutrition", "delivery", "careers"] {
        assert!(rate(tok) > 0.0, "long-tail token {tok} absent");
    }
    // And the top attribute is menu, as in the paper.
    assert_eq!(tally[0].0, "menu");

    // E3 — "more than 59% … clicked on at least one other URL …
    // 35% … at least two".
    let e3 = analyze::co_clicks(&log, AGGREGATOR_HOST);
    assert!(
        (e3.at_least_one_other - 0.59).abs() < 0.03,
        "{}",
        e3.at_least_one_other
    );
    assert!(
        (e3.at_least_two_others - 0.35).abs() < 0.03,
        "{}",
        e3.at_least_two_others
    );

    // E4 — "about 42% of the homepage visits are immediately preceded by a
    // query … 11.5% … location/address … 9% … menu … 1% … coupons …
    // about 10.5% of the user trails contain more than one distinct
    // instance".
    let host_of = move |url: &str| -> Option<String> {
        let host = web_of_concepts::webgen::page::url_host(url).to_string();
        host_map.contains_key(&host).then_some(host)
    };
    let cls = analyze::TrailClassifier {
        homepages: &homepages,
        host_of: &host_of,
    };
    let e4 = analyze::trails(&log, &cls);
    assert!(
        (e4.search_preceded - 0.42).abs() < 0.03,
        "{}",
        e4.search_preceded
    );
    assert!(
        (e4.next_location - 0.115).abs() < 0.025,
        "{}",
        e4.next_location
    );
    assert!((e4.next_menu - 0.09).abs() < 0.025, "{}", e4.next_menu);
    assert!((e4.next_coupons - 0.01).abs() < 0.01, "{}", e4.next_coupons);
    assert!(
        (e4.multi_instance_trails - 0.105).abs() < 0.025,
        "{}",
        e4.multi_instance_trails
    );
}
