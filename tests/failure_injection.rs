//! Failure injection (DESIGN.md §8): malformed HTML, adversarial templates,
//! contradictory sources, schema-violating extractions, recrawl churn. The
//! system must stay up, stay consistent, and degrade gracefully.

use web_of_concepts::core::{build, reconcile, AssocKind, PipelineConfig};
use web_of_concepts::extract::lists::{extract_lists, ConceptProfile};
use web_of_concepts::prelude::*;
use web_of_concepts::webgen::dom::parse_html;
use web_of_concepts::webgen::{Page, PageKind, PageTruth};

fn page_from_html(url: &str, html: &str) -> Page {
    Page {
        url: url.to_string(),
        site: web_of_concepts::webgen::page::url_host(url).to_string(),
        title: "injected".into(),
        dom: parse_html(html),
        truth: PageTruth {
            kind: PageKind::Article,
            about: None,
            records: vec![],
            mentions: vec![],
        },
    }
}

#[test]
fn pipeline_survives_malformed_pages() {
    let world = World::generate(WorldConfig::tiny(501));
    let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(41));
    let garbage = [
        "<div><p>unclosed <b>every <i>where",
        "</stray></tags><div class=>< <<<< >>>",
        "",
        "<table><tr><td>a<tr></table></td>",
        "<ul><li>$<li>$$<li>$$$</ul>",
        &"<div>".repeat(500),
    ];
    for (i, html) in garbage.iter().enumerate() {
        corpus.add(page_from_html(
            &format!("http://broken.example.com/p{i}"),
            html,
        ));
    }
    // Must not panic, and the clean content must still come through.
    let woc = build(&corpus, &PipelineConfig::default());
    assert!(woc.store.live_count() > 0);
    let hits = woc
        .record_index
        .query("gochi", 3, |n| woc.registry.id_of(n));
    assert!(!hits.is_empty(), "clean records still built");
}

#[test]
fn adversarial_list_page_yields_no_false_records() {
    // A page whose repeating structure imitates a listing but whose rows
    // carry no conforming domain fields must not be claimed.
    let html = r#"<html><body><ul>
        <li><span>lorem ipsum dolor</span></li>
        <li><span>sit amet consectetur</span></li>
        <li><span>adipiscing elit sed</span></li>
        <li><span>do eiusmod tempor</span></li>
    </ul></body></html>"#;
    let page = page_from_html("http://spam.example.com/", html);
    let recs = extract_lists(&page, &ConceptProfile::standard());
    assert!(
        recs.is_empty(),
        "no profile should claim a field-free list, got {recs:?}"
    );
}

#[test]
fn contradictory_sources_reconcile_to_corroborated_value() {
    use web_of_concepts::lrec::{AttrValue, Lrec, Provenance};
    let (registry, concepts) = web_of_concepts::lrec::domains::standard_registry();
    let schema = registry.schema(concepts.restaurant).unwrap();
    let mut rec = Lrec::new(LrecId(1), concepts.restaurant);
    // Two sources agree, one (stale site) contradicts (§7.3: "inconsistencies
    // crop up with websites containing outdated information").
    rec.add(
        "zip",
        AttrValue::Zip("95014".into()),
        Provenance::extracted("http://a/", "x", 0.7, Tick(1)),
    );
    rec.add(
        "zip",
        AttrValue::Zip("95014".into()),
        Provenance::extracted("http://b/", "x", 0.7, Tick(1)),
    );
    rec.add(
        "zip",
        AttrValue::Zip("99999".into()),
        Provenance::extracted("http://stale/", "x", 0.8, Tick(1)),
    );
    let recon = reconcile(&rec, schema);
    let kept = &recon.kept.iter().find(|(k, _)| k == "zip").unwrap().1;
    assert_eq!(kept.len(), 1, "cardinality One enforced");
    assert_eq!(
        kept[0].entry.value,
        AttrValue::Zip("95014".into()),
        "two independent 0.7 sources outweigh one 0.8 source (noisy-or)"
    );
    assert_eq!(recon.conflicts.len(), 1);
    assert_eq!(recon.conflicts[0].losing_value, "99999");
}

#[test]
fn recrawl_with_vanished_pages_is_safe() {
    let world = World::generate(WorldConfig::tiny(502));
    let cfg = CorpusConfig::tiny(42);
    let corpus_v1 = generate_corpus(&world, &cfg);
    let mut woc = build(&corpus_v1, &PipelineConfig::default());
    // The new crawl lost half the pages (dead site, crawler budget).
    let mut corpus_v2 = WebCorpus::new();
    for (i, p) in corpus_v1.pages().iter().enumerate() {
        if i % 2 == 0 {
            corpus_v2.add(p.clone());
        }
    }
    let report = web_of_concepts::core::recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(50));
    // Unchanged pages are not reprocessed; vanished pages don't tear records
    // down (best-effort persistence, the paper's "pay as you go").
    assert_eq!(report.pages_reprocessed, 0);
    assert!(woc.store.live_count() > 0);
}

#[test]
fn duplicate_source_pages_do_not_duplicate_records() {
    // The same biz page served under two URLs (tracking params, mirrors):
    // entity resolution must fold the two extractions together.
    let world = World::generate(WorldConfig::tiny(503));
    let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(43));
    let biz = corpus
        .pages()
        .iter()
        .find(|p| p.truth.kind == PageKind::AggregatorBiz)
        .unwrap()
        .clone();
    let mut mirror = biz.clone();
    mirror.url = format!("{}?ref=mirror", biz.url);
    corpus.add(mirror);
    let woc = build(&corpus, &PipelineConfig::default());
    let about = biz.truth.about.unwrap();
    let truth_name = world.attr(about, "name");
    // Count canonical restaurants whose name matches this entity.
    let matches = woc
        .records_of(woc.registry.id_of("restaurant").unwrap())
        .into_iter()
        .filter(|r| {
            woc_textkit::metrics::name_similarity(
                &r.best_string("name").unwrap_or_default(),
                &truth_name,
            ) > 0.9
        })
        .count();
    assert_eq!(
        matches, 1,
        "mirror page must fold into one canonical record"
    );
}

#[test]
fn empty_corpus_builds_empty_web() {
    let corpus = WebCorpus::new();
    let woc = build(&corpus, &PipelineConfig::default());
    assert_eq!(woc.store.live_count(), 0);
    assert!(woc.record_index.is_empty());
    let res = web_of_concepts::apps::augmented_search(&woc, "anything", 5);
    assert!(res.concept_box.is_none());
    assert!(res.results.is_empty());
}

#[test]
fn serving_path_survives_garbage_and_excludes_violating_records() {
    use web_of_concepts::lrec::{AttrValue, Provenance};
    use web_of_concepts::serve::{ConceptServer, Response, ServeConfig};

    // A corpus salted with garbage pages (same set the pipeline test uses).
    let world = World::generate(WorldConfig::tiny(505));
    let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(45));
    let garbage = [
        "<div><p>unclosed <b>every <i>where",
        "</stray></tags><div class=>< <<<< >>>",
        "<ul><li>$<li>$$<li>$$$</ul>",
        &"<span>".repeat(300),
    ];
    for (i, html) in garbage.iter().enumerate() {
        corpus.add(page_from_html(
            &format!("http://broken.example.com/s{i}"),
            html,
        ));
    }
    let mut woc = build(&corpus, &PipelineConfig::default());

    // Inject a record with *hard* schema violations straight into the built
    // web — a restaurant whose zip is the wrong kind and over cardinality —
    // and index it, as if a rogue extraction had slipped through.
    let restaurant = woc.registry.id_of("restaurant").unwrap();
    let prov = Provenance::extracted("http://broken.example.com/s0", "x", 0.9, Tick(1));
    let bad_id = woc.store.insert(restaurant, Tick(1), |rec| {
        rec.add("name", AttrValue::Text("glitchporium".into()), prov.clone());
        rec.add("zip", AttrValue::Text("not a zip".into()), prov.clone());
        rec.add("zip", AttrValue::Text("also wrong".into()), prov.clone());
    });
    let bad_rec = woc.store.latest(bad_id).unwrap().clone();
    woc.record_index.add(&bad_rec);

    // Strict serving: schema-violating records must not surface.
    let strict = ConceptServer::new(
        woc.clone(),
        ServeConfig {
            exclude_nonconforming: true,
            ..ServeConfig::default()
        },
    );
    let answer = strict.search("glitchporium", 10);
    let Response::Search(hits) = answer.value.as_ref() else {
        panic!("wrong response variant");
    };
    assert!(
        hits.iter().all(|h| h.id != bad_id),
        "hard-violating record leaked through strict serving: {hits:?}"
    );
    // Clean records still serve, across every endpoint, without panicking.
    let Response::Search(clean) = strict.search("gochi cupertino", 5).value.as_ref().clone() else {
        panic!("wrong response variant");
    };
    assert!(!clean.is_empty(), "clean content must still be servable");
    let _ = strict.concept_box("glitchporium");
    let _ = strict.recommend("glitchporium", 3);

    // Default (loose) serving tolerates the record — the exclusion is an
    // explicit serving policy, not data loss.
    let loose = ConceptServer::new(woc, ServeConfig::default());
    let answer = loose.search("glitchporium", 10);
    let Response::Search(hits) = answer.value.as_ref() else {
        panic!("wrong response variant");
    };
    assert!(
        hits.iter().any(|h| h.id == bad_id),
        "loose serving keeps the record findable"
    );
}

#[test]
fn schema_violations_are_reported_not_fatal() {
    let world = World::generate(WorldConfig::tiny(504));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(44));
    let woc = build(&corpus, &PipelineConfig::default());
    let mut violations = 0usize;
    for id in woc.store.live_ids() {
        let rec = woc.store.latest(id).unwrap();
        if let Some(schema) = woc.registry.schema(rec.concept()) {
            violations += schema.check(rec).len();
        }
    }
    // Violations exist (the web is noisy) but every record remains usable
    // and associated with its sources.
    for id in woc.store.live_ids().into_iter().take(50) {
        assert!(woc.store.latest(id).is_some());
        let has_source = !woc
            .web
            .docs_of_kind(id, AssocKind::ExtractedFrom)
            .is_empty();
        assert!(has_source || !woc.lineage.nodes_of_record(id).is_empty());
    }
    // Sanity: the loose model admits them rather than dropping records.
    let _ = violations;
}
