//! End-to-end integration: world → corpus → web of concepts → applications,
//! with quality assertions against ground truth (DESIGN.md §8).

use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

use web_of_concepts::apps::{self, augmented_search, concept_search, TransitionEngine};
use web_of_concepts::core::AssocKind;
use web_of_concepts::prelude::*;
use web_of_concepts::webgen::PageKind;

struct Setup {
    world: World,
    corpus: WebCorpus,
    woc: WebOfConcepts,
}

fn setup() -> &'static Setup {
    static S: OnceLock<Setup> = OnceLock::new();
    S.get_or_init(|| {
        let world = World::generate(WorldConfig::default());
        let corpus = generate_corpus(&world, &CorpusConfig::default());
        let woc = build(&corpus, &PipelineConfig::default());
        Setup { world, corpus, woc }
    })
}

/// Map each canonical restaurant record to the world entity most of its
/// source pages are about.
fn canonical_to_world(s: &Setup) -> HashMap<LrecId, LrecId> {
    let mut votes: HashMap<LrecId, HashMap<LrecId, usize>> = HashMap::new();
    for page in s.corpus.pages() {
        for tr in &page.truth.records {
            if tr.concept != s.world.concepts.restaurant {
                continue;
            }
            let truth_name = tr.field("name").unwrap_or_default();
            for (rec, kind) in s.woc.web.records_of(&page.url) {
                if *kind != AssocKind::ExtractedFrom {
                    continue;
                }
                let Some(canon) = s.woc.store.resolve(*rec) else {
                    continue;
                };
                let Some(r) = s.woc.store.latest(canon) else {
                    continue;
                };
                if r.concept() != s.woc.registry.id_of("restaurant").unwrap() {
                    continue;
                }
                // Attribute the vote only if the record plausibly renders
                // this truth row (multi-row pages yield several records).
                let rec_name = r.best_string("name").unwrap_or_default();
                if woc_textkit::metrics::name_similarity(&rec_name, truth_name) < 0.6 {
                    continue;
                }
                *votes
                    .entry(canon)
                    .or_default()
                    .entry(tr.entity)
                    .or_insert(0) += 1;
            }
        }
    }
    votes
        .into_iter()
        .map(|(c, v)| (c, v.into_iter().max_by_key(|&(_, n)| n).unwrap().0))
        .collect()
}

#[test]
fn restaurant_coverage_and_consolidation() {
    let s = setup();
    let mapping = canonical_to_world(s);
    let covered: HashSet<LrecId> = mapping.values().copied().collect();
    let coverage = covered.len() as f64 / s.world.restaurants.len() as f64;
    // ~90% measured; the residual misses are name-similar same-city pairs
    // the Fellegi–Sunter model (correctly, given its evidence) merges — see
    // EXPERIMENTS.md "known limitations".
    assert!(
        coverage >= 0.85,
        "canonical records must cover ≥85% of world restaurants, got {coverage:.2}"
    );
    // Consolidation: canonical restaurant count within 2x of the truth
    // (each entity appears on up to 4 sources).
    let canonical = s
        .woc
        .records_of(s.woc.registry.id_of("restaurant").unwrap())
        .len();
    assert!(
        canonical as f64 <= s.world.restaurants.len() as f64 * 2.0,
        "{canonical} canonical vs {} true restaurants — merging too weak",
        s.world.restaurants.len()
    );
}

#[test]
fn extracted_values_match_ground_truth() {
    let s = setup();
    let mapping = canonical_to_world(s);
    let mut phone_checked = 0usize;
    let mut phone_correct = 0usize;
    let mut zip_checked = 0usize;
    let mut zip_correct = 0usize;
    for (&canon, &entity) in &mapping {
        let rec = s.woc.store.latest(canon).unwrap();
        let truth = s.world.rec(entity);
        if let Some(z) = rec.best_string("zip") {
            zip_checked += 1;
            if truth.best_string("zip").as_deref() == Some(z.as_str()) {
                zip_correct += 1;
            }
        }
        let truth_phones: HashSet<String> = truth
            .get("phone")
            .iter()
            .map(|e| e.value.display_string())
            .collect();
        for e in rec.get("phone") {
            phone_checked += 1;
            if truth_phones.contains(&e.value.display_string()) {
                phone_correct += 1;
            }
        }
    }
    assert!(zip_checked > 20, "zips extracted");
    assert!(
        zip_correct as f64 / zip_checked as f64 > 0.9,
        "zip accuracy {zip_correct}/{zip_checked}"
    );
    assert!(
        phone_correct as f64 / phone_checked.max(1) as f64 > 0.85,
        "phone accuracy {phone_correct}/{phone_checked}"
    );
}

#[test]
fn every_restaurant_findable_by_name_city_query() {
    let s = setup();
    let mut found = 0usize;
    for &r in &s.world.restaurants {
        let name = s.world.attr(r, "name");
        let city = s.world.attr(r, "city");
        let hits = concept_search(&s.woc, &format!("{name} {city}"), 5);
        let hit = hits
            .iter()
            .any(|h| woc_textkit::metrics::name_similarity(&h.name, &name) > 0.7);
        if hit {
            found += 1;
        }
    }
    let rate = found as f64 / s.world.restaurants.len() as f64;
    assert!(
        rate > 0.85,
        "findability {found}/{}",
        s.world.restaurants.len()
    );
}

#[test]
fn figure1_triggers_with_homepage_on_top() {
    let s = setup();
    let res = augmented_search(&s.woc, "gochi cupertino", 10);
    let b = res.concept_box.expect("concept box triggers");
    assert!(b.name.to_lowercase().contains("gochi"));
    assert!(b.homepage.is_some(), "homepage link present");
    assert!(
        res.results[0]
            .features
            .contains(&apps::DocFeature::IsHomepage)
            || res.results[0]
                .features
                .contains(&apps::DocFeature::IsProfilePage)
    );
}

#[test]
fn table1_all_cells_nonempty() {
    let s = setup();
    let engine = TransitionEngine::new(&s.woc, None);
    assert!(!engine.assistance("italian restaurants", 3).is_empty());
    let concepts = engine.concept_links("italian", 3);
    assert!(!concepts.is_empty());
    assert!(!engine.vanilla_search("reviews", 3).is_empty());
    let anchor = concepts[0].id;
    assert!(!engine.search_within(anchor, "menu", 3).is_empty());
    let (alts, _) = engine.recommendations(anchor, 3);
    assert!(!alts.is_empty());
    // Semantic links exist somewhere in the corpus.
    let any_mention = s
        .corpus
        .pages()
        .iter()
        .filter(|p| p.truth.kind == PageKind::Article)
        .any(|p| !engine.semantic_links_from_article(&p.url, 3).is_empty());
    assert!(any_mention);
}

#[test]
fn reviews_link_to_the_right_restaurant() {
    let s = setup();
    let mapping = canonical_to_world(s);
    let review_cid = s.woc.registry.id_of("review").unwrap();
    let mut linked = 0usize;
    let mut correct = 0usize;
    // Review truth: review entity → its true restaurant.
    let review_truth: HashMap<LrecId, LrecId> = s
        .world
        .reviews
        .iter()
        .enumerate()
        .flat_map(|(ri, revs)| revs.iter().map(move |&v| (v, ri)))
        .map(|(v, ri)| (v, s.world.restaurants[ri]))
        .collect();
    for page in s.corpus.pages() {
        for tr in &page.truth.records {
            if tr.concept != s.world.concepts.review {
                continue;
            }
            // The extracted review record(s) from this page.
            for (rec, kind) in s.woc.web.records_of(&page.url) {
                if *kind != AssocKind::ExtractedFrom {
                    continue;
                }
                let Some(canon) = s.woc.store.resolve(*rec) else {
                    continue;
                };
                let Some(r) = s.woc.store.latest(canon) else {
                    continue;
                };
                if r.concept() != review_cid {
                    continue;
                }
                let Some(about) = r.best("about").and_then(|e| e.value.as_ref_id()) else {
                    continue;
                };
                linked += 1;
                let predicted_world = mapping.get(&s.woc.store.resolve(about).unwrap_or(about));
                if predicted_world == review_truth.get(&tr.entity) {
                    correct += 1;
                }
                break;
            }
        }
    }
    assert!(linked > 50, "enough reviews linked: {linked}");
    let acc = correct as f64 / linked as f64;
    assert!(
        acc > 0.6,
        "review linking accuracy {acc:.2} ({correct}/{linked})"
    );
}

#[test]
fn lineage_explains_every_canonical_restaurant() {
    let s = setup();
    for rec in s
        .woc
        .records_of(s.woc.registry.id_of("restaurant").unwrap())
    {
        let docs = s.woc.lineage.source_documents(rec.id());
        assert!(
            !docs.is_empty(),
            "record {} must have source documents",
            rec.id()
        );
    }
}

#[test]
fn publications_carry_refined_titles() {
    let s = setup();
    let pubs = s
        .woc
        .records_of(s.woc.registry.id_of("publication").unwrap());
    assert!(!pubs.is_empty());
    let with_title = pubs
        .iter()
        .filter(|p| p.best_string("title").is_some())
        .count();
    assert!(
        with_title * 2 > pubs.len(),
        "most publications should have citation-refined titles: {with_title}/{}",
        pubs.len()
    );
}
