//! Lifecycle integration: build → feed ingest → snapshot → reload → recrawl
//! → quality — the operational loop a deployed web of concepts runs.

use web_of_concepts::core::feed::{ingest_feed, Feed, FeedRecord};
use web_of_concepts::core::{assess, build, recrawl, PipelineConfig};
use web_of_concepts::lrec::snapshot;
use web_of_concepts::prelude::*;
use web_of_concepts::webgen::churn_restaurants;

#[test]
fn full_lifecycle_round_trip() {
    let cfg = CorpusConfig::tiny(91);
    let mut world = World::generate(WorldConfig::tiny(1001));
    let corpus_v1 = generate_corpus(&world, &cfg);
    let mut woc = build(&corpus_v1, &PipelineConfig::default());
    let q0 = assess(&woc);
    assert!(q0.total_records() > 0);

    // --- Feed ingest -----------------------------------------------------
    let gochi = world.restaurants[0];
    let feed = Feed {
        provider: "it".into(),
        confidence: 0.9,
        records: vec![FeedRecord {
            concept: "restaurant".into(),
            fields: vec![
                ("name".into(), world.attr(gochi, "name")),
                ("city".into(), world.attr(gochi, "city")),
                ("zip".into(), world.attr(gochi, "zip")),
                ("phone".into(), world.attr(gochi, "phone")),
            ],
        }],
    };
    let report = ingest_feed(&mut woc, &feed, Tick(400));
    assert_eq!(report.merged + report.created, 1);

    // --- Snapshot + reload -----------------------------------------------
    let snap = snapshot::export(&woc.registry, &woc.store);
    let (_reg2, store2) = snapshot::import(&snap).expect("snapshot loads");
    assert_eq!(store2.live_count(), woc.store.live_count());
    assert_eq!(store2.max_tick(), woc.store.max_tick());

    // --- Churn + recrawl ----------------------------------------------------
    let events = churn_restaurants(&mut world, 0.5, Tick(500), 3);
    let corpus_v2 = generate_corpus(&world, &cfg);
    let m = recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(600));
    if !events.is_empty() {
        assert!(m.pages_reprocessed > 0);
    }

    // --- Quality holds ------------------------------------------------------
    let q1 = assess(&woc);
    assert!(q1.total_records() >= q0.total_records());
    assert!(
        q1.overall_quality() > 0.3,
        "quality {}",
        q1.overall_quality()
    );

    // --- Figure-1 query still works after the whole lifecycle ----------------
    let res = web_of_concepts::apps::augmented_search(&woc, "gochi cupertino", 5);
    assert!(res.concept_box.is_some(), "gochi survives the lifecycle");
}

#[test]
fn snapshot_supports_continued_operation() {
    // A reloaded store accepts updates, merges, and indexing as if it had
    // never been serialized.
    let world = World::generate(WorldConfig::tiny(1002));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(92));
    let woc = build(&corpus, &PipelineConfig::default());
    let snap = snapshot::export(&woc.registry, &woc.store);
    let (reg, mut store) = snapshot::import(&snap).unwrap();

    let tick = store.max_tick().next();
    let restaurant = reg.id_of("restaurant").unwrap();
    let fresh = store.insert(restaurant, tick, |r| {
        r.add(
            "name",
            web_of_concepts::lrec::AttrValue::Text("Post Snapshot Diner".into()),
            web_of_concepts::lrec::Provenance::ground_truth(tick),
        );
    });
    // Rebuild an index over the reloaded store.
    let mut index = web_of_concepts::index::LrecIndex::new();
    for id in store.live_ids() {
        index.add(store.latest(id).unwrap());
    }
    let hits = index.query("post snapshot diner", 1, |n| reg.id_of(n));
    assert_eq!(hits[0].id, fresh);
}
