//! Property tests for store invariants (DESIGN.md §8): id uniqueness,
//! version monotonicity, merge-resolution acyclicity, and absorb idempotence.

use proptest::prelude::*;
use woc_lrec::{AttrValue, ConceptId, Lrec, LrecId, Provenance, Store, Tick};

fn prov(c: f64) -> Provenance {
    Provenance::derived("prop", c, Tick(0))
}

/// A random store operation.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Update(u8, String),
    Merge(u8, u8),
    Retract(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::Create),
        ((0u8..16), "[a-z]{1,8}").prop_map(|(i, v)| Op::Update(i, v)),
        ((0u8..16), (0u8..16)).prop_map(|(a, b)| Op::Merge(a, b)),
        (0u8..16).prop_map(Op::Retract),
    ]
}

proptest! {
    /// Run arbitrary op sequences; invariants must hold at the end.
    #[test]
    fn store_invariants(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut store = Store::new();
        let mut ids: Vec<LrecId> = Vec::new();
        let mut tick = Tick(0);
        for op in ops {
            tick = tick.next();
            match op {
                Op::Create(c) => {
                    let id = store.create(ConceptId(c as u32 % 3), tick);
                    // Id uniqueness.
                    prop_assert!(!ids.contains(&id));
                    ids.push(id);
                }
                Op::Update(i, v) => {
                    if let Some(&id) = ids.get(i as usize) {
                        // Updates may legitimately fail on tombstones only.
                        let _ = store.update(id, tick, |r| r.add("k", v.as_str().into(), prov(0.5)));
                    }
                }
                Op::Merge(a, b) => {
                    if let (Some(&wa), Some(&wb)) = (ids.get(a as usize), ids.get(b as usize)) {
                        let _ = store.merge(wa, wb, tick);
                    }
                }
                Op::Retract(i) => {
                    if let Some(&id) = ids.get(i as usize) {
                        let _ = store.retract(id);
                    }
                }
            }
        }
        // Invariant: every id resolves without cycling (resolve terminates and
        // returns either None (retracted) or a live id).
        for &id in &ids {
            if let Some(surv) = store.resolve(id) {
                // Survivor is a fixpoint of resolution.
                prop_assert_eq!(store.resolve(surv), Some(surv));
            }
        }
        // Invariant: live count equals distinct resolution targets of live chains.
        prop_assert!(store.live_count() <= store.total_created());
        // Invariant: by_concept returns only live records.
        for c in 0..3u32 {
            for id in store.by_concept(ConceptId(c)) {
                prop_assert_eq!(store.resolve(id), Some(id));
            }
        }
    }

    /// Ticks along each chain strictly increase, so as_of is well-defined:
    /// asking "as of latest tick" returns the latest version.
    #[test]
    fn version_monotonicity(updates in prop::collection::vec("[a-z]{1,6}", 1..20)) {
        let mut store = Store::new();
        let id = store.create(ConceptId(0), Tick(0));
        let mut tick = Tick(0);
        for (i, v) in updates.iter().enumerate() {
            tick = tick.next();
            store.update(id, tick, |r| r.set("v", v.as_str().into(), prov(1.0))).unwrap();
            prop_assert_eq!(store.num_versions(id), i + 2);
            // Stale tick rejected.
            let stale = store.update(id, tick, |_r| ()).is_err();
            prop_assert!(stale);
        }
        let latest = store.latest(id).unwrap().best_text("v").map(str::to_string);
        let as_of = store.as_of(id, tick).unwrap().best_text("v").map(str::to_string);
        prop_assert_eq!(latest, as_of);
    }

    /// absorb is idempotent: absorbing the same record twice adds nothing new.
    #[test]
    fn absorb_idempotent(pairs in prop::collection::vec(("[a-k]{1,3}", "[a-z]{1,6}"), 0..12)) {
        let mut a = Lrec::new(LrecId(0), ConceptId(0));
        let mut b = Lrec::new(LrecId(1), ConceptId(0));
        for (k, v) in &pairs {
            b.add(k, AttrValue::Text(v.clone()), prov(0.7));
        }
        a.absorb(&b);
        let after_one = a.clone();
        a.absorb(&b);
        prop_assert_eq!(a.num_values(), after_one.num_values());
    }
}
