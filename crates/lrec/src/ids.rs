//! Identifier newtypes: record ids, concept ids, and logical time.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The distinguished `id` attribute of an lrec (paper §2.2, stipulation 1).
///
/// Ids are dense `u64`s allocated by the [`crate::Store`]; they uniquely
/// identify a record in the stored corpus and are never reused. When entity
/// matching discovers that two records describe the same real-world concept
/// instance, the records are *merged under a surviving id* and the merge is
/// recorded in lineage — ids themselves stay stable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LrecId(pub u64);

impl fmt::Display for LrecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lrec:{:08}", self.0)
    }
}

/// Identifier of a concept (a "type" of lrec, paper §2.2 stipulation 2),
/// allocated by [`crate::ConceptRegistry`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ConceptId(pub u32);

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "concept:{}", self.0)
    }
}

/// Logical time. The web of concepts is rebuilt and maintained continuously
/// (paper §7.3); ticks order crawls, extractions and record versions without
/// depending on wall-clock time (keeping every run deterministic).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Tick(pub u64);

impl Tick {
    /// The next tick.
    #[must_use]
    pub fn next(self) -> Tick {
        Tick(self.0 + 1)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(LrecId(42).to_string(), "lrec:00000042");
        assert_eq!(ConceptId(3).to_string(), "concept:3");
        assert_eq!(Tick(7).to_string(), "t7");
    }

    #[test]
    fn tick_ordering() {
        let t = Tick(1);
        assert!(t.next() > t);
        assert_eq!(t.next(), Tick(2));
    }
}
