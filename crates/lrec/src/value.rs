//! Typed attribute values.
//!
//! The paper leaves lrec values unspecified beyond "(attribute-key, value)
//! pairs"; we give values a small typed algebra so that extraction output,
//! schema checking, reconciliation and indexing can be precise. `Text` is the
//! universal fallback — anything an extractor cannot type lands there.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::LrecId;

/// A simple calendar date (no time zone; the synthetic world is zone-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Four-digit year.
    pub year: u16,
    /// Month `1..=12`.
    pub month: u8,
    /// Day `1..=31`.
    pub day: u8,
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A typed lrec attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Free text (the universal fallback).
    Text(String),
    /// Integer quantity (ratings counts, years, capacities).
    Int(i64),
    /// Real-valued quantity (average rating, distance).
    Float(f64),
    /// Money in integer cents, avoiding float drift in prices.
    PriceCents(i64),
    /// Normalized US phone number digits, e.g. `4085550134`.
    Phone(String),
    /// 5-digit zip (stored as text to preserve leading zeros).
    Zip(String),
    /// A URL.
    Url(String),
    /// A calendar date.
    Date(Date),
    /// Boolean flag.
    Bool(bool),
    /// Typed reference to another lrec — how records of different concepts
    /// are interconnected (restaurant → review, paper → author, product
    /// `part_of` package, camera model `is_a` camera).
    Ref(LrecId),
}

impl AttrValue {
    /// Canonical display string, used when indexing records as text and when
    /// rendering concept pages.
    pub fn display_string(&self) -> String {
        match self {
            AttrValue::Text(s) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(x) => format!("{x:.2}"),
            AttrValue::PriceCents(c) => format!("${}.{:02}", c / 100, (c % 100).abs()),
            AttrValue::Phone(p) => {
                if p.len() == 10 {
                    format!("({}) {}-{}", &p[0..3], &p[3..6], &p[6..10])
                } else {
                    p.clone()
                }
            }
            AttrValue::Zip(z) => z.clone(),
            AttrValue::Url(u) => u.clone(),
            AttrValue::Date(d) => d.to_string(),
            AttrValue::Bool(b) => b.to_string(),
            AttrValue::Ref(id) => id.to_string(),
        }
    }

    /// The text content if this value is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The referenced record id if this value is `Ref`.
    pub fn as_ref_id(&self) -> Option<LrecId> {
        match self {
            AttrValue::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// The numeric value if `Int`, `Float` or `PriceCents` (cents → dollars).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(x) => Some(*x),
            AttrValue::PriceCents(c) => Some(*c as f64 / 100.0),
            _ => None,
        }
    }

    /// Normalize a raw phone string (any format) into an `AttrValue::Phone`
    /// with digits only; returns `None` unless exactly 10 digits remain.
    pub fn parse_phone(raw: &str) -> Option<AttrValue> {
        let digits: String = raw.chars().filter(|c| c.is_ascii_digit()).collect();
        (digits.len() == 10).then_some(AttrValue::Phone(digits))
    }

    /// Parse `$D[.DD]` or `D dollars` into `PriceCents`.
    pub fn parse_price(raw: &str) -> Option<AttrValue> {
        let t = raw.trim();
        let t = t.strip_suffix("dollars").map(str::trim).unwrap_or(t);
        let t = t.strip_prefix('$').unwrap_or(t).trim();
        let (whole, frac) = match t.split_once('.') {
            Some((w, f)) => (w, f),
            None => (t, "0"),
        };
        let whole: i64 = whole.parse().ok()?;
        let frac: i64 = match frac.len() {
            1 => frac.parse::<i64>().ok()? * 10,
            2 => frac.parse().ok()?,
            _ if frac == "0" => 0,
            _ => return None,
        };
        Some(AttrValue::PriceCents(whole * 100 + frac))
    }

    /// Two values are *reconcilable* if they denote the same information up
    /// to formatting — used by conflict detection (paper §7.3: "extracted
    /// information will often be inconsistent and will need to be
    /// reconciled").
    pub fn same_denotation(&self, other: &AttrValue) -> bool {
        if self == other {
            return true;
        }
        match (self, other) {
            (AttrValue::Text(a), AttrValue::Text(b)) => a.trim().eq_ignore_ascii_case(b.trim()),
            (AttrValue::Phone(a), AttrValue::Text(b))
            | (AttrValue::Text(b), AttrValue::Phone(a)) => {
                AttrValue::parse_phone(b).is_some_and(|p| p == AttrValue::Phone(a.clone()))
            }
            (AttrValue::PriceCents(c), AttrValue::Text(b))
            | (AttrValue::Text(b), AttrValue::PriceCents(c)) => {
                AttrValue::parse_price(b).is_some_and(|p| p == AttrValue::PriceCents(*c))
            }
            (AttrValue::Int(a), AttrValue::Float(b)) | (AttrValue::Float(b), AttrValue::Int(a)) => {
                (*a as f64 - b).abs() < 1e-9
            }
            _ => false,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_string())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Text(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Float(x)
    }
}

impl From<LrecId> for AttrValue {
    fn from(id: LrecId) -> Self {
        AttrValue::Ref(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(AttrValue::PriceCents(1295).display_string(), "$12.95");
        assert_eq!(AttrValue::PriceCents(500).display_string(), "$5.00");
        assert_eq!(
            AttrValue::Phone("4085550134".into()).display_string(),
            "(408) 555-0134"
        );
        assert_eq!(
            AttrValue::Date(Date {
                year: 2009,
                month: 6,
                day: 29
            })
            .display_string(),
            "2009-06-29"
        );
    }

    #[test]
    fn phone_parse() {
        assert_eq!(
            AttrValue::parse_phone("(408) 555-0134"),
            Some(AttrValue::Phone("4085550134".into()))
        );
        assert_eq!(AttrValue::parse_phone("555-0134"), None);
    }

    #[test]
    fn price_parse() {
        assert_eq!(
            AttrValue::parse_price("$12.95"),
            Some(AttrValue::PriceCents(1295))
        );
        assert_eq!(
            AttrValue::parse_price("$5"),
            Some(AttrValue::PriceCents(500))
        );
        assert_eq!(
            AttrValue::parse_price("20 dollars"),
            Some(AttrValue::PriceCents(2000))
        );
        assert_eq!(
            AttrValue::parse_price("$1.5"),
            Some(AttrValue::PriceCents(150))
        );
        assert_eq!(AttrValue::parse_price("n/a"), None);
    }

    #[test]
    fn denotation_equivalence() {
        assert!(AttrValue::Phone("4085550134".into())
            .same_denotation(&AttrValue::Text("(408) 555-0134".into())));
        assert!(AttrValue::PriceCents(1295).same_denotation(&AttrValue::Text("$12.95".into())));
        assert!(AttrValue::Text("Gochi ".into()).same_denotation(&AttrValue::Text("gochi".into())));
        assert!(AttrValue::Int(4).same_denotation(&AttrValue::Float(4.0)));
        assert!(!AttrValue::Int(4).same_denotation(&AttrValue::Float(4.5)));
        assert!(!AttrValue::Text("a".into()).same_denotation(&AttrValue::Text("b".into())));
    }

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::Int(3).as_number(), Some(3.0));
        assert_eq!(AttrValue::PriceCents(150).as_number(), Some(1.5));
        assert_eq!(AttrValue::Ref(LrecId(9)).as_ref_id(), Some(LrecId(9)));
        assert_eq!(AttrValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(AttrValue::Int(1).as_text(), None);
    }
}
