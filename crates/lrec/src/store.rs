//! The versioned record store.
//!
//! The store enforces stipulation 1 (unique ids), keeps an append-only
//! version chain per record ("maintain versions of important concept
//! instances over windows of time", §2.3), and maintains a by-concept
//! secondary index. A [`ConcurrentStore`] wrapper provides shared access for
//! the parallel construction pipeline.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::ids::{ConceptId, LrecId, Tick};
use crate::record::Lrec;

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreError {
    /// The record id does not exist.
    NotFound(LrecId),
    /// An update supplied a record whose id does not match the target.
    IdMismatch {
        /// Id the caller addressed.
        expected: LrecId,
        /// Id inside the supplied record.
        got: LrecId,
    },
    /// An update supplied a tick not greater than the latest version's tick.
    NonMonotonicTick {
        /// Latest stored tick.
        latest: Tick,
        /// Offending tick.
        got: Tick,
    },
    /// The record was tombstoned (merged away or retracted).
    Tombstoned(LrecId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "record {id} not found"),
            StoreError::IdMismatch { expected, got } => {
                write!(f, "id mismatch: expected {expected}, got {got}")
            }
            StoreError::NonMonotonicTick { latest, got } => {
                write!(f, "non-monotonic tick: latest {latest}, got {got}")
            }
            StoreError::Tombstoned(id) => write!(f, "record {id} is tombstoned"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One stored version of a record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Version {
    tick: Tick,
    rec: Lrec,
}

/// The version chain of a record plus its liveness.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Chain {
    versions: Vec<Version>,
    /// If merged away, the surviving id.
    merged_into: Option<LrecId>,
    /// True if retracted entirely.
    retracted: bool,
}

impl Chain {
    fn is_tombstoned(&self) -> bool {
        self.merged_into.is_some() || self.retracted
    }
}

/// A single-writer versioned record store. See [`ConcurrentStore`] for the
/// shared variant.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Store {
    chains: HashMap<LrecId, Chain>,
    by_concept: HashMap<ConceptId, Vec<LrecId>>,
    next_id: u64,
}

impl Store {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh id and create an empty record for `concept` at `tick`.
    pub fn create(&mut self, concept: ConceptId, tick: Tick) -> LrecId {
        let id = LrecId(self.next_id);
        self.next_id += 1;
        let rec = Lrec::new(id, concept);
        self.chains.insert(
            id,
            Chain {
                versions: vec![Version { tick, rec }],
                merged_into: None,
                retracted: false,
            },
        );
        self.by_concept.entry(concept).or_default().push(id);
        id
    }

    /// Insert a fully built record, allocating its id. Returns the id.
    pub fn insert(
        &mut self,
        concept: ConceptId,
        tick: Tick,
        build: impl FnOnce(&mut Lrec),
    ) -> LrecId {
        let id = self.create(concept, tick);
        let mut rec = self
            .latest(id)
            .expect("invariant: id was created on the previous line")
            .clone();
        build(&mut rec);
        self.chains
            .get_mut(&id)
            .expect("invariant: id was created on the previous line")
            .versions
            .last_mut()
            .expect("invariant: chains hold at least one version")
            .rec = rec;
        id
    }

    /// Latest live version of a record. `None` if the id is unknown;
    /// tombstoned records still return their last version (their data was
    /// merged elsewhere but the history remains queryable).
    pub fn latest(&self, id: LrecId) -> Option<&Lrec> {
        self.chains.get(&id).map(|c| {
            &c.versions
                .last()
                .expect("invariant: chains hold at least one version")
                .rec
        })
    }

    /// Resolve an id through merge tombstones to the surviving record id.
    pub fn resolve(&self, mut id: LrecId) -> Option<LrecId> {
        let mut hops = 0;
        loop {
            let chain = self.chains.get(&id)?;
            match chain.merged_into {
                Some(next) => {
                    id = next;
                    hops += 1;
                    // Merge chains are short; a cycle would be a bug.
                    debug_assert!(hops <= self.chains.len(), "merge cycle");
                    if hops > self.chains.len() {
                        return None;
                    }
                }
                None => return (!chain.retracted).then_some(id),
            }
        }
    }

    /// The version of a record as of `tick` (latest version with
    /// `version.tick <= tick`).
    pub fn as_of(&self, id: LrecId, tick: Tick) -> Option<&Lrec> {
        let chain = self.chains.get(&id)?;
        chain
            .versions
            .iter()
            .rev()
            .find(|v| v.tick <= tick)
            .map(|v| &v.rec)
    }

    /// Number of stored versions of a record.
    pub fn num_versions(&self, id: LrecId) -> usize {
        self.chains.get(&id).map(|c| c.versions.len()).unwrap_or(0)
    }

    /// Append a new version produced by mutating the latest one.
    ///
    /// Ticks must strictly increase along a chain (version monotonicity —
    /// property-tested).
    pub fn update(
        &mut self,
        id: LrecId,
        tick: Tick,
        mutate: impl FnOnce(&mut Lrec),
    ) -> Result<(), StoreError> {
        let chain = self.chains.get_mut(&id).ok_or(StoreError::NotFound(id))?;
        if chain.is_tombstoned() {
            return Err(StoreError::Tombstoned(id));
        }
        let latest_tick = chain
            .versions
            .last()
            .expect("invariant: chains hold at least one version")
            .tick;
        if tick <= latest_tick {
            return Err(StoreError::NonMonotonicTick {
                latest: latest_tick,
                got: tick,
            });
        }
        let mut rec = chain
            .versions
            .last()
            .expect("invariant: chains hold at least one version")
            .rec
            .clone();
        mutate(&mut rec);
        chain.versions.push(Version { tick, rec });
        Ok(())
    }

    /// Merge record `loser` into `winner` at `tick`: the winner absorbs the
    /// loser's values as a new version; the loser is tombstoned and resolves
    /// to the winner thereafter.
    pub fn merge(&mut self, winner: LrecId, loser: LrecId, tick: Tick) -> Result<(), StoreError> {
        if winner == loser {
            return Ok(());
        }
        let loser_rec = self
            .latest(loser)
            .ok_or(StoreError::NotFound(loser))?
            .clone();
        if self
            .chains
            .get(&loser)
            .expect("invariant: latest(loser) succeeded above")
            .is_tombstoned()
        {
            return Err(StoreError::Tombstoned(loser));
        }
        self.update(winner, tick, |w| w.absorb(&loser_rec))?;
        self.chains
            .get_mut(&loser)
            .expect("invariant: latest(loser) succeeded above")
            .merged_into = Some(winner);
        Ok(())
    }

    /// Retract a record entirely (e.g. discovered to be spam) at `tick`.
    pub fn retract(&mut self, id: LrecId) -> Result<(), StoreError> {
        let chain = self.chains.get_mut(&id).ok_or(StoreError::NotFound(id))?;
        if chain.is_tombstoned() {
            return Err(StoreError::Tombstoned(id));
        }
        chain.retracted = true;
        Ok(())
    }

    /// Ids of live records of a concept (excludes tombstoned).
    pub fn by_concept(&self, concept: ConceptId) -> Vec<LrecId> {
        self.by_concept
            .get(&concept)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|id| !self.chains[id].is_tombstoned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All live record ids.
    pub fn live_ids(&self) -> Vec<LrecId> {
        let mut ids: Vec<LrecId> = self
            .chains
            .iter()
            .filter(|(_, c)| !c.is_tombstoned())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Total number of records ever created.
    pub fn total_created(&self) -> usize {
        self.chains.len()
    }

    /// The largest tick recorded across all version chains (`Tick(0)` for an
    /// empty store). Maintenance passes start their clock after this.
    pub fn max_tick(&self) -> Tick {
        self.chains
            .values()
            .flat_map(|c| c.versions.iter().map(|v| v.tick))
            .max()
            .unwrap_or(Tick(0))
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.chains.values().filter(|c| !c.is_tombstoned()).count()
    }
}

/// Thread-safe store handle for the parallel construction pipeline.
///
/// Cloning is cheap (an `Arc`); readers proceed concurrently and writers
/// exclude via a `parking_lot::RwLock`.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentStore {
    inner: Arc<RwLock<Store>>,
}

impl ConcurrentStore {
    /// Empty concurrent store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing store.
    pub fn from_store(store: Store) -> Self {
        Self {
            inner: Arc::new(RwLock::new(store)),
        }
    }

    /// Run a closure with read access.
    pub fn read<R>(&self, f: impl FnOnce(&Store) -> R) -> R {
        // woc-lint: allow(lock-across-io) — with-style combinator: running the
        // closure under the guard is the contract; callers must not acquire
        // other locks inside (ConcurrentStore.inner is a leaf in the order).
        f(&self.inner.read())
    }

    /// Run a closure with write access.
    pub fn write<R>(&self, f: impl FnOnce(&mut Store) -> R) -> R {
        // woc-lint: allow(lock-across-io) — with-style combinator: running the
        // closure under the guard is the contract; callers must not acquire
        // other locks inside (ConcurrentStore.inner is a leaf in the order).
        f(&mut self.inner.write())
    }

    /// Take the store out, leaving an empty one (end of pipeline).
    pub fn into_store(self) -> Store {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => lock.into_inner(),
            Err(arc) => arc.read().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::value::AttrValue;

    const C: ConceptId = ConceptId(0);

    fn prov() -> Provenance {
        Provenance::ground_truth(Tick(0))
    }

    #[test]
    fn create_allocates_unique_ids() {
        let mut s = Store::new();
        let a = s.create(C, Tick(0));
        let b = s.create(C, Tick(0));
        assert_ne!(a, b);
        assert_eq!(s.total_created(), 2);
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    fn insert_and_latest() {
        let mut s = Store::new();
        let id = s.insert(C, Tick(0), |r| r.add("name", "Gochi".into(), prov()));
        assert_eq!(s.latest(id).unwrap().best_text("name"), Some("Gochi"));
    }

    #[test]
    fn update_appends_version() {
        let mut s = Store::new();
        let id = s.insert(C, Tick(0), |r| r.add("name", "Gochi".into(), prov()));
        s.update(id, Tick(1), |r| r.set("name", "Gochi Tapas".into(), prov()))
            .unwrap();
        assert_eq!(s.num_versions(id), 2);
        assert_eq!(s.latest(id).unwrap().best_text("name"), Some("Gochi Tapas"));
        // Time travel.
        assert_eq!(
            s.as_of(id, Tick(0)).unwrap().best_text("name"),
            Some("Gochi")
        );
    }

    #[test]
    fn update_rejects_stale_tick() {
        let mut s = Store::new();
        let id = s.insert(C, Tick(5), |_| {});
        let err = s.update(id, Tick(5), |_| {}).unwrap_err();
        assert!(matches!(err, StoreError::NonMonotonicTick { .. }));
        assert!(matches!(
            s.update(LrecId(999), Tick(9), |_| {}),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn merge_tombstones_and_resolves() {
        let mut s = Store::new();
        let a = s.insert(C, Tick(0), |r| r.add("name", "Gochi".into(), prov()));
        let b = s.insert(C, Tick(0), |r| {
            r.add("phone", AttrValue::Phone("4085550134".into()), prov())
        });
        s.merge(a, b, Tick(1)).unwrap();
        assert_eq!(s.resolve(b), Some(a));
        assert_eq!(s.resolve(a), Some(a));
        assert_eq!(s.live_count(), 1);
        let w = s.latest(a).unwrap();
        assert!(w.best("phone").is_some(), "winner absorbed loser's values");
        // Further updates to the loser fail.
        assert!(matches!(
            s.update(b, Tick(2), |_| {}),
            Err(StoreError::Tombstoned(_))
        ));
        // Merging the same loser twice fails.
        assert!(matches!(
            s.merge(a, b, Tick(3)),
            Err(StoreError::Tombstoned(_))
        ));
    }

    #[test]
    fn merge_chains_resolve_transitively() {
        let mut s = Store::new();
        let a = s.create(C, Tick(0));
        let b = s.create(C, Tick(0));
        let c = s.create(C, Tick(0));
        s.merge(b, c, Tick(1)).unwrap();
        s.merge(a, b, Tick(2)).unwrap();
        assert_eq!(s.resolve(c), Some(a));
    }

    #[test]
    fn merge_self_is_noop() {
        let mut s = Store::new();
        let a = s.create(C, Tick(0));
        s.merge(a, a, Tick(1)).unwrap();
        assert_eq!(s.num_versions(a), 1);
    }

    #[test]
    fn retract_hides_from_queries() {
        let mut s = Store::new();
        let a = s.create(C, Tick(0));
        let b = s.create(C, Tick(0));
        s.retract(a).unwrap();
        assert_eq!(s.by_concept(C), vec![b]);
        assert_eq!(s.resolve(a), None);
        assert_eq!(s.live_ids(), vec![b]);
    }

    #[test]
    fn by_concept_partitions() {
        let mut s = Store::new();
        let c1 = ConceptId(1);
        let a = s.create(C, Tick(0));
        let b = s.create(c1, Tick(0));
        assert_eq!(s.by_concept(C), vec![a]);
        assert_eq!(s.by_concept(c1), vec![b]);
        assert!(s.by_concept(ConceptId(9)).is_empty());
    }

    #[test]
    fn concurrent_store_shared_mutation() {
        let cs = ConcurrentStore::new();
        let cs2 = cs.clone();
        let id = cs.write(|s| s.create(C, Tick(0)));
        let seen = cs2.read(|s| s.latest(id).is_some());
        assert!(seen);
        let store = cs.into_store();
        assert_eq!(store.live_count(), 1);
    }
}
