//! The lrec record type.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::{ConceptId, LrecId};
use crate::provenance::Provenance;
use crate::value::AttrValue;

/// One attribute value together with its provenance stamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueEntry {
    /// The value.
    pub value: AttrValue,
    /// Where it came from and how confident we are in it.
    pub provenance: Provenance,
}

/// A loosely-structured record (paper §2.2).
///
/// Attributes form a multimap: a key may carry several values (a restaurant
/// with two phone numbers; a value asserted by several sources). The set of
/// populated attributes is *not* required to cover the concept schema, and
/// keys absent from the schema are admitted (schema evolution, §2.2: "the
/// set of attributes associated with a concept may also evolve").
///
/// Attributes are kept in a `BTreeMap` so iteration order — and therefore
/// rendering, indexing and hashing — is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lrec {
    id: LrecId,
    concept: ConceptId,
    attrs: BTreeMap<String, Vec<ValueEntry>>,
}

impl Lrec {
    /// Create an empty record. Normally done through
    /// [`crate::Store::create`], which allocates the id.
    pub fn new(id: LrecId, concept: ConceptId) -> Self {
        Self {
            id,
            concept,
            attrs: BTreeMap::new(),
        }
    }

    /// The distinguished unique id (stipulation 1).
    pub fn id(&self) -> LrecId {
        self.id
    }

    /// The concept this record instantiates (stipulation 2: "given a record,
    /// we can determine the corresponding concept").
    pub fn concept(&self) -> ConceptId {
        self.concept
    }

    /// Add a value for `key` (appends; does not replace).
    pub fn add(&mut self, key: &str, value: AttrValue, provenance: Provenance) {
        self.attrs
            .entry(key.to_string())
            .or_default()
            .push(ValueEntry { value, provenance });
    }

    /// Replace all values of `key` with a single value.
    pub fn set(&mut self, key: &str, value: AttrValue, provenance: Provenance) {
        self.attrs
            .insert(key.to_string(), vec![ValueEntry { value, provenance }]);
    }

    /// Remove all values of `key`, returning them.
    pub fn remove(&mut self, key: &str) -> Vec<ValueEntry> {
        self.attrs.remove(key).unwrap_or_default()
    }

    /// All entries for `key`.
    pub fn get(&self, key: &str) -> &[ValueEntry] {
        self.attrs.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The highest-confidence value for `key`, if any.
    pub fn best(&self, key: &str) -> Option<&ValueEntry> {
        self.get(key).iter().max_by(|a, b| {
            a.provenance
                .confidence
                .partial_cmp(&b.provenance.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Convenience: the best value's display string.
    pub fn best_string(&self, key: &str) -> Option<String> {
        self.best(key).map(|e| e.value.display_string())
    }

    /// Convenience: the best value's text, if it is `Text`.
    pub fn best_text(&self, key: &str) -> Option<&str> {
        self.best(key).and_then(|e| e.value.as_text())
    }

    /// Iterate over `(key, entries)` pairs in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[ValueEntry])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// The set of populated attribute keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.attrs.keys().map(String::as_str)
    }

    /// Number of populated attribute keys.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Total number of values across all keys.
    pub fn num_values(&self) -> usize {
        self.attrs.values().map(Vec::len).sum()
    }

    /// All outgoing record references (`Ref` values) with their keys.
    pub fn refs(&self) -> Vec<(&str, LrecId)> {
        self.iter()
            .flat_map(|(k, es)| {
                es.iter()
                    .filter_map(move |e| e.value.as_ref_id().map(|id| (k, id)))
            })
            .collect()
    }

    /// Flatten the record to text for inverted-index ingestion: every value's
    /// display string prefixed with nothing, keys excluded (keys are indexed
    /// as fields separately by `woc-index`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (_, entries) in self.iter() {
            for e in entries {
                if !matches!(e.value, AttrValue::Ref(_)) {
                    out.push_str(&e.value.display_string());
                    out.push(' ');
                }
            }
        }
        out.trim_end().to_string()
    }

    /// Merge `other` into `self` (entity-matching merge): every value of
    /// `other` is appended under its key unless an entry with the same
    /// denotation already exists, in which case only the higher confidence
    /// survives. `other`'s id and concept are discarded — the caller records
    /// the merge in lineage.
    pub fn absorb(&mut self, other: &Lrec) {
        for (key, entries) in other.iter() {
            for e in entries {
                let existing = self.attrs.entry(key.to_string()).or_default();
                if let Some(dup) = existing
                    .iter_mut()
                    .find(|x| x.value.same_denotation(&e.value))
                {
                    if e.provenance.confidence > dup.provenance.confidence {
                        *dup = e.clone();
                    }
                } else {
                    existing.push(e.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Tick;

    fn prov(c: f64) -> Provenance {
        Provenance::derived("test", c, Tick(0))
    }

    fn rec() -> Lrec {
        let mut r = Lrec::new(LrecId(1), ConceptId(0));
        r.add("name", "Gochi Fusion Tapas".into(), prov(0.9));
        r.add("phone", AttrValue::Phone("4085550134".into()), prov(0.8));
        r.add("phone", AttrValue::Phone("4085550199".into()), prov(0.6));
        r
    }

    #[test]
    fn add_and_get() {
        let r = rec();
        assert_eq!(r.get("phone").len(), 2);
        assert_eq!(r.get("missing").len(), 0);
        assert_eq!(r.num_attrs(), 2);
        assert_eq!(r.num_values(), 3);
    }

    #[test]
    fn best_picks_highest_confidence() {
        let r = rec();
        assert_eq!(
            r.best("phone").unwrap().value,
            AttrValue::Phone("4085550134".into())
        );
        assert_eq!(r.best_text("name"), Some("Gochi Fusion Tapas"));
        assert!(r.best("missing").is_none());
    }

    #[test]
    fn set_replaces() {
        let mut r = rec();
        r.set("phone", AttrValue::Phone("1112223333".into()), prov(1.0));
        assert_eq!(r.get("phone").len(), 1);
    }

    #[test]
    fn refs_collected() {
        let mut r = rec();
        r.add("review", AttrValue::Ref(LrecId(7)), prov(0.9));
        r.add("review", AttrValue::Ref(LrecId(8)), prov(0.9));
        let refs = r.refs();
        assert_eq!(refs, vec![("review", LrecId(7)), ("review", LrecId(8))]);
    }

    #[test]
    fn to_text_excludes_refs() {
        let mut r = rec();
        r.add("review", AttrValue::Ref(LrecId(7)), prov(0.9));
        let t = r.to_text();
        assert!(t.contains("Gochi Fusion Tapas"));
        assert!(!t.contains("lrec:"));
    }

    #[test]
    fn absorb_dedups_by_denotation() {
        let mut a = rec();
        let mut b = Lrec::new(LrecId(2), ConceptId(0));
        // Same phone in a different format, higher confidence.
        b.add(
            "phone",
            AttrValue::Text("(408) 555-0134".into()),
            prov(0.95),
        );
        b.add("cuisine", "Japanese".into(), prov(0.7));
        a.absorb(&b);
        // Still 2 phone entries (dedup), but the dup got the higher-confidence stamp.
        assert_eq!(a.get("phone").len(), 2);
        let best = a.best("phone").unwrap();
        assert!((best.provenance.confidence - 0.95).abs() < 1e-12);
        assert_eq!(a.get("cuisine").len(), 1);
    }

    #[test]
    fn iteration_deterministic() {
        let r = rec();
        let keys: Vec<_> = r.keys().collect();
        assert_eq!(keys, vec!["name", "phone"]);
    }
}
