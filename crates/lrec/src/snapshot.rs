//! Store snapshots: export/import the record corpus as JSON.
//!
//! Paper §7.1 calls for "creating shared datasets and benchmarks"; §2.3 for
//! maintaining "versions of important concept instances over windows of
//! time". Snapshots serialize the *entire* store — every version chain,
//! tombstone and provenance stamp — so a constructed web of concepts can be
//! shipped, diffed, and reloaded bit-for-bit.

use serde::{Deserialize, Serialize};

use crate::schema::ConceptRegistry;
use crate::store::Store;

/// A serializable snapshot: registry + store, with a format version for
/// forward compatibility.
#[derive(Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Snapshot format version.
    pub format: u32,
    /// The concept registry (schemas + domains).
    pub registry: ConceptRegistry,
    /// The full record store, version chains included.
    pub store: Store,
}

/// Current snapshot format version.
pub const FORMAT: u32 = 1;

/// Errors from snapshot encoding/decoding.
#[derive(Debug)]
pub enum SnapshotError {
    /// The JSON was malformed or did not match the schema.
    Malformed(String),
    /// The format version is not supported.
    UnsupportedFormat(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Malformed(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::UnsupportedFormat(v) => write!(f, "unsupported snapshot format {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize a registry + store to a JSON string.
pub fn export(registry: &ConceptRegistry, store: &Store) -> String {
    let snap = Snapshot {
        format: FORMAT,
        registry: registry.clone(),
        store: store.clone(),
    };
    serde_json::to_string(&snap).expect("snapshot types are serializable")
}

/// Deserialize a snapshot produced by [`export`].
pub fn import(json: &str) -> Result<(ConceptRegistry, Store), SnapshotError> {
    let snap: Snapshot =
        serde_json::from_str(json).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
    if snap.format != FORMAT {
        return Err(SnapshotError::UnsupportedFormat(snap.format));
    }
    Ok((snap.registry, snap.store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::standard_registry;
    use crate::ids::Tick;
    use crate::provenance::Provenance;
    use crate::value::AttrValue;

    fn populated() -> (ConceptRegistry, Store) {
        let (reg, c) = standard_registry();
        let mut store = Store::new();
        let a = store.insert(c.restaurant, Tick(0), |r| {
            r.add("name", "Gochi".into(), Provenance::ground_truth(Tick(0)));
            r.add(
                "phone",
                AttrValue::Phone("4085550134".into()),
                Provenance::extracted("http://x/", "op", 0.8, Tick(0)),
            );
        });
        let b = store.insert(c.restaurant, Tick(0), |r| {
            r.add(
                "name",
                "Gochi Tapas".into(),
                Provenance::ground_truth(Tick(0)),
            );
        });
        store
            .update(a, Tick(1), |r| {
                r.add(
                    "cuisine",
                    "Japanese".into(),
                    Provenance::ground_truth(Tick(1)),
                )
            })
            .unwrap();
        store.merge(a, b, Tick(2)).unwrap();
        (reg, store)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (reg, store) = populated();
        let json = export(&reg, &store);
        let (reg2, store2) = import(&json).unwrap();
        // Registry: same schemas.
        assert_eq!(reg.schemas().count(), reg2.schemas().count());
        assert_eq!(reg2.id_of("restaurant"), reg.id_of("restaurant"));
        // Store: same records, versions, tombstones.
        assert_eq!(store2.live_count(), store.live_count());
        assert_eq!(store2.total_created(), store.total_created());
        for id in store.live_ids() {
            assert_eq!(store2.latest(id), store.latest(id));
            assert_eq!(store2.num_versions(id), store.num_versions(id));
        }
        // Merge resolution survives.
        let loser = crate::ids::LrecId(1);
        assert_eq!(store2.resolve(loser), store.resolve(loser));
        // Time travel survives.
        let a = crate::ids::LrecId(0);
        assert_eq!(store2.as_of(a, Tick(0)), store.as_of(a, Tick(0)));
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(matches!(
            import("not json"),
            Err(SnapshotError::Malformed(_))
        ));
        assert!(matches!(import("{}"), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn import_rejects_future_format() {
        let (reg, store) = populated();
        let json = export(&reg, &store).replace("\"format\":1", "\"format\":99");
        assert!(matches!(
            import(&json),
            Err(SnapshotError::UnsupportedFormat(99))
        ));
    }

    #[test]
    fn new_ids_continue_after_import() {
        let (reg, store) = populated();
        let (_, mut store2) = import(&export(&reg, &store)).unwrap();
        let before = store2.total_created();
        let id = store2.create(crate::ids::ConceptId(1), Tick(10));
        assert_eq!(store2.total_created(), before + 1);
        assert!(id.0 >= before as u64, "ids must not be reused after import");
    }
}
