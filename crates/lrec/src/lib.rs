//! # woc-lrec — loosely-structured records, the paper's representational core
//!
//! Paper §2.2 proposes describing an instance of a concept as a
//! *loosely-structured record* (`lrec`): a collection of `(attribute-key,
//! value)` pairs with two stipulations:
//!
//! 1. a distinguished `id` key uniquely identifying the record in the stored
//!    corpus ([`LrecId`], enforced by [`Store`]), and
//! 2. per-concept metadata listing the attributes for which instances may
//!    have values ([`ConceptSchema`]), such that the concept of any record
//!    can be determined ([`Lrec::concept`]).
//!
//! We add the practical extensions §2.3 and §7.3 call for: provenance and
//! confidence on every value ([`Provenance`]), versioned records in the store
//! (maintenance under change), evolvable schemas (unknown attributes are
//! admitted and recorded), and domains as named sets of concepts
//! ([`Domain`]).
//!
//! The model is deliberately **flat** — no nested structure — so that records
//! map directly onto inverted-index infrastructure (see `woc-index`); records
//! reference each other through typed [`value::AttrValue::Ref`] values, which
//! is how taxonomic (`is_a`, `part_of`) and associative links are expressed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domains;
pub mod ids;
pub mod provenance;
pub mod record;
pub mod schema;
pub mod snapshot;
pub mod store;
pub mod value;

pub use ids::{ConceptId, LrecId, Tick};
pub use provenance::{Provenance, SiteSupport, SourceRef};
pub use record::{Lrec, ValueEntry};
pub use schema::{
    AttrKind, AttrSpec, Cardinality, ConceptRegistry, ConceptSchema, Domain, Violation,
};
pub use store::{ConcurrentStore, Store, StoreError};
pub use value::AttrValue;
