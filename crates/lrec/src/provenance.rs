//! Provenance stamps carried by every attribute value.
//!
//! Paper §7.3: "Managing lineage, i.e., keeping track of the documents and
//! the sequence of operators that result in a given extracted record, is an
//! important problem." The full operator DAG lives in `woc-core::lineage`;
//! this module defines the per-value stamp that anchors values into that DAG
//! and carries the extraction confidence used for uncertainty propagation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::Tick;

/// Where a value came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceRef {
    /// Extracted from a crawled document, identified by URL.
    Document(String),
    /// Produced by an operator (linker, reconciler, classifier) rather than
    /// read off a page; the string names the operator.
    Derived(String),
    /// Imported from a structured feed (the paper's "contractual feeds").
    Feed(String),
    /// Ground truth injected by a test or the synthetic-world generator.
    GroundTruth,
}

impl fmt::Display for SourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceRef::Document(u) => write!(f, "doc:{u}"),
            SourceRef::Derived(op) => write!(f, "op:{op}"),
            SourceRef::Feed(name) => write!(f, "feed:{name}"),
            SourceRef::GroundTruth => write!(f, "ground-truth"),
        }
    }
}

/// One site that supported a value at selection time, with the trust score
/// the source-reliability fixpoint assigned it then. A reconciled winner
/// carries one entry per distinct supporting site, so "why is this the live
/// value?" is answerable from the stamp alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSupport {
    /// Site (hostname) that asserted the value.
    pub site: String,
    /// The site's trust score in `[0, 1]` when the value was selected.
    pub trust: f64,
}

/// A provenance stamp: source + producing operator + confidence + time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Where the value came from.
    pub source: SourceRef,
    /// Name of the operator that produced the value (e.g. `list-extractor`).
    pub operator: String,
    /// Confidence in `\[0, 1\]` that the value is correct for this record.
    pub confidence: f64,
    /// Logical time the value was observed/produced.
    pub observed_at: Tick,
    /// Supporting sites and their trust at selection time. Empty until a
    /// trust-aware reconciliation pass selects the value.
    pub support: Vec<SiteSupport>,
}

impl Provenance {
    /// Stamp for a value extracted from `url` by `operator` with `confidence`.
    pub fn extracted(url: &str, operator: &str, confidence: f64, at: Tick) -> Self {
        Self {
            source: SourceRef::Document(url.to_string()),
            operator: operator.to_string(),
            confidence: confidence.clamp(0.0, 1.0),
            observed_at: at,
            support: Vec::new(),
        }
    }

    /// Stamp for a derived value.
    pub fn derived(operator: &str, confidence: f64, at: Tick) -> Self {
        Self {
            source: SourceRef::Derived(operator.to_string()),
            operator: operator.to_string(),
            confidence: confidence.clamp(0.0, 1.0),
            observed_at: at,
            support: Vec::new(),
        }
    }

    /// Stamp for ground truth (tests and world generation), confidence 1.
    pub fn ground_truth(at: Tick) -> Self {
        Self {
            source: SourceRef::GroundTruth,
            operator: "ground-truth".to_string(),
            confidence: 1.0,
            observed_at: at,
            support: Vec::new(),
        }
    }

    /// The document URL, when the source is a document.
    pub fn document_url(&self) -> Option<&str> {
        match &self.source {
            SourceRef::Document(u) => Some(u),
            _ => None,
        }
    }
}

/// Combine confidences of *independent corroborating* observations with
/// noisy-or: `1 - ∏(1 - cᵢ)`. Corroboration from multiple sources raises
/// confidence; this is the standard independence model used for uncertainty
/// propagation through the pipeline (DESIGN.md §6).
pub fn noisy_or<I: IntoIterator<Item = f64>>(confidences: I) -> f64 {
    let mut not = 1.0f64;
    for c in confidences {
        not *= 1.0 - c.clamp(0.0, 1.0);
    }
    1.0 - not
}

/// Combine confidences along a *dependency chain* (classifier → extractor →
/// linker) by product: the chain is only right if every step is right.
pub fn chain<I: IntoIterator<Item = f64>>(confidences: I) -> f64 {
    confidences.into_iter().map(|c| c.clamp(0.0, 1.0)).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_clamp() {
        let p = Provenance::extracted("u", "op", 1.5, Tick(0));
        assert_eq!(p.confidence, 1.0);
        let p = Provenance::derived("op", -0.5, Tick(0));
        assert_eq!(p.confidence, 0.0);
    }

    #[test]
    fn document_url_access() {
        let p = Provenance::extracted("http://a/b", "op", 0.9, Tick(1));
        assert_eq!(p.document_url(), Some("http://a/b"));
        assert_eq!(Provenance::ground_truth(Tick(0)).document_url(), None);
    }

    #[test]
    fn noisy_or_monotone() {
        assert_eq!(noisy_or([]), 0.0);
        assert!((noisy_or([0.5]) - 0.5).abs() < 1e-12);
        assert!((noisy_or([0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!(noisy_or([0.5, 0.5, 0.5]) > noisy_or([0.5, 0.5]));
        assert!(noisy_or([1.0, 0.0]) == 1.0);
    }

    #[test]
    fn chain_product() {
        assert_eq!(chain([]), 1.0);
        assert!((chain([0.9, 0.9]) - 0.81).abs() < 1e-12);
        assert!(chain([0.9, 0.0]) == 0.0);
    }

    #[test]
    fn display_sources() {
        assert_eq!(SourceRef::Document("u".into()).to_string(), "doc:u");
        assert_eq!(SourceRef::Derived("link".into()).to_string(), "op:link");
        assert_eq!(SourceRef::Feed("yelp".into()).to_string(), "feed:yelp");
        assert_eq!(SourceRef::GroundTruth.to_string(), "ground-truth");
    }
}
