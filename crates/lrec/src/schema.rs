//! Concept schemas, the concept registry, and domains.
//!
//! Paper §2.2 stipulation 2: "For each concept that is represented in our
//! corpus, we have metadata, including such things as a listing of attributes
//! for which we might have values." Schemas also carry the *statistical
//! properties* §4.2 uses as domain knowledge for unsupervised list extraction
//! ("each restaurant is associated with a single zip code and has one or two
//! phone numbers") as per-attribute [`Cardinality`] hints.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::ConceptId;
use crate::record::Lrec;
use crate::value::AttrValue;

/// The expected kind of values under an attribute key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrKind {
    /// Free text.
    Text,
    /// Integer.
    Int,
    /// Real number.
    Float,
    /// Money.
    Price,
    /// Phone number.
    Phone,
    /// Zip code.
    Zip,
    /// URL.
    Url,
    /// Calendar date.
    Date,
    /// Boolean.
    Bool,
    /// Reference to a record of the named concept.
    RefTo(ConceptId),
}

impl AttrKind {
    /// Does `value` conform to this kind? `Text` accepts anything (it is the
    /// loose fallback); other kinds accept their typed variant only.
    pub fn admits(&self, value: &AttrValue) -> bool {
        matches!(
            (self, value),
            (AttrKind::Text, _)
                | (AttrKind::Int, AttrValue::Int(_))
                | (AttrKind::Float, AttrValue::Float(_) | AttrValue::Int(_))
                | (AttrKind::Price, AttrValue::PriceCents(_))
                | (AttrKind::Phone, AttrValue::Phone(_))
                | (AttrKind::Zip, AttrValue::Zip(_))
                | (AttrKind::Url, AttrValue::Url(_))
                | (AttrKind::Date, AttrValue::Date(_))
                | (AttrKind::Bool, AttrValue::Bool(_))
                | (AttrKind::RefTo(_), AttrValue::Ref(_))
        )
    }
}

/// How many values an instance is expected to carry for an attribute —
/// the statistical domain knowledge of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cardinality {
    /// Exactly one value expected (e.g. a restaurant's zip).
    One,
    /// Between 1 and N values (e.g. "one or two phone numbers").
    AtMost(u8),
    /// Any number of values (e.g. reviews).
    Many,
}

impl Cardinality {
    /// Is a count of values consistent with this cardinality? Zero is always
    /// allowed — lrecs need not populate every attribute (paper §2.2).
    pub fn admits_count(&self, n: usize) -> bool {
        match self {
            Cardinality::One => n <= 1,
            Cardinality::AtMost(k) => n <= *k as usize,
            Cardinality::Many => true,
        }
    }
}

/// Declared metadata for one attribute of a concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrSpec {
    /// Attribute key.
    pub key: String,
    /// Expected value kind.
    pub kind: AttrKind,
    /// Expected per-instance value count.
    pub cardinality: Cardinality,
    /// True if this attribute identifies instances strongly (used by
    /// blocking and matching; e.g. `name`, `phone`).
    pub identifying: bool,
}

impl AttrSpec {
    /// Shorthand constructor.
    pub fn new(key: &str, kind: AttrKind, cardinality: Cardinality) -> Self {
        Self {
            key: key.to_string(),
            kind,
            cardinality,
            identifying: false,
        }
    }

    /// Mark the attribute as identifying.
    #[must_use]
    pub fn identifying(mut self) -> Self {
        self.identifying = true;
        self
    }
}

/// Schema (metadata) of one concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConceptSchema {
    id: ConceptId,
    name: String,
    attrs: BTreeMap<String, AttrSpec>,
}

/// A single schema-conformance violation found by [`ConceptSchema::check`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A value did not conform to the declared kind.
    KindMismatch {
        /// Offending key.
        key: String,
        /// Display of the offending value.
        value: String,
    },
    /// More values than the declared cardinality admits.
    CardinalityExceeded {
        /// Offending key.
        key: String,
        /// Observed count.
        count: usize,
    },
    /// An attribute key not declared in the schema (admitted, but reported so
    /// that schema evolution can be driven by data; paper §2.2).
    UndeclaredKey {
        /// The novel key.
        key: String,
    },
}

impl ConceptSchema {
    /// Create a schema with the given attributes.
    pub fn new(id: ConceptId, name: &str, attrs: Vec<AttrSpec>) -> Self {
        Self {
            id,
            name: name.to_string(),
            attrs: attrs.into_iter().map(|a| (a.key.clone(), a)).collect(),
        }
    }

    /// The concept id.
    pub fn id(&self) -> ConceptId {
        self.id
    }

    /// The concept name (e.g. `restaurant`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared attribute specs in key order.
    pub fn attrs(&self) -> impl Iterator<Item = &AttrSpec> {
        self.attrs.values()
    }

    /// Spec for one key.
    pub fn attr(&self, key: &str) -> Option<&AttrSpec> {
        self.attrs.get(key)
    }

    /// Identifying attributes (for blocking/matching).
    pub fn identifying_attrs(&self) -> impl Iterator<Item = &AttrSpec> {
        self.attrs.values().filter(|a| a.identifying)
    }

    /// Admit a newly observed attribute into the schema (schema evolution).
    pub fn evolve(&mut self, spec: AttrSpec) {
        self.attrs.entry(spec.key.clone()).or_insert(spec);
    }

    /// Check a record against the schema, returning all violations. Never
    /// rejects a record outright: the model is *loose* by design, and the
    /// caller decides how to treat violations (quality scoring, repair,
    /// schema evolution).
    pub fn check(&self, rec: &Lrec) -> Vec<Violation> {
        let mut out = Vec::new();
        for (key, entries) in rec.iter() {
            match self.attrs.get(key) {
                None => out.push(Violation::UndeclaredKey {
                    key: key.to_string(),
                }),
                Some(spec) => {
                    if !spec.cardinality.admits_count(entries.len()) {
                        out.push(Violation::CardinalityExceeded {
                            key: key.to_string(),
                            count: entries.len(),
                        });
                    }
                    for e in entries {
                        if !spec.kind.admits(&e.value) {
                            out.push(Violation::KindMismatch {
                                key: key.to_string(),
                                value: e.value.display_string(),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// A domain is a set of related concepts (paper §2.2: "people, publications
/// and conferences are examples of concepts in the academic community
/// domain"). Domain-centric extraction is scoped by these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Domain name (e.g. `local`, `academic`, `shopping`).
    pub name: String,
    /// Member concepts.
    pub concepts: Vec<ConceptId>,
}

/// Registry allocating concept ids and holding schemas and domains.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConceptRegistry {
    schemas: Vec<ConceptSchema>,
    by_name: BTreeMap<String, ConceptId>,
    domains: BTreeMap<String, Domain>,
}

impl ConceptRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a concept, allocating its id. Attribute specs may use
    /// `AttrKind::RefTo` with ids of previously registered concepts.
    /// Returns the existing id if the name is already registered.
    pub fn register(&mut self, name: &str, attrs: Vec<AttrSpec>) -> ConceptId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ConceptId(self.schemas.len() as u32);
        self.schemas.push(ConceptSchema::new(id, name, attrs));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up a concept id by name.
    pub fn id_of(&self, name: &str) -> Option<ConceptId> {
        self.by_name.get(name).copied()
    }

    /// The schema for a concept id.
    pub fn schema(&self, id: ConceptId) -> Option<&ConceptSchema> {
        self.schemas.get(id.0 as usize)
    }

    /// Mutable schema access (for evolution).
    pub fn schema_mut(&mut self, id: ConceptId) -> Option<&mut ConceptSchema> {
        self.schemas.get_mut(id.0 as usize)
    }

    /// The schema for a concept name.
    pub fn schema_by_name(&self, name: &str) -> Option<&ConceptSchema> {
        self.id_of(name).and_then(|id| self.schema(id))
    }

    /// All registered schemas.
    pub fn schemas(&self) -> impl Iterator<Item = &ConceptSchema> {
        self.schemas.iter()
    }

    /// Define a domain over already-registered concepts.
    pub fn define_domain(&mut self, name: &str, concept_names: &[&str]) -> &Domain {
        let concepts = concept_names.iter().filter_map(|n| self.id_of(n)).collect();
        self.domains.insert(
            name.to_string(),
            Domain {
                name: name.to_string(),
                concepts,
            },
        );
        &self.domains[name]
    }

    /// Look up a domain by name.
    pub fn domain(&self, name: &str) -> Option<&Domain> {
        self.domains.get(name)
    }

    /// All domains.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LrecId, Tick};
    use crate::provenance::Provenance;

    fn restaurant_schema() -> ConceptSchema {
        ConceptSchema::new(
            ConceptId(0),
            "restaurant",
            vec![
                AttrSpec::new("name", AttrKind::Text, Cardinality::One).identifying(),
                AttrSpec::new("zip", AttrKind::Zip, Cardinality::One),
                AttrSpec::new("phone", AttrKind::Phone, Cardinality::AtMost(2)).identifying(),
                AttrSpec::new("review", AttrKind::RefTo(ConceptId(1)), Cardinality::Many),
            ],
        )
    }

    fn prov() -> Provenance {
        Provenance::ground_truth(Tick(0))
    }

    #[test]
    fn kind_admission() {
        assert!(AttrKind::Text.admits(&AttrValue::Int(1)));
        assert!(AttrKind::Float.admits(&AttrValue::Int(1)));
        assert!(!AttrKind::Int.admits(&AttrValue::Float(1.0)));
        assert!(!AttrKind::Phone.admits(&AttrValue::Text("408".into())));
    }

    #[test]
    fn cardinality_admission() {
        assert!(Cardinality::One.admits_count(0));
        assert!(Cardinality::One.admits_count(1));
        assert!(!Cardinality::One.admits_count(2));
        assert!(Cardinality::AtMost(2).admits_count(2));
        assert!(!Cardinality::AtMost(2).admits_count(3));
        assert!(Cardinality::Many.admits_count(99));
    }

    #[test]
    fn schema_check_clean_record() {
        let s = restaurant_schema();
        let mut r = Lrec::new(LrecId(1), s.id());
        r.add("name", "Gochi".into(), prov());
        r.add("zip", AttrValue::Zip("95014".into()), prov());
        assert!(s.check(&r).is_empty());
    }

    #[test]
    fn schema_check_reports_violations() {
        let s = restaurant_schema();
        let mut r = Lrec::new(LrecId(1), s.id());
        r.add("zip", AttrValue::Text("not-a-zip".into()), prov());
        r.add("phone", AttrValue::Phone("1".into()), prov());
        r.add("phone", AttrValue::Phone("2".into()), prov());
        r.add("phone", AttrValue::Phone("3".into()), prov());
        r.add("parking", "street".into(), prov());
        let v = s.check(&r);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::KindMismatch { key, .. } if key == "zip")));
        assert!(v.iter().any(
            |x| matches!(x, Violation::CardinalityExceeded { key, count: 3 } if key == "phone")
        ));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UndeclaredKey { key } if key == "parking")));
    }

    #[test]
    fn schema_evolution_absorbs_new_key() {
        let mut s = restaurant_schema();
        s.evolve(AttrSpec::new("parking", AttrKind::Text, Cardinality::One));
        let mut r = Lrec::new(LrecId(1), s.id());
        r.add("parking", "street".into(), prov());
        assert!(s.check(&r).is_empty());
        // Evolving an existing key does not overwrite its spec.
        s.evolve(AttrSpec::new("name", AttrKind::Int, Cardinality::Many));
        assert_eq!(s.attr("name").unwrap().kind, AttrKind::Text);
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = ConceptRegistry::new();
        let r = reg.register("restaurant", vec![]);
        let v = reg.register("review", vec![]);
        assert_ne!(r, v);
        assert_eq!(reg.register("restaurant", vec![]), r, "idempotent");
        assert_eq!(reg.id_of("review"), Some(v));
        assert_eq!(reg.schema(r).unwrap().name(), "restaurant");
        let d = reg.define_domain("local", &["restaurant", "review"]);
        assert_eq!(d.concepts.len(), 2);
        assert!(reg.domain("local").is_some());
        assert!(reg.domain("nope").is_none());
    }

    #[test]
    fn identifying_attrs() {
        let s = restaurant_schema();
        let keys: Vec<_> = s.identifying_attrs().map(|a| a.key.as_str()).collect();
        assert_eq!(keys, vec!["name", "phone"]);
    }
}
