//! Standard concepts and domains used throughout the system.
//!
//! The paper's running examples define the restaurant/local domain, the
//! academic domain, the shopping domain and events (§2.1, §4). This module
//! registers those concepts with their attribute metadata — including the
//! cardinality hints §4.2 uses as statistical domain knowledge — so the
//! generator, extractors and applications all agree on one vocabulary.

use serde::{Deserialize, Serialize};

use crate::ids::ConceptId;
use crate::schema::{AttrKind, AttrSpec, Cardinality, ConceptRegistry};

/// Concept ids for the standard registry, in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StandardConcepts {
    /// Plain web page treated as a record of type "Document" (§4: "today's
    /// web is a simplified web of concepts, where each record is of type
    /// Document").
    pub document: ConceptId,
    /// Restaurant (local domain).
    pub restaurant: ConceptId,
    /// A menu item of a restaurant.
    pub menu_item: ConceptId,
    /// A review of some record (restaurant, product, …).
    pub review: ConceptId,
    /// A person (author, reviewer).
    pub person: ConceptId,
    /// A research publication.
    pub publication: ConceptId,
    /// A research institution.
    pub institution: ConceptId,
    /// A product (shopping domain).
    pub product: ConceptId,
    /// A seller offering products.
    pub seller: ConceptId,
    /// An offer (seller sells product at price).
    pub offer: ConceptId,
    /// An event (concerts, games, …).
    pub event: ConceptId,
}

/// Build the standard registry with all concepts and domains.
pub fn standard_registry() -> (ConceptRegistry, StandardConcepts) {
    use AttrKind as K;
    use Cardinality as C;
    let mut reg = ConceptRegistry::new();

    let document = reg.register(
        "document",
        vec![
            AttrSpec::new("url", K::Url, C::One).identifying(),
            AttrSpec::new("title", K::Text, C::One),
            AttrSpec::new("site", K::Text, C::One),
        ],
    );

    let restaurant = reg.register(
        "restaurant",
        vec![
            AttrSpec::new("name", K::Text, C::One).identifying(),
            AttrSpec::new("street", K::Text, C::One),
            AttrSpec::new("city", K::Text, C::One).identifying(),
            AttrSpec::new("state", K::Text, C::One),
            // §4.2: "each restaurant is associated with a single zip code
            // and has one or two phone numbers".
            AttrSpec::new("zip", K::Zip, C::One),
            AttrSpec::new("phone", K::Phone, C::AtMost(2)).identifying(),
            AttrSpec::new("cuisine", K::Text, C::AtMost(2)),
            AttrSpec::new("hours", K::Text, C::One),
            AttrSpec::new("homepage", K::Url, C::One),
            AttrSpec::new("rating", K::Float, C::One),
            AttrSpec::new("price_level", K::Int, C::One),
        ],
    );

    let menu_item = reg.register(
        "menu_item",
        vec![
            AttrSpec::new("name", K::Text, C::One).identifying(),
            AttrSpec::new("price", K::Price, C::One),
            AttrSpec::new("restaurant", K::RefTo(restaurant), C::One),
            AttrSpec::new("section", K::Text, C::One),
        ],
    );

    let review = reg.register(
        "review",
        vec![
            AttrSpec::new("text", K::Text, C::One),
            AttrSpec::new("rating", K::Int, C::One),
            AttrSpec::new("author_name", K::Text, C::One),
            AttrSpec::new("about", K::RefTo(restaurant), C::One),
            AttrSpec::new("source_url", K::Url, C::One),
        ],
    );

    let person = reg.register(
        "person",
        vec![
            AttrSpec::new("name", K::Text, C::One).identifying(),
            AttrSpec::new("email", K::Text, C::One).identifying(),
            AttrSpec::new("homepage", K::Url, C::One),
        ],
    );

    let institution = reg.register(
        "institution",
        vec![
            AttrSpec::new("name", K::Text, C::One).identifying(),
            AttrSpec::new("city", K::Text, C::One),
        ],
    );

    let publication = reg.register(
        "publication",
        vec![
            AttrSpec::new("title", K::Text, C::One).identifying(),
            AttrSpec::new("venue", K::Text, C::One),
            AttrSpec::new("year", K::Int, C::One),
            AttrSpec::new("author", K::RefTo(person), C::Many),
            AttrSpec::new("topic", K::Text, C::AtMost(3)),
        ],
    );

    let product = reg.register(
        "product",
        vec![
            AttrSpec::new("name", K::Text, C::One).identifying(),
            AttrSpec::new("brand", K::Text, C::One).identifying(),
            AttrSpec::new("category", K::Text, C::One),
            AttrSpec::new("model", K::Text, C::One).identifying(),
            // Taxonomy/containment links of §2.3 ("the D40 … is a particular
            // kind of digital camera"; "part of a special camera package").
            AttrSpec::new("is_a", K::Text, C::AtMost(3)),
            AttrSpec::new("part_of", K::RefTo(ConceptId(0)), C::Many),
            AttrSpec::new("augments", K::RefTo(ConceptId(0)), C::Many),
        ],
    );

    let seller = reg.register(
        "seller",
        vec![
            AttrSpec::new("name", K::Text, C::One).identifying(),
            AttrSpec::new("homepage", K::Url, C::One),
        ],
    );

    let offer = reg.register(
        "offer",
        vec![
            AttrSpec::new("product", K::RefTo(product), C::One),
            AttrSpec::new("seller", K::RefTo(seller), C::One),
            AttrSpec::new("price", K::Price, C::One),
            AttrSpec::new("in_stock", K::Bool, C::One),
        ],
    );

    let event = reg.register(
        "event",
        vec![
            AttrSpec::new("name", K::Text, C::One).identifying(),
            AttrSpec::new("category", K::Text, C::One),
            AttrSpec::new("city", K::Text, C::One),
            AttrSpec::new("venue", K::Text, C::One),
            AttrSpec::new("date", K::Date, C::One).identifying(),
            AttrSpec::new("price", K::Price, C::One),
        ],
    );

    reg.define_domain("local", &["restaurant", "menu_item", "review"]);
    reg.define_domain("academic", &["person", "publication", "institution"]);
    reg.define_domain("shopping", &["product", "seller", "offer", "review"]);
    reg.define_domain("events", &["event"]);

    (
        reg,
        StandardConcepts {
            document,
            restaurant,
            menu_item,
            review,
            person,
            publication,
            institution,
            product,
            seller,
            offer,
            event,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_all_concepts() {
        let (reg, c) = standard_registry();
        assert_eq!(reg.schemas().count(), 11);
        assert_eq!(reg.schema(c.restaurant).unwrap().name(), "restaurant");
        assert_eq!(reg.schema(c.event).unwrap().name(), "event");
    }

    #[test]
    fn domains_cover_concepts() {
        let (reg, c) = standard_registry();
        let local = reg.domain("local").unwrap();
        assert!(local.concepts.contains(&c.restaurant));
        assert!(local.concepts.contains(&c.review));
        let academic = reg.domain("academic").unwrap();
        assert_eq!(academic.concepts.len(), 3);
        assert_eq!(reg.domains().count(), 4);
    }

    #[test]
    fn restaurant_cardinalities_match_paper() {
        let (reg, c) = standard_registry();
        let s = reg.schema(c.restaurant).unwrap();
        assert_eq!(s.attr("zip").unwrap().cardinality, Cardinality::One);
        assert_eq!(s.attr("phone").unwrap().cardinality, Cardinality::AtMost(2));
    }

    #[test]
    fn ids_distinct() {
        let (_, c) = standard_registry();
        let ids = [
            c.document,
            c.restaurant,
            c.menu_item,
            c.review,
            c.person,
            c.publication,
            c.institution,
            c.product,
            c.seller,
            c.offer,
            c.event,
        ];
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }
}
