//! Property tests for the partition layer and the degenerate one-shard
//! cluster:
//!
//! * the record/document → shard assignment is a pure function of the
//!   built web — independent of the thread count that built the web and
//!   of when the map is rebuilt;
//! * an `N = 1` cluster is *plain `woc-serve`*: scatter-gather over a
//!   single shard answers byte-identically to a `ConceptServer` over the
//!   same web, for arbitrary queries and depths.
//!
//! Webs are built once per thread count and shared across cases; each
//! property case samples only cheap parameters (shard count, threshold,
//! query shape).

use std::sync::OnceLock;

use proptest::prelude::*;
use woc_cluster::{ClusterConfig, ClusterServer, PartitionMap};
use woc_core::{build, PipelineConfig, WebOfConcepts};
use woc_serve::{ConceptServer, Response, ServeConfig};
use woc_webgen::{generate_corpus, CorpusConfig, WebCorpus, World, WorldConfig};

fn corpus() -> &'static WebCorpus {
    static CORPUS: OnceLock<WebCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny(704));
        generate_corpus(&world, &CorpusConfig::tiny(74))
    })
}

fn web_built_with(threads: usize) -> WebOfConcepts {
    build(
        corpus(),
        &PipelineConfig {
            threads,
            ..PipelineConfig::default()
        },
    )
}

fn web_single() -> &'static WebOfConcepts {
    static WEB: OnceLock<WebOfConcepts> = OnceLock::new();
    WEB.get_or_init(|| web_built_with(1))
}

fn web_parallel() -> &'static WebOfConcepts {
    static WEB: OnceLock<WebOfConcepts> = OnceLock::new();
    WEB.get_or_init(|| web_built_with(8))
}

/// One-shard cluster and the plain server it must be indistinguishable
/// from, over the same web.
fn degenerate_pair() -> &'static (ClusterServer, ConceptServer) {
    static PAIR: OnceLock<(ClusterServer, ConceptServer)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let woc = web_single();
        let cluster = ClusterServer::new(
            corpus(),
            woc.clone(),
            ClusterConfig {
                shards: 1,
                ..ClusterConfig::default()
            },
        );
        let server = ConceptServer::new(woc.clone(), ServeConfig::default());
        (cluster, server)
    })
}

const TERMS: &[&str] = &[
    "pizza",
    "thai",
    "sushi",
    "downtown",
    "cheap",
    "menu",
    "noodles",
    "italian",
    "burger",
    "romantic",
    "restaurant",
];

fn query_from(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| TERMS[i % TERMS.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #[test]
    fn partitioning_is_thread_count_independent(
        shards in 1usize..=8,
        threshold_pick in 0usize..4,
    ) {
        let threshold = [1.2f64, 1.5, 2.0, 1_000.0][threshold_pick];
        let a = PartitionMap::build(web_single(), shards, threshold);
        let b = PartitionMap::build(web_parallel(), shards, threshold);
        prop_assert_eq!(a.record_entries(), b.record_entries());
        prop_assert_eq!(a.doc_entries(), b.doc_entries());
        prop_assert_eq!(a.rebalanced(), b.rebalanced());
        // And rebuilding on the same web is bit-stable.
        let again = PartitionMap::build(web_single(), shards, threshold);
        prop_assert_eq!(&a, &again);
        // Whatever the parameters, the map tiles the web exactly.
        let live = web_single().store.live_ids();
        prop_assert_eq!(a.record_entries().len(), live.len());
        prop_assert_eq!(a.doc_entries().len(), web_single().doc_urls.len());
    }

    #[test]
    fn one_shard_cluster_is_plain_serve(
        picks in prop::collection::vec(0usize..TERMS.len(), 1..4),
        k in 1usize..=12,
    ) {
        let (cluster, server) = degenerate_pair();
        let query = query_from(&picks);
        let ans = cluster.search(&query, k);
        prop_assert!(ans.coverage.is_complete(), "one healthy shard cannot degrade");
        prop_assert_eq!(
            format!("{:?}", Response::Search(ans.results)),
            format!("{:?}", server.search(&query, k).value),
            "N=1 scatter-gather must be byte-identical to plain woc-serve on {:?}/{}",
            query, k
        );
        // The doc plane degenerates identically.
        let docs = cluster.doc_search(&query, k);
        prop_assert!(docs.coverage.is_complete());
        let woc = web_single();
        let reference: Vec<(String, f64)> = woc
            .doc_index
            .search(&query, k)
            .into_iter()
            .map(|h| (woc.doc_urls[h.doc.0 as usize].clone(), h.score))
            .collect();
        prop_assert_eq!(format!("{:?}", docs.results), format!("{reference:?}"));
    }
}
