//! The cluster invariant, end to end: under every shard-fault profile,
//! quorum serving stays **byte-identical** to the single-node answers and
//! audit-clean (W013 included), or the router degrades with explicit
//! [`Coverage::Partial`] metadata whose surviving results are a provable
//! prefix of the single-node answer restricted to surviving shards —
//! never a silently partial epoch.
//!
//! Every test is deterministic: faults are rolled from fixed seeds and
//! latency accumulates on a virtual clock, so a failure replays exactly.
//! Set `WOC_CLUSTER_SEED` to sweep an extra seed in CI.

use std::sync::{Arc, OnceLock};

use woc_apps::{concept_search_parsed, interpret_query, ConceptResult};
use woc_audit::AuditConfig;
use woc_chaos::ShardFaultProfile;
use woc_cluster::{ClusterConfig, ClusterServer, Coverage};
use woc_core::{build, PipelineConfig, WebOfConcepts};
use woc_incr::{epoch_delta, segment_delta, IncrEngine};
use woc_lrec::{LrecId, Tick};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, WebCorpus, World, WorldConfig};

/// Seeds every profile is exercised at. `WOC_CLUSTER_SEED` adds one more.
fn fault_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 17];
    if let Ok(extra) = std::env::var("WOC_CLUSTER_SEED") {
        if let Ok(s) = extra.parse() {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    seeds
}

/// Shared fixture: one built web, cloned into each cluster under test.
fn fixture() -> &'static (WebCorpus, WebOfConcepts) {
    static FIXTURE: OnceLock<(WebCorpus, WebOfConcepts)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny(700));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(70));
        let woc = build(&corpus, &PipelineConfig::default());
        (corpus, woc)
    })
}

/// The search workload: free-text, cuisine-scoped, and concept-filtered
/// queries at several depths, exercising every gather-stage filter.
fn search_pool() -> Vec<(&'static str, usize)> {
    vec![
        ("pizza", 5),
        ("thai noodles", 5),
        ("sushi", 3),
        ("cheap pizza downtown", 8),
        ("romantic italian", 5),
        ("is:restaurant", 10),
        ("burger", 1),
    ]
}

fn doc_pool() -> Vec<(&'static str, usize)> {
    vec![("pizza", 10), ("menu", 10), ("downtown thai", 5)]
}

/// The single-node reference answer the cluster must reproduce.
fn reference_search(woc: &WebOfConcepts, query: &str, k: usize) -> Vec<ConceptResult> {
    let fq = interpret_query(query).normalized();
    concept_search_parsed(woc, &fq, k)
}

/// The single-node reference for plain document search, as `(url, score)`.
fn reference_doc_search(woc: &WebOfConcepts, query: &str, k: usize) -> Vec<(String, f64)> {
    woc.doc_index
        .search(query, k)
        .into_iter()
        .map(|h| (woc.doc_urls[h.doc.0 as usize].clone(), h.score))
        .collect()
}

fn cluster_over(woc: &WebOfConcepts, corpus: &WebCorpus, config: ClusterConfig) -> ClusterServer {
    ClusterServer::new(corpus, woc.clone(), config)
}

/// Byte-identity oracle: debug-render both answer lists and compare.
fn assert_identical(cluster: &[ConceptResult], reference: &[ConceptResult], ctx: &str) {
    assert_eq!(
        format!("{cluster:?}"),
        format!("{reference:?}"),
        "[{ctx}] cluster answer must be byte-identical to single-node"
    );
}

/// The degraded-answer contract: every served hit is owned by a surviving
/// shard, and the reference answer restricted to surviving shards is a
/// byte-identical *prefix* of the cluster's partial answer.
fn assert_partial_contract(
    cluster: &ClusterServer,
    results: &[ConceptResult],
    missing: &[usize],
    woc: &WebOfConcepts,
    query: &str,
    k: usize,
    ctx: &str,
) {
    let pm = cluster.partition();
    for r in results {
        let owner = pm.shard_of_record(r.id).expect("served records are live");
        assert!(
            !missing.contains(&owner),
            "[{ctx}] hit {:?} owned by missing shard {owner}",
            r.id
        );
    }
    let reference = reference_search(woc, query, k);
    let surviving: Vec<&ConceptResult> = reference
        .iter()
        .filter(|r| {
            pm.shard_of_record(r.id)
                .is_some_and(|s| !missing.contains(&s))
        })
        .collect();
    assert!(
        results.len() >= surviving.len(),
        "[{ctx}] partial answer lost surviving reference hits"
    );
    for (i, want) in surviving.iter().enumerate() {
        assert_eq!(
            format!("{:?}", results[i]),
            format!("{want:?}"),
            "[{ctx}] surviving reference hits must form a prefix (rank {i})"
        );
    }
}

fn assert_audit_clean(cluster: &ClusterServer, ctx: &str) {
    let report = cluster.audit(&AuditConfig::default());
    let failing: Vec<_> = report
        .checks
        .iter()
        .filter(|c| c.violations > 0)
        .map(|c| (c.code.clone(), c.violations))
        .collect();
    assert!(report.passed(), "[{ctx}] audit violations: {failing:?}");
}

/// Healthy cluster, every width: scatter-gather search, doc search, and
/// routed lookup are byte-identical to the single-node paths.
#[test]
fn healthy_cluster_is_byte_identical_at_every_width() {
    let (corpus, woc) = fixture();
    for shards in [1, 2, 4] {
        let cluster = cluster_over(
            woc,
            corpus,
            ClusterConfig {
                shards,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(cluster.epoch(), 1);
        for (q, k) in search_pool() {
            let ans = cluster.search(q, k);
            assert!(ans.coverage.is_complete(), "[N={shards}] {q:?} degraded");
            assert_eq!(ans.epoch, 1);
            assert_identical(
                &ans.results,
                &reference_search(woc, q, k),
                &format!("N={shards} {q:?}"),
            );
        }
        for (q, k) in doc_pool() {
            let ans = cluster.doc_search(q, k);
            assert!(ans.coverage.is_complete());
            assert_eq!(
                format!("{:?}", ans.results),
                format!("{:?}", reference_doc_search(woc, q, k)),
                "[N={shards}] doc search {q:?} must match the full index"
            );
        }
        for id in woc.store.live_ids().into_iter().take(12) {
            let ans = cluster.lookup(id);
            assert!(ans.coverage.is_complete());
            assert_eq!(
                format!("{:?}", ans.result),
                format!("{:?}", woc_cluster::lookup_reference(woc, id)),
                "[N={shards}] lookup {id:?}"
            );
        }
        // An id the store never allocated resolves to a clean miss.
        let miss = cluster.lookup(LrecId(u64::MAX / 2));
        assert!(miss.coverage.is_complete());
        assert!(miss.result.is_none());
        assert_eq!(cluster.stats().partial_answers, 0);
        assert_audit_clean(&cluster, &format!("healthy N={shards}"));
    }
}

/// Kill any single replica of any shard: the quorum keeps every answer
/// byte-identical and the audit (W013 included) stays clean.
#[test]
fn replica_kill_keeps_quorum_byte_identical() {
    let (corpus, woc) = fixture();
    for seed in fault_seeds() {
        let config = ClusterConfig::default();
        for shard in 0..config.shards {
            let cluster = cluster_over(woc, corpus, config.clone());
            let replica = (shard + seed as usize) % config.replicas;
            cluster.set_faults(ShardFaultProfile::replica_down(shard, replica), seed);
            for (q, k) in search_pool() {
                let ans = cluster.search(q, k);
                assert!(
                    ans.coverage.is_complete(),
                    "[{seed}/{shard}] quorum must absorb a single replica kill"
                );
                assert_identical(
                    &ans.results,
                    &reference_search(woc, q, k),
                    &format!("kill {shard}.{replica} seed {seed} {q:?}"),
                );
            }
            assert!(
                cluster.stats().dead_probes > 0,
                "[{seed}/{shard}] the dead replica must have been probed"
            );
            assert_eq!(cluster.stats().partial_answers, 0);
            assert_audit_clean(&cluster, &format!("replica-down {shard}.{replica}"));
        }
    }
}

/// Black out a whole shard: every answer degrades with explicit partial
/// metadata naming exactly that shard, and the surviving results honor the
/// prefix contract against the single-node reference.
#[test]
fn shard_blackout_degrades_with_explicit_partial_metadata() {
    let (corpus, woc) = fixture();
    for seed in fault_seeds() {
        let config = ClusterConfig::default();
        for shard in 0..config.shards {
            let cluster = cluster_over(woc, corpus, config.clone());
            cluster.set_faults(ShardFaultProfile::shard_blackout(shard), seed);
            for (q, k) in search_pool() {
                let ans = cluster.search(q, k);
                let Coverage::Partial { missing } = &ans.coverage else {
                    panic!("[{seed}/{shard}] a blacked-out shard cannot report complete");
                };
                assert_eq!(missing, &vec![shard], "missing set names the shard");
                assert_partial_contract(
                    &cluster,
                    &ans.results,
                    missing,
                    woc,
                    q,
                    k,
                    &format!("blackout {shard} seed {seed} {q:?}"),
                );
            }
            assert!(cluster.stats().partial_answers > 0);
            // Lookups route: records on the dead shard answer partial,
            // records elsewhere stay complete and correct.
            let pm = cluster.partition();
            let mut on_dead = None;
            let mut elsewhere = None;
            for id in woc.store.live_ids() {
                match pm.shard_of_record(id) {
                    Some(s) if s == shard && on_dead.is_none() => on_dead = Some(id),
                    Some(s) if s != shard && elsewhere.is_none() => elsewhere = Some(id),
                    _ => {}
                }
                if on_dead.is_some() && elsewhere.is_some() {
                    break;
                }
            }
            if let Some(id) = on_dead {
                let ans = cluster.lookup(id);
                assert_eq!(
                    ans.coverage,
                    Coverage::Partial {
                        missing: vec![shard]
                    }
                );
                assert!(ans.result.is_none(), "no silently served stale record");
            }
            if let Some(id) = elsewhere {
                let ans = cluster.lookup(id);
                assert!(ans.coverage.is_complete());
                assert_eq!(
                    format!("{:?}", ans.result),
                    format!("{:?}", woc_cluster::lookup_reference(woc, id))
                );
            }
        }
    }
}

/// Flapping replicas: whatever each availability window does, every answer
/// is either complete and byte-identical, or explicitly partial and
/// prefix-correct. The virtual clock is advanced across windows so the
/// flap pattern actually changes under the workload.
#[test]
fn flapping_replicas_never_tear_an_answer() {
    let (corpus, woc) = fixture();
    for seed in fault_seeds() {
        let cluster = cluster_over(woc, corpus, ClusterConfig::default());
        cluster.set_faults(ShardFaultProfile::flappy(0.4), seed);
        let mut complete = 0usize;
        for round in 0..6 {
            for (q, k) in search_pool() {
                let ans = cluster.search(q, k);
                match &ans.coverage {
                    Coverage::Complete => {
                        complete += 1;
                        assert_identical(
                            &ans.results,
                            &reference_search(woc, q, k),
                            &format!("flappy seed {seed} round {round} {q:?}"),
                        );
                    }
                    Coverage::Partial { missing } => {
                        assert!(!missing.is_empty());
                        assert_partial_contract(
                            &cluster,
                            &ans.results,
                            missing,
                            woc,
                            q,
                            k,
                            &format!("flappy seed {seed} round {round} {q:?}"),
                        );
                    }
                }
            }
            // Cross into a different availability window.
            cluster.advance_clock(61_000);
        }
        assert!(
            complete > 0,
            "[{seed}] a 40% flap rate with two replicas must still complete sometimes"
        );
    }
}

/// Brownout: slow replicas fire hedged requests, and hedging never changes
/// an answer byte — it only changes latency.
#[test]
fn brownout_fires_hedges_without_changing_answers() {
    let (corpus, woc) = fixture();
    for seed in fault_seeds() {
        let cluster = cluster_over(woc, corpus, ClusterConfig::default());
        cluster.set_faults(ShardFaultProfile::slow(0.9, 10_000), seed);
        for (q, k) in search_pool() {
            let ans = cluster.search(q, k);
            assert!(
                ans.coverage.is_complete(),
                "[{seed}] slowness within the timeout must not drop shards"
            );
            assert!(ans.virtual_micros <= cluster.config().timeout_micros);
            assert_identical(
                &ans.results,
                &reference_search(woc, q, k),
                &format!("slow seed {seed} {q:?}"),
            );
        }
        assert!(
            cluster.stats().hedges > 0,
            "[{seed}] a 90% slow rate must trip the hedge threshold"
        );
    }
}

/// Publish while a replica is partitioned away: the replica misses the
/// epoch, the router refuses it as stale once it returns (counted, never
/// served), the W013 audit reports the staleness without failing, and an
/// anti-entropy sync heals it.
#[test]
fn stale_replica_is_refused_until_resynced() {
    let mut world = World::generate(WorldConfig::tiny(701));
    let corpus_cfg = CorpusConfig::tiny(71);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = IncrEngine::new(&corpus_v1, PipelineConfig::default());
    let cluster = ClusterServer::new(&corpus_v1, engine.web().clone(), ClusterConfig::default());

    // Partition one replica away, then publish a churned epoch past it.
    let (shard, replica) = (1usize, 0usize);
    cluster.set_faults(ShardFaultProfile::replica_down(shard, replica), 11);
    let mut seed = 1;
    while churn_restaurants(&mut world, 0.4, Tick(10), seed).is_empty() {
        seed += 1;
    }
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);
    let report = engine.maintain(&corpus_v2).expect("maintain must succeed");
    assert!(!report.short_circuited);
    let epoch = cluster.publish_delta(&corpus_v2, engine.web().clone(), &epoch_delta(&report));
    assert_eq!(epoch, 2);
    assert_eq!(cluster.epoch(), 2);
    let view = cluster.coverage_view();
    assert_eq!(
        view.replicas[shard][replica].0, 1,
        "the partitioned replica must have missed the publish"
    );

    // Partition lifts: the replica is reachable again but one epoch
    // behind. The router must refuse it — and keep every answer on the
    // new epoch — until anti-entropy catches it up.
    cluster.clear_faults();
    let woc_v2 = engine.web();
    for (q, k) in search_pool() {
        let ans = cluster.search(q, k);
        assert!(ans.coverage.is_complete());
        assert_eq!(ans.epoch, 2);
        assert_identical(
            &ans.results,
            &reference_search(woc_v2, q, k),
            &format!("stale {q:?}"),
        );
    }
    assert!(
        cluster.stats().stale_skips > 0,
        "replica rotation must have offered the stale replica"
    );
    assert_audit_clean(&cluster, "stale replica (info, not violation)");

    cluster.sync_replicas();
    let healed = cluster.coverage_view();
    assert_eq!(
        healed.replicas[shard][replica].0, 2,
        "sync heals the straggler"
    );
    let before = cluster.stats().stale_skips;
    for (q, k) in search_pool() {
        let ans = cluster.search(q, k);
        assert!(ans.coverage.is_complete());
        assert_identical(
            &ans.results,
            &reference_search(woc_v2, q, k),
            &format!("healed {q:?}"),
        );
    }
    assert_eq!(
        cluster.stats().stale_skips,
        before,
        "no more stale refusals"
    );
    assert_audit_clean(&cluster, "after resync");
}

/// Republishing an unchanged web re-ships every shard side as the same
/// `Arc` — the per-shard reuse the incremental publish path depends on.
#[test]
fn republish_of_unchanged_web_reuses_every_shard_side() {
    let (corpus, woc) = fixture();
    let cluster = cluster_over(woc, corpus, ClusterConfig::default());
    let records_before: Vec<_> = (0..4).map(|s| cluster.records_side(s)).collect();
    let docs_before: Vec<_> = (0..4).map(|s| cluster.docs_side(s)).collect();

    let epoch = cluster.publish(corpus, woc.clone());
    assert_eq!(epoch, 2);
    for s in 0..4 {
        assert!(
            Arc::ptr_eq(&records_before[s], &cluster.records_side(s)),
            "shard {s} record side must be reused, not rebuilt"
        );
        assert!(
            Arc::ptr_eq(&docs_before[s], &cluster.docs_side(s)),
            "shard {s} doc side must be reused, not rebuilt"
        );
    }
    // Replicas serve the new epoch through the reused sides.
    let view = cluster.coverage_view();
    for node in &view.replicas {
        for &(epoch, _) in node {
            assert_eq!(epoch, 2);
        }
    }
    for (q, k) in search_pool() {
        let ans = cluster.search(q, k);
        assert!(ans.coverage.is_complete());
        assert_identical(
            &ans.results,
            &reference_search(woc, q, k),
            &format!("reuse {q:?}"),
        );
    }
    assert_audit_clean(&cluster, "after reuse republish");
}

/// A maintenance pass that changes nothing folds to an empty delta, and an
/// empty delta is a cluster-wide no-op: same epoch, same shard sides, no
/// replica churn.
#[test]
fn empty_delta_publish_is_a_cluster_noop() {
    let world = World::generate(WorldConfig::tiny(702));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(72));
    let mut engine = IncrEngine::new(&corpus, PipelineConfig::default());
    let cluster = ClusterServer::new(&corpus, engine.web().clone(), ClusterConfig::default());
    let side = cluster.records_side(0);

    let report = engine.maintain(&corpus).expect("maintain must succeed");
    assert!(report.short_circuited);
    let epoch = cluster.publish_delta(&corpus, engine.web().clone(), &epoch_delta(&report));
    assert_eq!(epoch, 1, "no change, no epoch bump");
    assert_eq!(cluster.epoch(), 1);
    assert_eq!(cluster.full().epoch(), 1);
    assert!(Arc::ptr_eq(&side, &cluster.records_side(0)));
}

/// Incremental maintenance drives the cluster across epochs: churn,
/// maintain, delta-publish — and the new epoch serves byte-identically to
/// a single-node view of the maintained web, audit-clean.
#[test]
fn incremental_epochs_serve_byte_identically_through_the_cluster() {
    let mut world = World::generate(WorldConfig::tiny(703));
    let corpus_cfg = CorpusConfig::tiny(73);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = IncrEngine::new(&corpus_v1, PipelineConfig::default());
    let cluster = ClusterServer::new(&corpus_v1, engine.web().clone(), ClusterConfig::default());

    let mut expected_epoch = 1;
    for (round, rate) in [(1u64, 0.3f64), (2, 0.6)] {
        let mut seed = round * 100;
        while churn_restaurants(&mut world, rate, Tick(10 * round), seed).is_empty() {
            seed += 1;
        }
        let corpus_next = generate_corpus(&world, &corpus_cfg);
        let report = engine
            .maintain(&corpus_next)
            .expect("maintain must succeed");
        let epoch =
            cluster.publish_delta(&corpus_next, engine.web().clone(), &epoch_delta(&report));
        if !report.short_circuited && report.effective_change {
            expected_epoch += 1;
        }
        assert_eq!(epoch, expected_epoch);

        let woc = engine.web();
        for (q, k) in search_pool() {
            let ans = cluster.search(q, k);
            assert!(ans.coverage.is_complete());
            assert_eq!(ans.epoch, expected_epoch);
            assert_identical(
                &ans.results,
                &reference_search(woc, q, k),
                &format!("epoch {epoch} {q:?}"),
            );
        }
        for (q, k) in doc_pool() {
            let ans = cluster.doc_search(q, k);
            assert!(ans.coverage.is_complete());
            assert_eq!(
                format!("{:?}", ans.results),
                format!("{:?}", reference_doc_search(woc, q, k))
            );
        }
        assert_audit_clean(&cluster, &format!("incremental epoch {epoch}"));
    }
    assert!(expected_epoch > 1, "churn rounds must have published");
}

/// The segmented delta path through the cluster: a low-churn maintenance
/// pass ships only the engine's delta segments — the frozen base segment
/// is the same allocation on the engine and the router's full server, and
/// only the shards owning changed records rebuild their record side
/// (unchanged shards re-ship their old `Arc`, because the pinned scoring
/// statistics are stable across delta epochs). Scatter-gather answers at
/// the new epoch stay byte-identical to the single-node reference.
#[test]
fn segmented_delta_publish_rebuilds_only_changed_shards() {
    let mut world = World::generate(WorldConfig::tiny(704));
    let corpus_cfg = CorpusConfig::tiny(74);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = IncrEngine::new(&corpus_v1, PipelineConfig::default());
    let cluster = ClusterServer::new(&corpus_v1, engine.web().clone(), ClusterConfig::default());
    let shards = cluster.config().shards;
    let records_before: Vec<_> = (0..shards).map(|s| cluster.records_side(s)).collect();
    let pm_before = cluster.partition();

    // Low churn so most shards own no changed record.
    let mut seed = 1u64;
    while churn_restaurants(&mut world, 0.02, Tick(10), seed).is_empty() {
        seed += 1;
    }
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);
    let report = engine.maintain(&corpus_v2).expect("maintain must succeed");
    assert!(!report.short_circuited);
    assert!(report.effective_change);
    assert!(
        !report.stats_repinned,
        "low churn must ride on the pinned statistics"
    );
    assert!(!report.changed_records.is_empty());

    let epoch = cluster.publish_delta_segmented(
        &corpus_v2,
        engine.web().clone(),
        &segment_delta(&report),
        Arc::new(engine.segments().clone()),
    );
    assert_eq!(epoch, 2);
    assert_eq!(cluster.epoch(), 2);

    // The router's full server serves the engine's exact segments: the
    // frozen base was shipped by reference, with the churn as deltas.
    let snap = cluster.full().snapshot();
    assert!(Arc::ptr_eq(
        engine.segments().base_segment(),
        snap.segments.base_segment(),
    ));
    assert!(snap.segments.delta_count() > 0, "the pass shipped a delta");

    // Exactly the shards owning a changed record rebuilt their record
    // side; every other shard re-shipped its old `Arc`.
    let pm = cluster.partition();
    let mut changed_shards: Vec<bool> = vec![false; shards];
    for &id in &report.changed_records {
        // A changed record dirties its owner in the new map; a deleted
        // record dirties the shard that owned it in the old map.
        for m in [&pm, &pm_before] {
            if let Some(s) = m.shard_of_record(id) {
                changed_shards[s] = true;
            }
        }
    }
    let mut rebuilt = 0usize;
    for (s, changed) in changed_shards.iter().enumerate() {
        let reused = Arc::ptr_eq(&records_before[s], &cluster.records_side(s));
        assert_eq!(
            reused, !changed,
            "shard {s}: reused={reused} but owns-changed-record={changed}"
        );
        if !reused {
            rebuilt += 1;
        }
    }
    assert!(rebuilt >= 1, "churn must have rebuilt some shard");
    assert!(
        rebuilt < shards,
        "low churn must leave some shard untouched ({rebuilt}/{shards} rebuilt)"
    );

    // Mid-delta (between merge points), scatter-gather answers stay
    // byte-identical to the single-node reference over the maintained web.
    let woc = engine.web();
    for (q, k) in search_pool() {
        let ans = cluster.search(q, k);
        assert!(ans.coverage.is_complete());
        assert_eq!(ans.epoch, 2);
        assert_identical(
            &ans.results,
            &reference_search(woc, q, k),
            &format!("segmented {q:?}"),
        );
    }
    assert_audit_clean(&cluster, "after segmented delta publish");
}
