//! # woc-cluster — sharded multi-node serving of the web of concepts
//!
//! The paper's serving stance (§2.2) is that concept records ride
//! "massively scalable inverted index implementations"; `woc-serve`
//! builds the single-node read tier, and this crate scales it *out*: a
//! built [`WebOfConcepts`] is deterministically partitioned across `N`
//! simulated shard nodes ([`PartitionMap`]), each shard holds `R`
//! replicas of its shard-local indexes under the same epoch-swap
//! discipline `woc-serve` uses, and a scatter-gather router answers
//! `search` / `lookup` / `doc_search` with per-shard virtual-clock
//! timeouts and hedged requests.
//!
//! The load-bearing invariant, enforced by the partition/failover chaos
//! suite: **quorum serving is byte-identical to single-node answers**.
//! Shard indexes score through corpus-global [`woc_index::ScoringStats`],
//! so every hit carries the bitwise-identical score the full index would
//! give it, and the router's merge reproduces the full index's ordering.
//! When faults (via [`woc_chaos::ShardFaultInjector`]) take out every
//! usable replica of a shard, the router degrades with explicit
//! [`Coverage::Partial`] metadata — never a silently partial epoch. The
//! W013 shard-coverage audit ([`woc_audit::check_shard_coverage`]) checks
//! the partition tiles the web and replicas do not diverge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod partition;
pub mod router;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use woc_apps::{hydrate_record_hit, interpret_query, ConceptResult};
use woc_audit::{audit_with_cluster, Audit, AuditConfig, ShardCoverageView};
use woc_chaos::{ShardFaultInjector, ShardFaultProfile};
use woc_core::WebOfConcepts;
use woc_index::{FieldQuery, RecordHit, SegmentedLrecIndex};
use woc_lrec::LrecId;
use woc_serve::{ConceptServer, EpochDelta, SegmentDelta, ServeConfig, Snapshot};
use woc_textkit::tokenize::tokenize_words;
use woc_webgen::WebCorpus;

pub use node::{ReplicaState, ShardDocs, ShardNode, ShardRecords};
pub use partition::{host_of, PartitionGroup, PartitionMap};
pub use router::{Coverage, RouterStats, RouterStatsSnapshot, POSTING_MICROS};

/// Cluster topology and routing knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shard nodes.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Per-shard budget: a shard whose best path exceeds this is dropped
    /// from the answer (explicitly, via [`Coverage::Partial`]).
    pub timeout_micros: u64,
    /// Service time above which a hedged request fires to a second
    /// replica; the shard's latency becomes the better of the two paths.
    pub hedge_micros: u64,
    /// Fixed per-request virtual cost (connect + dispatch) per replica
    /// touched.
    pub base_latency_micros: u64,
    /// Rebalance when max/mean shard size exceeds this (see
    /// [`PartitionMap::build`]).
    pub rebalance_threshold: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            replicas: 2,
            timeout_micros: 50_000,
            hedge_micros: 2_000,
            base_latency_micros: 100,
            rebalance_threshold: 1.5,
        }
    }
}

/// A scatter-gather concept-search answer.
#[derive(Debug, Clone)]
pub struct ClusterAnswer {
    /// Merged, hydrated hits — byte-identical to the single-node answer
    /// when coverage is complete.
    pub results: Vec<ConceptResult>,
    /// The epoch every contributing shard served.
    pub epoch: u64,
    /// Whether every shard answered.
    pub coverage: Coverage,
    /// Virtual end-to-end latency (max over shards; scatter is parallel).
    pub virtual_micros: u64,
    /// Shards that fired a hedged request.
    pub hedged_shards: usize,
}

/// A routed single-record lookup.
#[derive(Debug, Clone)]
pub struct LookupAnswer {
    /// The record, hydrated by its owning shard (`None` when the id does
    /// not resolve to a live record — or, under [`Coverage::Partial`],
    /// when the owner could not serve).
    pub result: Option<ConceptResult>,
    /// The epoch served.
    pub epoch: u64,
    /// Whether the owning shard answered.
    pub coverage: Coverage,
    /// Virtual latency of the routed request.
    pub virtual_micros: u64,
}

/// A scatter-gather document-search answer.
#[derive(Debug, Clone)]
pub struct DocAnswer {
    /// `(url, score)` hits, byte-identical to the full doc index's
    /// answer when coverage is complete.
    pub results: Vec<(String, f64)>,
    /// The epoch every contributing shard served.
    pub epoch: u64,
    /// Whether every shard answered.
    pub coverage: Coverage,
    /// Virtual end-to-end latency.
    pub virtual_micros: u64,
}

/// The cluster's canonical state for one epoch: the full snapshot (the
/// metadata/hydration plane) plus each shard's two index sides.
#[derive(Debug)]
struct ClusterState {
    snap: Arc<Snapshot>,
    partition: Arc<PartitionMap>,
    records: Vec<Arc<ShardRecords>>,
    docs: Vec<Arc<ShardDocs>>,
}

/// The sharded serving tier: a [`ConceptServer`] epoch authority, `N`
/// [`ShardNode`]s of `R` replicas each, and the scatter-gather router.
#[derive(Debug)]
pub struct ClusterServer {
    config: ClusterConfig,
    full: ConceptServer,
    /// Publish-hook inbox: the epoch authority pushes each newly installed
    /// snapshot here (the `woc-serve` replication seam), and the cluster
    /// fans it out to shard replicas.
    inbox: Arc<RwLock<Option<Arc<Snapshot>>>>,
    state: RwLock<Arc<ClusterState>>,
    nodes: Vec<ShardNode>,
    injector: RwLock<Arc<ShardFaultInjector>>,
    clock: AtomicU64,
    seq: AtomicU64,
    stats: RouterStats,
}

impl ClusterServer {
    /// Partition `woc` across the configured topology and start serving
    /// epoch 1 on every replica. `corpus` supplies document text for the
    /// shard doc indexes (the web stores URLs and titles, not bodies).
    pub fn new(corpus: &WebCorpus, woc: WebOfConcepts, config: ClusterConfig) -> Self {
        assert!(config.shards >= 1, "a cluster needs at least one shard");
        assert!(config.replicas >= 1, "a shard needs at least one replica");
        let full = ConceptServer::new(woc, ServeConfig::default());
        let inbox: Arc<RwLock<Option<Arc<Snapshot>>>> = Arc::new(RwLock::new(None));
        let sink = Arc::clone(&inbox);
        full.on_publish(Box::new(move |snap| *sink.write() = Some(Arc::clone(snap))));
        let snap = full.snapshot();
        let state = Arc::new(build_state(&snap, corpus, &config, None));
        let nodes = (0..config.shards)
            .map(|s| {
                ShardNode::new(
                    config.replicas,
                    Arc::new(ReplicaState {
                        epoch: snap.epoch,
                        snap: Arc::clone(&snap),
                        records: Arc::clone(&state.records[s]),
                        docs: Arc::clone(&state.docs[s]),
                    }),
                )
            })
            .collect();
        Self {
            config,
            full,
            inbox,
            state: RwLock::new(state),
            nodes,
            injector: RwLock::new(Arc::new(ShardFaultInjector::new(
                ShardFaultProfile::healthy(),
                0,
            ))),
            clock: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            stats: RouterStats::default(),
        }
    }

    /// The routing configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The single-node epoch authority (and reference server) inside the
    /// cluster — chaos tests compare scatter-gather answers against it.
    pub fn full(&self) -> &ConceptServer {
        &self.full
    }

    /// The cluster epoch.
    pub fn epoch(&self) -> u64 {
        self.state.read().snap.epoch
    }

    /// The current partition map.
    pub fn partition(&self) -> Arc<PartitionMap> {
        Arc::clone(&self.state.read().partition)
    }

    /// The canonical record side of `shard` (Arc identity is observable:
    /// an incremental publish re-ships untouched sides unchanged).
    pub fn records_side(&self, shard: usize) -> Arc<ShardRecords> {
        Arc::clone(&self.state.read().records[shard])
    }

    /// The canonical doc side of `shard`.
    pub fn docs_side(&self, shard: usize) -> Arc<ShardDocs> {
        Arc::clone(&self.state.read().docs[shard])
    }

    /// Install a shard-fault profile rolled from `seed`. Takes effect on
    /// the next request; the virtual clock keeps running.
    pub fn set_faults(&self, profile: ShardFaultProfile, seed: u64) {
        *self.injector.write() = Arc::new(ShardFaultInjector::new(profile, seed));
    }

    /// Remove all injected faults.
    pub fn clear_faults(&self) {
        self.set_faults(ShardFaultProfile::healthy(), 0);
    }

    /// Current virtual time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Snapshot the routing state. The read guard lives only inside this
    /// expression, so no caller ever holds it across another lock.
    fn routing_state(&self) -> Arc<ClusterState> {
        Arc::clone(&self.state.read())
    }

    /// Snapshot the active fault injector under the same single-lock rule.
    fn fault_injector(&self) -> Arc<ShardFaultInjector> {
        Arc::clone(&self.injector.read())
    }

    /// Advance the virtual clock (e.g. to cross a flap window).
    pub fn advance_clock(&self, micros: u64) {
        self.clock.fetch_add(micros, Ordering::Relaxed);
    }

    /// Router counters.
    pub fn stats(&self) -> RouterStatsSnapshot {
        self.stats.snapshot()
    }

    /// Publish `woc` as the next epoch: the epoch authority swaps its
    /// snapshot (firing the publish hook), the partition map and shard
    /// sides rebuild — re-shipping any side whose inputs are unchanged as
    /// the same `Arc` — and every replica *reachable at the current
    /// virtual time* installs the new epoch. Unreachable replicas stay on
    /// their old epoch; the router refuses them until
    /// [`ClusterServer::sync_replicas`] (or a later publish) catches them
    /// up. Returns the new epoch.
    pub fn publish(&self, corpus: &WebCorpus, woc: WebOfConcepts) -> u64 {
        self.full.publish(woc);
        let snap = self
            .inbox
            .write()
            .take()
            .unwrap_or_else(|| self.full.snapshot());
        let prev = self.routing_state();
        let next = Arc::new(build_state(&snap, corpus, &self.config, Some(&prev)));
        *self.state.write() = Arc::clone(&next);
        self.sync_replicas();
        snap.epoch
    }

    /// Publish only if `delta` carries actual record or document changes
    /// — the cluster form of [`ConceptServer::publish_delta`]. An
    /// effectively-empty delta is a no-op: no epoch bump, no shard
    /// rebuild, no replica churn.
    pub fn publish_delta(&self, corpus: &WebCorpus, woc: WebOfConcepts, delta: &EpochDelta) -> u64 {
        if delta.is_effectively_empty() {
            return self.epoch();
        }
        self.publish(corpus, woc)
    }

    /// Publish a maintained web together with its incrementally-maintained
    /// segmented index — the cluster form of
    /// [`ConceptServer::publish_delta_segmented`]. The epoch authority
    /// retains its result cache by the delta's scope, the new snapshot
    /// ships the maintained segments (sharing the frozen base with the
    /// previous epoch), and the shard fan-out re-ships every record side
    /// whose owned entries and pinned statistics are unchanged — so only
    /// the shards owning changed records rebuild. An effectively-empty
    /// delta is a no-op.
    pub fn publish_delta_segmented(
        &self,
        corpus: &WebCorpus,
        woc: WebOfConcepts,
        delta: &SegmentDelta,
        segments: Arc<SegmentedLrecIndex>,
    ) -> u64 {
        if delta.base.is_effectively_empty() {
            return self.epoch();
        }
        self.full.publish_delta_segmented(woc, delta, segments);
        let snap = self
            .inbox
            .write()
            .take()
            .unwrap_or_else(|| self.full.snapshot());
        let prev = self.routing_state();
        let next = Arc::new(build_state(&snap, corpus, &self.config, Some(&prev)));
        *self.state.write() = Arc::clone(&next);
        self.sync_replicas();
        snap.epoch
    }

    /// Install the canonical state into every replica reachable at the
    /// current virtual time — the anti-entropy pass that heals stale
    /// replicas after a partition lifts.
    pub fn sync_replicas(&self) {
        let now = self.now_micros();
        let st = self.routing_state();
        let inj = self.fault_injector();
        for (s, node) in self.nodes.iter().enumerate() {
            for r in 0..node.replicas() {
                if inj.replica_down(s, r, now) {
                    continue;
                }
                node.install(
                    r,
                    Arc::new(ReplicaState {
                        epoch: st.snap.epoch,
                        snap: Arc::clone(&st.snap),
                        records: Arc::clone(&st.records[s]),
                        docs: Arc::clone(&st.docs[s]),
                    }),
                );
            }
        }
    }

    /// Concept search (§5.2) with the same geo/cuisine query
    /// interpretation the single-node server applies.
    pub fn search(&self, query: &str, k: usize) -> ClusterAnswer {
        let fq = interpret_query(query).normalized();
        self.search_parsed(&fq, k)
    }

    /// Scatter a parsed query to every shard, gather, and merge into the
    /// single-node answer order. See the crate docs for the byte-identity
    /// argument; the gather stage applies the concept filter, the
    /// scoped-requirement filter, and the final truncation in exactly the
    /// order the single-node path does.
    pub fn search_parsed(&self, fq: &FieldQuery, k: usize) -> ClusterAnswer {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let now = self.now_micros();
        let st = self.routing_state();
        let inj = self.fault_injector();
        let expected = st.snap.epoch;
        // The single-node path over-fetches under a concept filter; mirror
        // its budget exactly so truncation cuts at the same rank.
        let fetch = if fq.concept.is_some() { k * 8 + 32 } else { k };

        let mut served: Vec<Option<Arc<ReplicaState>>> = Vec::with_capacity(self.config.shards);
        let mut missing: Vec<usize> = Vec::new();
        let mut latency = 0u64;
        let mut hedged_shards = 0usize;
        for (s, node) in self.nodes.iter().enumerate() {
            let work = st.records.get(s).map_or(0, |r| r.postings_cost(fq)) * POSTING_MICROS;
            let outcome = router::serve_shard(
                node,
                s,
                expected,
                work,
                &self.config,
                &inj,
                now,
                seq,
                &self.stats,
            );
            latency = latency.max(outcome.latency_micros);
            hedged_shards += outcome.hedged as usize;
            if outcome.state.is_none() {
                missing.push(s);
            }
            served.push(outcome.state);
        }
        self.clock.fetch_add(latency, Ordering::Relaxed);

        let mut raw: Vec<RecordHit> = Vec::new();
        for rs in served.iter().flatten() {
            raw.extend(rs.records.raw_search(fq, fetch));
        }
        raw.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        raw.truncate(fetch);
        let concept_filter = fq
            .concept
            .as_deref()
            .and_then(|n| st.snap.woc.registry.id_of(n));
        if let Some(c) = concept_filter {
            raw.retain(|h| h.concept == c);
        }
        if !fq.scoped.is_empty() {
            let mut ok: std::collections::BTreeSet<LrecId> = Default::default();
            for rs in served.iter().flatten() {
                let mut members: Option<std::collections::BTreeSet<LrecId>> = None;
                for (f, t) in &fq.scoped {
                    let set: std::collections::BTreeSet<LrecId> =
                        rs.records.scoped_members(f, t).into_iter().collect();
                    members = Some(match members {
                        None => set,
                        Some(m) => m.intersection(&set).copied().collect(),
                    });
                }
                ok.extend(members.unwrap_or_default());
            }
            raw.retain(|h| ok.contains(&h.id));
        }
        raw.truncate(k);
        let results = raw
            .iter()
            .filter_map(|h| hydrate_record_hit(&st.snap.woc, h))
            .collect();

        let coverage = if missing.is_empty() {
            Coverage::Complete
        } else {
            self.stats.partial_answers.fetch_add(1, Ordering::Relaxed);
            Coverage::Partial { missing }
        };
        ClusterAnswer {
            results,
            epoch: expected,
            coverage,
            virtual_micros: latency,
            hedged_shards,
        }
    }

    /// Route a single-record lookup to the shard owning the record.
    pub fn lookup(&self, id: LrecId) -> LookupAnswer {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let now = self.now_micros();
        let st = self.routing_state();
        let inj = self.fault_injector();
        let canon = st.snap.woc.store.resolve(id);
        let owner = canon.and_then(|c| st.partition.shard_of_record(c));
        let Some(shard) = owner else {
            // Not a live record: the metadata plane answers directly.
            let latency = self.config.base_latency_micros;
            self.clock.fetch_add(latency, Ordering::Relaxed);
            return LookupAnswer {
                result: None,
                epoch: st.snap.epoch,
                coverage: Coverage::Complete,
                virtual_micros: latency,
            };
        };
        let outcome = router::serve_shard(
            self.nodes
                .get(shard)
                .expect("invariant: routing table only yields shard ids < config.shards"),
            shard,
            st.snap.epoch,
            0,
            &self.config,
            &inj,
            now,
            seq,
            &self.stats,
        );
        self.clock
            .fetch_add(outcome.latency_micros, Ordering::Relaxed);
        let Some(rs) = outcome.state else {
            self.stats.partial_answers.fetch_add(1, Ordering::Relaxed);
            return LookupAnswer {
                result: None,
                epoch: st.snap.epoch,
                coverage: Coverage::Partial {
                    missing: vec![shard],
                },
                virtual_micros: outcome.latency_micros,
            };
        };
        let result = lookup_reference(&rs.snap.woc, id);
        LookupAnswer {
            result,
            epoch: st.snap.epoch,
            coverage: Coverage::Complete,
            virtual_micros: outcome.latency_micros,
        }
    }

    /// Scatter a plain document search to every shard's doc index and
    /// merge by the full index's `(score desc, doc asc)` order.
    pub fn doc_search(&self, query: &str, k: usize) -> DocAnswer {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let now = self.now_micros();
        let st = self.routing_state();
        let inj = self.fault_injector();
        let terms = tokenize_words(query);

        let mut hits: Vec<(u32, f64)> = Vec::new();
        let mut missing: Vec<usize> = Vec::new();
        let mut latency = 0u64;
        for (s, node) in self.nodes.iter().enumerate() {
            let work = st.docs.get(s).map_or(0, |d| d.postings_cost(&terms)) * POSTING_MICROS;
            let outcome = router::serve_shard(
                node,
                s,
                st.snap.epoch,
                work,
                &self.config,
                &inj,
                now,
                seq,
                &self.stats,
            );
            latency = latency.max(outcome.latency_micros);
            match outcome.state {
                Some(rs) => hits.extend(rs.docs.raw_search(&terms, k)),
                None => missing.push(s),
            }
        }
        self.clock.fetch_add(latency, Ordering::Relaxed);
        router::merge_by_score(&mut hits);
        hits.truncate(k);
        let results = hits
            .into_iter()
            .filter_map(|(pos, score)| {
                st.snap
                    .woc
                    .doc_urls
                    .get(pos as usize)
                    .map(|url| (url.clone(), score))
            })
            .collect();
        let coverage = if missing.is_empty() {
            Coverage::Complete
        } else {
            self.stats.partial_answers.fetch_add(1, Ordering::Relaxed);
            Coverage::Partial { missing }
        };
        DocAnswer {
            results,
            epoch: st.snap.epoch,
            coverage,
            virtual_micros: latency,
        }
    }

    /// The plain-data coverage view the W013 audit checks: the partition
    /// assignment plus every replica's `(epoch, content digest)`.
    pub fn coverage_view(&self) -> ShardCoverageView {
        let st = self.routing_state();
        ShardCoverageView {
            shards: self.config.shards,
            record_owners: st.partition.record_entries(),
            doc_owners: st.partition.doc_entries(),
            expected_epoch: st.snap.epoch,
            replicas: self
                .nodes
                .iter()
                .map(|n| {
                    (0..n.replicas())
                        .map(|r| {
                            let rs = n.replica(r);
                            (rs.epoch, rs.digest())
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Run the full audit (W001–W012) over the served web plus the W013
    /// shard-coverage check over this cluster's view of it and the W014
    /// segment-metadata check over the epoch's segmented record index.
    pub fn audit(&self, cfg: &AuditConfig) -> Audit {
        let st = self.routing_state();
        let mut a = audit_with_cluster(&st.snap.woc, &self.coverage_view(), cfg);
        a.checks.push(woc_audit::check_segments(
            &st.snap.woc,
            &st.snap.segments,
            cfg,
        ));
        a
    }
}

/// The single-node reference for [`ClusterServer::lookup`]: resolve
/// through merge tombstones, then hydrate the surviving live record.
pub fn lookup_reference(woc: &WebOfConcepts, id: LrecId) -> Option<ConceptResult> {
    let canon = woc.store.resolve(id)?;
    let rec = woc.store.latest(canon)?;
    hydrate_record_hit(
        woc,
        &RecordHit {
            id: canon,
            concept: rec.concept(),
            score: 0.0,
        },
    )
}

/// Build the canonical cluster state for a snapshot, re-shipping any
/// shard side whose input digest matches the previous state (same owned
/// entries, same global stats ⇒ a rebuild would be byte-identical).
fn build_state(
    snap: &Arc<Snapshot>,
    corpus: &WebCorpus,
    config: &ClusterConfig,
    prev: Option<&ClusterState>,
) -> ClusterState {
    let partition = Arc::new(PartitionMap::build(
        &snap.woc,
        config.shards,
        config.rebalance_threshold,
    ));
    let mut records = Vec::with_capacity(config.shards);
    let mut docs = Vec::with_capacity(config.shards);
    // Shard records score through the epoch's *pinned* statistics (the
    // segmented index's), not the flat index's own: between merge points
    // the single-node path scores through the pinned snapshot, and shard
    // hits must carry bitwise-identical scores. At every merge point the
    // two coincide. Stable pinned stats also mean a delta publish leaves
    // the record-side digest of every unchanged shard intact — only
    // shards owning changed records rebuild.
    let pinned = snap.segments.pinned_stats();
    for s in 0..config.shards {
        let rd = node::record_entries_digest(&snap.woc, &partition, s, pinned);
        records.push(match prev {
            Some(p) if p.records[s].entries_digest == rd => Arc::clone(&p.records[s]),
            _ => Arc::new(node::build_shard_records(
                &snap.woc,
                &partition,
                s,
                rd,
                pinned.clone(),
            )),
        });
        let dd = node::doc_entries_digest(&snap.woc, corpus, &partition, s);
        docs.push(match prev {
            Some(p) if p.docs[s].entries_digest == dd => Arc::clone(&p.docs[s]),
            _ => Arc::new(node::build_shard_docs(&snap.woc, corpus, &partition, s, dd)),
        });
    }
    ClusterState {
        snap: Arc::clone(snap),
        partition,
        records,
        docs,
    }
}
