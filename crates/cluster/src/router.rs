//! The scatter-gather router: replica selection, hedged requests, and the
//! merge that reproduces single-node answer order.
//!
//! Time is virtual (microseconds on a shared counter, never slept). A
//! query scatters to every shard in parallel, so its latency is the *max*
//! over per-shard service times; each shard's service time is a
//! deterministic function of the fault injector's rolls and the shard's
//! posting-list work for the query. Determinism end to end: replaying the
//! same query sequence against the same seed reproduces every latency,
//! every hedge, and every answer byte.
//!
//! Per shard, the router walks the replica ring starting at
//! `(seq + shard) % R` (rotation spreads load and makes single-replica
//! faults visible to some-but-not-all queries). A dead replica costs one
//! probe; a replica serving the wrong epoch is *refused* (stale replicas
//! are what a failover leaves behind — serving one silently would tear
//! the epoch) and costs one probe. The first live, epoch-correct replica
//! serves; when its service time exceeds the hedge threshold and another
//! live fresh replica exists, a hedged request fires and the shard's
//! latency is the better of the two paths. A shard with no usable replica
//! — or whose best path exceeds the timeout — is reported missing, and
//! the answer degrades with explicit [`Coverage::Partial`] metadata.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use woc_chaos::ShardFaultInjector;

use crate::node::{ReplicaState, ShardNode};
use crate::ClusterConfig;

/// Virtual cost of walking one posting entry, in microseconds. The work
/// term is what makes scatter-gather *scale*: shards own disjoint posting
/// lists, so the per-shard work — and with it the max-over-shards query
/// latency — shrinks as shards are added.
pub const POSTING_MICROS: u64 = 2;

/// How much of the answer's shard coverage arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Coverage {
    /// Every shard answered at the expected epoch.
    Complete,
    /// These shards could not serve; their records are absent from the
    /// answer and the caller is told so — never a silently partial epoch.
    Partial {
        /// Missing shard indexes, ascending.
        missing: Vec<usize>,
    },
}

impl Coverage {
    /// True when every shard answered.
    pub fn is_complete(&self) -> bool {
        matches!(self, Coverage::Complete)
    }
}

/// Router counters (atomics: the router serves concurrently).
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Hedged requests fired.
    pub hedges: AtomicU64,
    /// Dead replicas probed.
    pub dead_probes: AtomicU64,
    /// Stale (wrong-epoch) replicas refused.
    pub stale_skips: AtomicU64,
    /// Answers that degraded to partial coverage.
    pub partial_answers: AtomicU64,
}

/// A point-in-time copy of [`RouterStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStatsSnapshot {
    /// Hedged requests fired.
    pub hedges: u64,
    /// Dead replicas probed.
    pub dead_probes: u64,
    /// Stale (wrong-epoch) replicas refused.
    pub stale_skips: u64,
    /// Answers that degraded to partial coverage.
    pub partial_answers: u64,
}

impl RouterStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> RouterStatsSnapshot {
        RouterStatsSnapshot {
            hedges: self.hedges.load(Ordering::Relaxed),
            dead_probes: self.dead_probes.load(Ordering::Relaxed),
            stale_skips: self.stale_skips.load(Ordering::Relaxed),
            partial_answers: self.partial_answers.load(Ordering::Relaxed),
        }
    }
}

/// The outcome of routing one shard's portion of a query.
#[derive(Debug)]
pub struct ShardServe {
    /// The replica state that served, `None` when the shard is missing.
    pub state: Option<Arc<ReplicaState>>,
    /// Virtual service latency for this shard, probes included.
    pub latency_micros: u64,
    /// True when a hedged request fired.
    pub hedged: bool,
}

/// Route one shard: walk the replica ring, probe past dead and stale
/// replicas, serve from the first usable one, hedge when it is slow.
/// `work_micros` is the deterministic evaluation cost of the query on
/// this shard (same on every replica — replicas are identical).
#[allow(clippy::too_many_arguments)]
pub fn serve_shard(
    node: &ShardNode,
    shard: usize,
    expected_epoch: u64,
    work_micros: u64,
    cfg: &ClusterConfig,
    injector: &ShardFaultInjector,
    now_micros: u64,
    seq: u64,
    stats: &RouterStats,
) -> ShardServe {
    let replicas = node.replicas();
    let start = (seq as usize + shard) % replicas;
    let mut latency = 0u64;
    let mut usable: Vec<usize> = Vec::new();
    for i in 0..replicas {
        let r = (start + i) % replicas;
        if injector.replica_down(shard, r, now_micros) {
            stats.dead_probes.fetch_add(1, Ordering::Relaxed);
            latency += cfg.base_latency_micros;
            continue;
        }
        if node.replica(r).epoch != expected_epoch {
            stats.stale_skips.fetch_add(1, Ordering::Relaxed);
            latency += cfg.base_latency_micros;
            continue;
        }
        usable.push(r);
        if usable.len() == 2 {
            break; // primary + hedge candidate found
        }
    }
    let Some(&primary) = usable.first() else {
        return ShardServe {
            state: None,
            latency_micros: latency.min(cfg.timeout_micros),
            hedged: false,
        };
    };
    let serve_cost = |replica: usize| {
        cfg.base_latency_micros + work_micros + injector.extra_latency_micros(shard, replica, seq)
    };
    let primary_cost = serve_cost(primary);
    let mut hedged = false;
    let mut best = primary_cost;
    if primary_cost > cfg.hedge_micros {
        if let Some(&backup) = usable.get(1) {
            hedged = true;
            stats.hedges.fetch_add(1, Ordering::Relaxed);
            best = best.min(cfg.hedge_micros + serve_cost(backup));
        }
    }
    latency += best;
    if latency > cfg.timeout_micros {
        return ShardServe {
            state: None,
            latency_micros: cfg.timeout_micros,
            hedged,
        };
    }
    ShardServe {
        state: Some(node.replica(primary)),
        latency_micros: latency,
        hedged,
    }
}

/// Merge scattered hits into the single-node order: score descending,
/// tie-broken by ascending id. The full index resolves ties by internal
/// doc id, which is ascending in record/doc id because both the pipeline
/// and the shard builders index in sorted id order — so this comparator
/// reproduces the single-node ranking exactly.
pub fn merge_by_score<T>(items: &mut [(T, f64)])
where
    T: Ord + Copy,
{
    items.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
}
