//! Deterministic partitioning of a built web across shard nodes.
//!
//! Records are grouped by *(concept, source host)* — the locality unit the
//! paper's construction pipeline naturally produces, since a host's pages
//! feed extraction for one concept at a time — and every group is assigned
//! to a shard by a stable hash of its key. Documents partition by source
//! host alone. The map is a pure function of the built web and the shard
//! count: rebuilding it on any machine, at any thread count, yields the
//! byte-identical assignment (the `woc-cluster` proptests pin this).
//!
//! When churn skews the hash assignment past a configurable threshold
//! (max shard size / mean shard size), the map is *rebalanced*: groups are
//! re-placed greedily, largest first (ties by key), each onto the currently
//! least-loaded shard. The greedy pass is itself deterministic, so a
//! rebalanced topology is as reproducible as a hashed one.

use std::collections::BTreeMap;

use woc_core::{AssocKind, WebOfConcepts};
use woc_lrec::LrecId;

/// FNV-1a over a string — the stable hash behind shard assignment. Kept
/// local (rather than reusing a hasher from `std`) so the assignment never
/// moves under a std hasher change.
pub(crate) fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The host portion of a corpus URL (`http://host/path` → `host`). Falls
/// back to the whole string when no scheme separator is present.
pub fn host_of(url: &str) -> &str {
    let rest = url.split_once("://").map(|(_, r)| r).unwrap_or(url);
    rest.split('/').next().unwrap_or(rest)
}

/// One co-located unit of records: everything sharing a partition key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionGroup {
    /// Stable group key (`concept|host`, or a solo key for sourceless
    /// records).
    pub key: String,
    /// The shard the group landed on.
    pub shard: usize,
    /// Member records, ascending.
    pub records: Vec<LrecId>,
}

/// The deterministic record/document → shard assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMap {
    shards: usize,
    groups: Vec<PartitionGroup>,
    record_shard: BTreeMap<LrecId, usize>,
    doc_shard: BTreeMap<String, usize>,
    rebalanced: bool,
}

impl PartitionMap {
    /// Partition `woc` across `shards` nodes, rebalancing when the hashed
    /// assignment's skew (max size / mean size) exceeds
    /// `rebalance_threshold`.
    pub fn build(woc: &WebOfConcepts, shards: usize, rebalance_threshold: f64) -> Self {
        assert!(shards >= 1, "a cluster needs at least one shard");
        // Group records by (concept, source host). `live_ids()` is sorted,
        // so group membership vectors come out ascending.
        let mut by_key: BTreeMap<String, Vec<LrecId>> = BTreeMap::new();
        for id in woc.store.live_ids() {
            let rec = match woc.store.latest(id) {
                Some(r) => r,
                None => continue,
            };
            let mut sources = woc.web.docs_of_kind(id, AssocKind::ExtractedFrom);
            if sources.is_empty() {
                sources = woc
                    .web
                    .docs_of(id)
                    .iter()
                    .map(|(u, _)| u.as_str())
                    .collect();
            }
            sources.sort_unstable();
            let key = match sources.first() {
                Some(url) => format!("{}|{}", rec.concept().0, host_of(url)),
                // A record with no associated documents partitions alone.
                None => format!("{}|rec-{}", rec.concept().0, id.0),
            };
            by_key.entry(key).or_default().push(id);
        }

        let mut groups: Vec<PartitionGroup> = by_key
            .into_iter()
            .map(|(key, records)| {
                let shard = (fnv64(&key) % shards as u64) as usize;
                PartitionGroup {
                    key,
                    shard,
                    records,
                }
            })
            .collect();

        let rebalanced = shards > 1 && skew_of(&groups, shards) > rebalance_threshold;
        if rebalanced {
            // Greedy re-placement: largest group first (ties by key, which
            // is unique), onto the currently least-loaded shard (ties to
            // the lowest shard index). Deterministic by construction.
            let mut order: Vec<usize> = (0..groups.len()).collect();
            order.sort_by(|&a, &b| {
                groups[b]
                    .records
                    .len()
                    .cmp(&groups[a].records.len())
                    .then_with(|| groups[a].key.cmp(&groups[b].key))
            });
            let mut load = vec![0usize; shards];
            for i in order {
                let target = least_loaded(&load);
                groups[i].shard = target;
                load[target] += groups[i].records.len();
            }
        }

        let mut record_shard = BTreeMap::new();
        for g in &groups {
            for &id in &g.records {
                record_shard.insert(id, g.shard);
            }
        }
        let doc_shard: BTreeMap<String, usize> = woc
            .doc_urls
            .iter()
            .map(|url| {
                let shard = (fnv64(host_of(url)) % shards as u64) as usize;
                (url.clone(), shard)
            })
            .collect();

        Self {
            shards,
            groups,
            record_shard,
            doc_shard,
            rebalanced,
        }
    }

    /// Number of shards in the topology.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// True when the greedy rebalance pass ran.
    pub fn rebalanced(&self) -> bool {
        self.rebalanced
    }

    /// The partition groups, sorted by key.
    pub fn groups(&self) -> &[PartitionGroup] {
        &self.groups
    }

    /// The shard owning a record, if the record is live.
    pub fn shard_of_record(&self, id: LrecId) -> Option<usize> {
        self.record_shard.get(&id).copied()
    }

    /// The shard owning a document URL.
    pub fn shard_of_doc(&self, url: &str) -> Option<usize> {
        self.doc_shard.get(url).copied()
    }

    /// Every `(record, shard)` assignment, ascending by record id.
    pub fn record_entries(&self) -> Vec<(LrecId, usize)> {
        self.record_shard.iter().map(|(&id, &s)| (id, s)).collect()
    }

    /// Every `(doc URL, shard)` assignment, ascending by URL.
    pub fn doc_entries(&self) -> Vec<(String, usize)> {
        self.doc_shard
            .iter()
            .map(|(u, &s)| (u.clone(), s))
            .collect()
    }

    /// Records owned by `shard`, ascending.
    pub fn records_of_shard(&self, shard: usize) -> Vec<LrecId> {
        self.record_shard
            .iter()
            .filter(|&(_, &s)| s == shard)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Global doc-index positions owned by `shard`, ascending. Positions
    /// index into `woc.doc_urls` of the web the map was built from.
    pub fn doc_positions_of_shard(&self, woc: &WebOfConcepts, shard: usize) -> Vec<u32> {
        woc.doc_urls
            .iter()
            .enumerate()
            .filter(|(_, url)| self.shard_of_doc(url) == Some(shard))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Records per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in self.record_shard.values() {
            sizes[s] += 1;
        }
        sizes
    }

    /// Skew of the current assignment: max shard size / mean shard size
    /// (1.0 = perfectly even; 0.0 for an empty web).
    pub fn skew(&self) -> f64 {
        let sizes = self.shard_sizes();
        let total: usize = sizes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.shards as f64;
        sizes.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

fn skew_of(groups: &[PartitionGroup], shards: usize) -> f64 {
    let mut sizes = vec![0usize; shards];
    for g in groups {
        sizes[g.shard] += g.records.len();
    }
    let total: usize = sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / shards as f64;
    sizes.iter().copied().max().unwrap_or(0) as f64 / mean
}

fn least_loaded(load: &[usize]) -> usize {
    let mut best = 0usize;
    for (i, &l) in load.iter().enumerate() {
        if l < load[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn tiny_woc() -> WebOfConcepts {
        let world = World::generate(WorldConfig::tiny(311));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(31));
        build(&corpus, &PipelineConfig::default())
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("http://yolp.test/r/3"), "yolp.test");
        assert_eq!(host_of("city-eats.test/list"), "city-eats.test");
        assert_eq!(host_of("bare"), "bare");
    }

    #[test]
    fn every_live_record_and_doc_owned_exactly_once() {
        let woc = tiny_woc();
        for shards in [1, 2, 4, 7] {
            let pm = PartitionMap::build(&woc, shards, 100.0);
            let live = woc.store.live_ids();
            assert_eq!(pm.record_entries().len(), live.len());
            for id in &live {
                let s = pm.shard_of_record(*id).expect("live record owned");
                assert!(s < shards);
            }
            for url in &woc.doc_urls {
                let s = pm.shard_of_doc(url).expect("doc owned");
                assert!(s < shards);
            }
            let total: usize = pm.shard_sizes().iter().sum();
            assert_eq!(total, live.len(), "shard sizes tile the web");
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let woc = tiny_woc();
        let a = PartitionMap::build(&woc, 4, 1.5);
        let b = PartitionMap::build(&woc, 4, 1.5);
        assert_eq!(a, b);
    }

    #[test]
    fn groups_colocate_concept_and_host() {
        let woc = tiny_woc();
        let pm = PartitionMap::build(&woc, 4, 100.0);
        assert!(!pm.groups().is_empty());
        for g in pm.groups() {
            for &id in &g.records {
                assert_eq!(pm.shard_of_record(id), Some(g.shard));
            }
        }
    }

    #[test]
    fn rebalance_fires_on_skew_and_improves_it() {
        let woc = tiny_woc();
        // Threshold 1.0 can only be met by a perfectly even assignment, so
        // any real web trips the rebalance.
        let hashed = PartitionMap::build(&woc, 4, 1_000.0);
        let balanced = PartitionMap::build(&woc, 4, 1.0000001);
        assert!(!hashed.rebalanced());
        if balanced.rebalanced() {
            assert!(
                balanced.skew() <= hashed.skew() + 1e-9,
                "greedy placement must not worsen skew: {} vs {}",
                balanced.skew(),
                hashed.skew()
            );
        }
        // Coverage still tiles the web after rebalancing.
        let live = woc.store.live_ids();
        assert_eq!(balanced.record_entries().len(), live.len());
        // And the rebalanced map is as deterministic as the hashed one.
        assert_eq!(balanced, PartitionMap::build(&woc, 4, 1.0000001));
    }

    #[test]
    fn single_shard_owns_everything() {
        let woc = tiny_woc();
        let pm = PartitionMap::build(&woc, 1, 1.5);
        assert_eq!(pm.shard_sizes(), vec![woc.store.live_ids().len()]);
        assert!((pm.skew() - 1.0).abs() < 1e-12);
        assert!(!pm.rebalanced(), "one shard can never be skewed");
    }
}
