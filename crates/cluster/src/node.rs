//! Shard nodes: shard-local indexes scored through corpus-global
//! statistics, held in replicated epoch-swapped slots.
//!
//! Each shard owns a disjoint subset of the web's records and documents
//! (see [`crate::partition`]). A shard indexes *only* what it owns, but
//! scores through a [`ScoringStats`] snapshot taken from the full-web
//! indexes — BM25 idf and average length are corpus-global, so a shard hit
//! carries the bitwise-identical score the single-node index would give
//! the same record. That is the whole byte-identity argument: per-record
//! scores equal, and the router's merge reproduces the full index's
//! `(score desc, id asc)` order.
//!
//! A [`ShardNode`] holds `R` replica slots. Each slot epoch-swaps an
//! `Arc<ReplicaState>` exactly the way `woc-serve` swaps snapshots: a
//! publish installs a new `Arc`, in-flight readers drain on the old one.
//! Replica state is two independently-reusable halves — the record side
//! and the doc side — so an incremental publish that only touched one
//! side re-ships only that side (see `ClusterServer::publish`).

use std::sync::Arc;

use parking_lot::RwLock;

use woc_core::{doc_tokens, WebOfConcepts};
use woc_index::{scoped_term, FieldQuery, InvertedIndex, LrecIndex, RecordHit, ScoringStats};
use woc_lrec::LrecId;
use woc_serve::Snapshot;
use woc_webgen::WebCorpus;

use crate::partition::PartitionMap;

/// FNV-1a step over a u64, for composing content digests.
fn mix64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for i in 0..8 {
        h ^= (v >> (i * 8)) & 0xff;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The record side of one shard: a [`LrecIndex`] over owned records plus
/// the global stats it scores through.
#[derive(Debug)]
pub struct ShardRecords {
    /// The shard this side belongs to.
    pub shard: usize,
    /// Owned record ids, ascending.
    pub ids: Vec<LrecId>,
    /// Shard-local fielded index over the owned records.
    pub index: LrecIndex,
    /// Corpus-global scoring statistics — the *pinned* statistics of the
    /// epoch's segmented index, so shard scores are bitwise-identical to
    /// the single-node segmented search path even between merge points
    /// (at a merge point the pinned statistics equal the flat index's own).
    pub stats: ScoringStats,
    /// Shard-local statistics (document frequencies of owned records) —
    /// the router's deterministic cost model reads these.
    pub local_stats: ScoringStats,
    /// Digest of the inputs this side was built from (owned entries +
    /// global stats); equal digests ⇒ a rebuild would be byte-identical,
    /// so the old `Arc` can be reshipped.
    pub entries_digest: u64,
    /// Digest of the built content, for W013 replica-divergence checks.
    pub content_digest: u64,
}

impl ShardRecords {
    /// Raw scatter-stage search: score the query's free and scoped terms
    /// against the owned records through the global stats, with **no**
    /// concept filter, scoped-requirement filter, or final truncation —
    /// those are router (gather-stage) concerns, applied after the global
    /// merge exactly where the single-node path applies them.
    pub fn raw_search(&self, fq: &FieldQuery, fetch: usize) -> Vec<RecordHit> {
        let mut q = FieldQuery {
            terms: fq.terms.clone(),
            scoped: Vec::new(),
            concept: None,
        };
        for (f, t) in &fq.scoped {
            q.terms.push(scoped_term(f, t));
        }
        self.index
            .search_with_stats(&q, fetch, |_| None, &self.stats)
    }

    /// Owned records containing the rendered scoped term `field:term` —
    /// the shard-local half of the single-node path's scoped-requirement
    /// check (membership is a per-record predicate, so checking it on the
    /// owning shard equals checking it on the full index).
    pub fn scoped_members(&self, field: &str, term: &str) -> Vec<LrecId> {
        let q = FieldQuery {
            terms: vec![scoped_term(field, term)],
            scoped: Vec::new(),
            concept: None,
        };
        self.index
            .search_with_stats(&q, usize::MAX, |_| None, &self.stats)
            .into_iter()
            .map(|h| h.id)
            .collect()
    }

    /// Deterministic virtual service cost of a query on this shard, in
    /// postings walked: the sum of shard-local document frequencies over
    /// the query's terms. Scoring walks each term's posting list once, so
    /// this is the honest work proxy the latency model charges.
    pub fn postings_cost(&self, fq: &FieldQuery) -> u64 {
        let mut cost = 0u64;
        for t in &fq.terms {
            cost += self.local_stats.df(t) as u64;
        }
        for (f, t) in &fq.scoped {
            cost += self.local_stats.df(&scoped_term(f, t)) as u64;
        }
        cost
    }
}

/// The document side of one shard: an [`InvertedIndex`] over owned pages
/// plus the local→global doc-id mapping.
#[derive(Debug)]
pub struct ShardDocs {
    /// The shard this side belongs to.
    pub shard: usize,
    /// Global doc-index positions owned by this shard, ascending; entry
    /// `i` is the global position of shard-local `DocId(i)`.
    pub global: Vec<u32>,
    /// Shard-local inverted index over the owned pages' text.
    pub index: InvertedIndex,
    /// Corpus-global scoring statistics of the *full* doc index.
    pub stats: ScoringStats,
    /// Shard-local statistics, for the router's cost model.
    pub local_stats: ScoringStats,
    /// Input digest (owned pages + global stats) for reuse decisions.
    pub entries_digest: u64,
    /// Built-content digest for W013.
    pub content_digest: u64,
}

impl ShardDocs {
    /// Raw doc search over owned pages through global stats; hits carry
    /// *global* doc positions so the router's merge reproduces the full
    /// index's `(score desc, doc asc)` order.
    pub fn raw_search(&self, terms: &[String], fetch: usize) -> Vec<(u32, f64)> {
        self.index
            .search_terms_with_stats(terms, fetch, &self.stats)
            .into_iter()
            .filter_map(|h| self.global.get(h.doc.0 as usize).map(|&g| (g, h.score)))
            .collect()
    }

    /// Deterministic virtual service cost (postings walked) of a doc query.
    pub fn postings_cost(&self, terms: &[String]) -> u64 {
        terms.iter().map(|t| self.local_stats.df(t) as u64).sum()
    }
}

/// Digest of everything the record side of `shard` would be built from:
/// the owned `(id, concept, tokens)` entries in ascending id order, plus
/// the pinned global scoring stats. Two equal digests guarantee
/// byte-identical rebuilds, so the publisher can re-ship the old `Arc`
/// instead. Because the pinned statistics are stable across delta epochs,
/// a delta publish rebuilds only the shards that own changed records.
pub fn record_entries_digest(
    woc: &WebOfConcepts,
    pm: &PartitionMap,
    shard: usize,
    stats: &ScoringStats,
) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for id in pm.records_of_shard(shard) {
        let Some(rec) = woc.store.latest(id) else {
            continue;
        };
        h = mix64(h, id.0);
        h = mix64(h, rec.concept().0 as u64);
        for t in LrecIndex::record_tokens(rec) {
            h = mix64(h, crate::partition::fnv64(&t));
        }
    }
    mix64(h, stats.digest())
}

/// Digest of the doc side's inputs: owned `(global position, url, token
/// digest)` entries plus the global doc stats.
pub fn doc_entries_digest(
    woc: &WebOfConcepts,
    corpus: &WebCorpus,
    pm: &PartitionMap,
    shard: usize,
) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for pos in pm.doc_positions_of_shard(woc, shard) {
        let url = &woc.doc_urls[pos as usize];
        h = mix64(h, pos as u64);
        h = mix64(h, crate::partition::fnv64(url));
        if let Some(page) = corpus.get(url) {
            for t in doc_tokens(page) {
                h = mix64(h, crate::partition::fnv64(&t));
            }
        }
    }
    mix64(h, woc.doc_index.scoring_stats().digest())
}

/// Build the record side of `shard` from the web and its partition map.
/// Records are indexed in ascending id order — the same order the
/// pipeline feeds the full index (sorted `live_ids()`), so shard-internal
/// doc ids are ascending in record id and merge ties resolve identically.
pub fn build_shard_records(
    woc: &WebOfConcepts,
    pm: &PartitionMap,
    shard: usize,
    entries_digest: u64,
    stats: ScoringStats,
) -> ShardRecords {
    let ids = pm.records_of_shard(shard);
    let mut index = LrecIndex::new();
    for &id in &ids {
        if let Some(rec) = woc.store.latest(id) {
            index.add_record_tokens(id, rec.concept(), &LrecIndex::record_tokens(rec));
        }
    }
    let local_stats = index.scoring_stats();
    let content_digest = mix64(index.digest(), stats.digest());
    ShardRecords {
        shard,
        ids,
        index,
        stats,
        local_stats,
        entries_digest,
        content_digest,
    }
}

/// Build the doc side of `shard`: index each owned page's token stream
/// (exactly what the full pipeline indexes for it) in ascending global
/// position order.
pub fn build_shard_docs(
    woc: &WebOfConcepts,
    corpus: &WebCorpus,
    pm: &PartitionMap,
    shard: usize,
    entries_digest: u64,
) -> ShardDocs {
    let global = pm.doc_positions_of_shard(woc, shard);
    let mut index = InvertedIndex::new();
    for &pos in &global {
        let url = &woc.doc_urls[pos as usize];
        match corpus.get(url) {
            Some(page) => {
                index.add_tokens(&doc_tokens(page));
            }
            // A URL the corpus no longer carries indexes as empty — it can
            // never match, which is the only sound degraded behavior.
            None => {
                index.add_tokens::<String>(&[]);
            }
        }
    }
    let stats = woc.doc_index.scoring_stats();
    let local_stats = index.scoring_stats();
    let content_digest = mix64(index.digest(), stats.digest());
    ShardDocs {
        shard,
        global,
        index,
        stats,
        local_stats,
        entries_digest,
        content_digest,
    }
}

/// One replica's installed state: an epoch-consistent view of the full
/// snapshot (for hydration) plus the two shard-local index sides.
#[derive(Debug, Clone)]
pub struct ReplicaState {
    /// The epoch this replica serves.
    pub epoch: u64,
    /// The full-web snapshot of that epoch (shared `Arc` — hydration and
    /// metadata only, never scanned for search).
    pub snap: Arc<Snapshot>,
    /// Record side.
    pub records: Arc<ShardRecords>,
    /// Doc side.
    pub docs: Arc<ShardDocs>,
}

impl ReplicaState {
    /// Content digest of everything this replica serves — the value the
    /// W013 shard-coverage audit compares across replicas.
    pub fn digest(&self) -> u64 {
        mix64(self.records.content_digest, self.docs.content_digest)
    }
}

/// One shard node: `R` replica slots, each epoch-swapping an
/// `Arc<ReplicaState>` under a `RwLock` exactly like `woc-serve`'s
/// snapshot swap. Readers clone the `Arc` and evaluate lock-free.
#[derive(Debug)]
pub struct ShardNode {
    slots: Vec<RwLock<Arc<ReplicaState>>>,
}

impl ShardNode {
    /// A node with `replicas` slots, all serving `initial`.
    pub fn new(replicas: usize, initial: Arc<ReplicaState>) -> Self {
        assert!(replicas >= 1, "a shard needs at least one replica");
        Self {
            slots: (0..replicas)
                .map(|_| RwLock::new(Arc::clone(&initial)))
                .collect(),
        }
    }

    /// Number of replica slots.
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// Pin replica `r`'s current state.
    pub fn replica(&self, r: usize) -> Arc<ReplicaState> {
        let slot = self
            .slots
            .get(r)
            .expect("invariant: replica index < replicas()");
        Arc::clone(&slot.read())
    }

    /// Install `state` into replica `r` (the epoch swap).
    pub fn install(&self, r: usize, state: Arc<ReplicaState>) {
        *self.slots[r].write() = state;
    }
}
