//! Unigram and bigram language models with smoothing.
//!
//! These back the *domain-centric generative model of text* that the paper's
//! matching work (§4.2 "Matching", reference \[23\]) uses to decide which
//! record a piece of text (e.g. a review) is about: each candidate record
//! induces a record-specific language model, interpolated with a domain
//! background model, and the record maximizing the text likelihood wins.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A unigram language model with Jelinek–Mercer interpolation against a
/// uniform distribution over an open vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnigramLm {
    counts: HashMap<String, u64>,
    total: u64,
    /// Interpolation weight on the empirical distribution (vs uniform floor).
    lambda: f64,
    /// Assumed vocabulary size for the uniform floor.
    vocab_floor: f64,
}

impl UnigramLm {
    /// Create an empty model. `lambda` in `(0,1)` weights the empirical
    /// distribution; `vocab_floor` is the assumed open-vocabulary size used
    /// for the uniform component (so unseen words get positive probability).
    pub fn new(lambda: f64, vocab_floor: usize) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        assert!(vocab_floor > 0, "vocab floor must be positive");
        Self {
            counts: HashMap::new(),
            total: 0,
            lambda,
            vocab_floor: vocab_floor as f64,
        }
    }

    /// Default configuration used throughout the system.
    pub fn standard() -> Self {
        Self::new(0.8, 50_000)
    }

    /// Observe tokens.
    pub fn observe<S: AsRef<str>>(&mut self, tokens: &[S]) {
        for t in tokens {
            *self.counts.entry(t.as_ref().to_string()).or_insert(0) += 1;
        }
        self.total += tokens.len() as u64;
    }

    /// Probability of a single token (never zero).
    pub fn prob(&self, token: &str) -> f64 {
        let uniform = 1.0 / self.vocab_floor;
        if self.total == 0 {
            return uniform;
        }
        let emp = self.counts.get(token).copied().unwrap_or(0) as f64 / self.total as f64;
        self.lambda * emp + (1.0 - self.lambda) * uniform
    }

    /// Log-likelihood of a token sequence under this model.
    pub fn log_likelihood<S: AsRef<str>>(&self, tokens: &[S]) -> f64 {
        tokens.iter().map(|t| self.prob(t.as_ref()).ln()).sum()
    }

    /// Log-likelihood under a mixture `alpha·self + (1-alpha)·background`,
    /// the record-vs-domain interpolation of the generative matcher.
    pub fn mixture_log_likelihood<S: AsRef<str>>(
        &self,
        background: &UnigramLm,
        alpha: f64,
        tokens: &[S],
    ) -> f64 {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        tokens
            .iter()
            .map(|t| {
                let p = alpha * self.prob(t.as_ref()) + (1.0 - alpha) * background.prob(t.as_ref());
                p.ln()
            })
            .sum()
    }

    /// Total observed token count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct observed tokens.
    pub fn vocab(&self) -> usize {
        self.counts.len()
    }
}

/// A bigram model with backoff to a unigram model; used for fluency scoring
/// of synthetic text and perplexity-based tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BigramLm {
    unigram: UnigramLm,
    bigrams: HashMap<(String, String), u64>,
    context_totals: HashMap<String, u64>,
    /// Weight on the bigram estimate; remainder backs off to the unigram.
    beta: f64,
}

impl BigramLm {
    /// Create an empty bigram model with backoff weight `beta`.
    pub fn new(beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta));
        Self {
            unigram: UnigramLm::standard(),
            bigrams: HashMap::new(),
            context_totals: HashMap::new(),
            beta,
        }
    }

    /// Observe a token sequence (counts all unigrams and adjacent bigrams).
    pub fn observe<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.unigram.observe(tokens);
        for w in tokens.windows(2) {
            let key = (w[0].as_ref().to_string(), w[1].as_ref().to_string());
            *self.bigrams.entry(key).or_insert(0) += 1;
            *self
                .context_totals
                .entry(w[0].as_ref().to_string())
                .or_insert(0) += 1;
        }
    }

    /// P(next | prev) with backoff.
    pub fn cond_prob(&self, prev: &str, next: &str) -> f64 {
        let uni = self.unigram.prob(next);
        let ctx = self.context_totals.get(prev).copied().unwrap_or(0);
        if ctx == 0 {
            return uni;
        }
        let big = self
            .bigrams
            .get(&(prev.to_string(), next.to_string()))
            .copied()
            .unwrap_or(0) as f64
            / ctx as f64;
        self.beta * big + (1.0 - self.beta) * uni
    }

    /// Log-likelihood of a sequence (first token scored by the unigram).
    pub fn log_likelihood<S: AsRef<str>>(&self, tokens: &[S]) -> f64 {
        if tokens.is_empty() {
            return 0.0;
        }
        let mut ll = self.unigram.prob(tokens[0].as_ref()).ln();
        for w in tokens.windows(2) {
            ll += self.cond_prob(w[0].as_ref(), w[1].as_ref()).ln();
        }
        ll
    }

    /// Perplexity per token; lower is more fluent under the model.
    pub fn perplexity<S: AsRef<str>>(&self, tokens: &[S]) -> f64 {
        if tokens.is_empty() {
            return 1.0;
        }
        (-self.log_likelihood(tokens) / tokens.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unigram_unseen_positive() {
        let lm = UnigramLm::standard();
        assert!(lm.prob("anything") > 0.0);
    }

    #[test]
    fn unigram_seen_beats_unseen() {
        let mut lm = UnigramLm::standard();
        lm.observe(&["salsa", "salsa", "tacos"]);
        assert!(lm.prob("salsa") > lm.prob("tacos"));
        assert!(lm.prob("tacos") > lm.prob("pho"));
    }

    #[test]
    fn unigram_probs_reflect_counts() {
        let mut lm = UnigramLm::new(1.0, 10);
        lm.observe(&["a", "a", "b", "c"]);
        assert!((lm.prob("a") - 0.5).abs() < 1e-12);
        assert!((lm.prob("b") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mixture_prefers_matching_record() {
        let mut bg = UnigramLm::standard();
        bg.observe(&["the", "food", "was", "good", "service", "great"]);
        let mut r1 = UnigramLm::standard();
        r1.observe(&["gochi", "tapas", "cupertino", "japanese"]);
        let mut r2 = UnigramLm::standard();
        r2.observe(&["farolito", "taqueria", "mission", "burrito"]);
        let review = ["great", "tapas", "at", "gochi"];
        let l1 = r1.mixture_log_likelihood(&bg, 0.5, &review);
        let l2 = r2.mixture_log_likelihood(&bg, 0.5, &review);
        assert!(
            l1 > l2,
            "review should be attributed to gochi: {l1} vs {l2}"
        );
    }

    #[test]
    fn bigram_captures_order() {
        let mut lm = BigramLm::new(0.9);
        lm.observe(&["hours", "of", "operation"]);
        lm.observe(&["hours", "of", "operation"]);
        assert!(lm.cond_prob("hours", "of") > lm.cond_prob("of", "hours"));
    }

    #[test]
    fn bigram_perplexity_lower_on_training_data() {
        let mut lm = BigramLm::new(0.9);
        let train = ["best", "salsa", "in", "chicago"];
        for _ in 0..10 {
            lm.observe(&train);
        }
        let junk = ["zebra", "quantum", "vortex", "pickle"];
        assert!(lm.perplexity(&train) < lm.perplexity(&junk));
    }

    #[test]
    fn empty_sequence_loglik_zero() {
        let lm = BigramLm::new(0.5);
        assert_eq!(lm.log_likelihood::<&str>(&[]), 0.0);
        assert_eq!(lm.perplexity::<&str>(&[]), 1.0);
    }
}
