//! Field recognizers — the "rules to identify zips/phones" of paper §4.2.
//!
//! Each recognizer scans token sequences (from [`crate::tokenize::tokenize`])
//! and emits [`FieldSpan`]s with byte offsets into the source text and a
//! confidence in `\[0, 1\]`. Recognizers are hand-built scanners rather than
//! regexes: they are deterministic, dependency-free and easy to audit.

use serde::{Deserialize, Serialize};

use crate::gazetteer;
use crate::tokenize::{tokenize, Token, TokenKind};

/// The kind of field a recognizer detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldKind {
    /// US-style phone number, e.g. `(408) 555-0134` or `408-555-0134`.
    Phone,
    /// 5-digit US zip, optionally ZIP+4.
    Zip,
    /// Monetary amount, e.g. `$12.95`.
    Price,
    /// Calendar date, e.g. `January 20, 2010` or `01/20/2010`.
    Date,
    /// Clock time or time range, e.g. `11:30am`, `5pm - 10pm`.
    Time,
    /// Street address: number + street words + suffix, e.g. `19980 Homestead Rd`.
    StreetAddress,
    /// City name from the gazetteer.
    City,
    /// Cuisine word from the gazetteer.
    Cuisine,
    /// Email address.
    Email,
    /// URL (http/https or `www.`-prefixed).
    Url,
}

/// A recognized field occurrence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpan {
    /// What was recognized.
    pub kind: FieldKind,
    /// Byte offset of the span start in the source text.
    pub start: usize,
    /// Byte offset one past the span end.
    pub end: usize,
    /// The matched text.
    pub text: String,
    /// Recognizer confidence in `\[0, 1\]`.
    pub confidence: f64,
}

fn span(kind: FieldKind, toks: &[Token], text: &str, confidence: f64) -> FieldSpan {
    let start = toks.first().map(|t| t.start).unwrap_or(0);
    let end = toks.last().map(|t| t.end).unwrap_or(0);
    FieldSpan {
        kind,
        start,
        end,
        text: text[start..end].to_string(),
        confidence,
    }
}

fn is_digits(t: &Token, len: usize) -> bool {
    t.kind == TokenKind::Number && t.text.len() == len
}

fn is_punct(t: &Token, p: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == p
}

/// Recognize US phone numbers. Accepted shapes over the token stream:
/// `DDD-DDD-DDDD`, `DDD.DDD.DDDD`, `(DDD) DDD-DDDD`, `DDD DDD DDDD`.
pub fn phones(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // (DDD) DDD-DDDD
        if i + 4 < toks.len()
            && is_punct(&toks[i], "(")
            && is_digits(&toks[i + 1], 3)
            && is_punct(&toks[i + 2], ")")
            && is_digits(&toks[i + 3], 3)
            && i + 5 < toks.len()
            && (is_punct(&toks[i + 4], "-") || is_punct(&toks[i + 4], "."))
            && is_digits(&toks[i + 5], 4)
        {
            out.push(span(FieldKind::Phone, &toks[i..=i + 5], text, 0.98));
            i += 6;
            continue;
        }
        // DDD sep DDD sep DDDD where sep is -, ., or adjacency with space
        if i + 2 < toks.len() && is_digits(&toks[i], 3) && is_digits_sep(&toks, i, text).is_some() {
            if let Some(consumed) = is_digits_sep(&toks, i, text) {
                out.push(span(FieldKind::Phone, &toks[i..i + consumed], text, 0.95));
                i += consumed;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Helper: from position `i` (a 3-digit token) try to match the rest of a
/// phone `DDD [sep] DDD [sep] DDDD`; returns number of tokens consumed.
fn is_digits_sep(toks: &[Token], i: usize, _text: &str) -> Option<usize> {
    let mut j = i + 1;
    let mut seps = 0usize;
    // optional separator
    if j < toks.len() && (is_punct(&toks[j], "-") || is_punct(&toks[j], ".")) {
        j += 1;
        seps += 1;
    }
    if j >= toks.len() || !is_digits(&toks[j], 3) {
        return None;
    }
    j += 1;
    if j < toks.len() && (is_punct(&toks[j], "-") || is_punct(&toks[j], ".")) {
        j += 1;
        seps += 1;
    }
    if j >= toks.len() || !is_digits(&toks[j], 4) {
        return None;
    }
    j += 1;
    // Bare "DDD DDD DDDD" without any separator is too ambiguous; require at
    // least one explicit separator.
    if seps == 0 {
        return None;
    }
    Some(j - i)
}

/// Recognize 5-digit zips (optionally ZIP+4). A 5-digit number adjacent to a
/// known state code or city gets higher confidence.
pub fn zips(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_digits(&toks[i], 5) {
            // Exclude when part of a phone-like pattern already.
            let mut end = i;
            let mut conf = 0.6;
            // ZIP+4
            if i + 2 < toks.len() && is_punct(&toks[i + 1], "-") && is_digits(&toks[i + 2], 4) {
                end = i + 2;
                conf = 0.9;
            }
            // Context boost: preceding token is a state code or city word.
            if i > 0 {
                let prev = toks[i - 1].text.to_uppercase();
                if [
                    "CA", "IL", "WA", "TX", "OR", "MA", "NY", "RI", "WI", "CO", "GA",
                ]
                .contains(&prev.as_str())
                {
                    conf = 0.97;
                }
            }
            out.push(span(FieldKind::Zip, &toks[i..=end], text, conf));
            i = end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Recognize monetary amounts: `$D`, `$D.DD`, and `D dollars`.
pub fn prices(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_punct(&toks[i], "$") && i + 1 < toks.len() && toks[i + 1].kind == TokenKind::Number {
            let mut end = i + 1;
            if i + 3 < toks.len() && is_punct(&toks[i + 2], ".") && is_digits(&toks[i + 3], 2) {
                end = i + 3;
            }
            out.push(span(FieldKind::Price, &toks[i..=end], text, 0.97));
            i = end + 1;
            continue;
        }
        if toks[i].kind == TokenKind::Number
            && i + 1 < toks.len()
            && toks[i + 1].lower() == "dollars"
        {
            out.push(span(FieldKind::Price, &toks[i..=i + 1], text, 0.9));
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Recognize dates: `Month D, YYYY`, `Month D YYYY`, `M/D/YYYY`, `YYYY-MM-DD`.
pub fn dates(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let months = gazetteer::month_set();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Month D[,] YYYY
        if toks[i].kind == TokenKind::Word && months.contains(capitalize(&toks[i].text).as_str()) {
            let mut j = i + 1;
            if j < toks.len() && toks[j].kind == TokenKind::Number && toks[j].text.len() <= 2 {
                j += 1;
                if j < toks.len() && is_punct(&toks[j], ",") {
                    j += 1;
                }
                if j < toks.len() && is_digits(&toks[j], 4) {
                    out.push(span(FieldKind::Date, &toks[i..=j], text, 0.97));
                    i = j + 1;
                    continue;
                }
            }
        }
        // YYYY-MM-DD (ISO)
        if is_digits(&toks[i], 4)
            && i + 4 < toks.len()
            && is_punct(&toks[i + 1], "-")
            && is_digits(&toks[i + 2], 2)
            && is_punct(&toks[i + 3], "-")
            && is_digits(&toks[i + 4], 2)
        {
            let month: u32 = toks[i + 2].text.parse().unwrap_or(0);
            let day: u32 = toks[i + 4].text.parse().unwrap_or(0);
            if (1..=12).contains(&month) && (1..=31).contains(&day) {
                out.push(span(FieldKind::Date, &toks[i..=i + 4], text, 0.95));
                i += 5;
                continue;
            }
        }
        // M/D/YYYY
        if toks[i].kind == TokenKind::Number
            && toks[i].text.len() <= 2
            && i + 4 < toks.len()
            && is_punct(&toks[i + 1], "/")
            && toks[i + 2].kind == TokenKind::Number
            && toks[i + 2].text.len() <= 2
            && is_punct(&toks[i + 3], "/")
            && is_digits(&toks[i + 4], 4)
        {
            out.push(span(FieldKind::Date, &toks[i..=i + 4], text, 0.95));
            i += 5;
            continue;
        }
        i += 1;
    }
    out
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + &c.as_str().to_lowercase(),
        None => String::new(),
    }
}

/// Recognize clock times: `H[:MM]am/pm`, e.g. `11:30am`, `5 pm`.
pub fn times(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Number && toks[i].text.len() <= 2 {
            let mut j = i;
            if i + 2 < toks.len() && is_punct(&toks[i + 1], ":") && is_digits(&toks[i + 2], 2) {
                j = i + 2;
            }
            if j + 1 < toks.len() {
                let ampm = toks[j + 1].lower();
                if ampm == "am" || ampm == "pm" {
                    out.push(span(FieldKind::Time, &toks[i..=j + 1], text, 0.95));
                    i = j + 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Recognize street addresses: a 1-5 digit number followed by 1-3 words and
/// a street suffix. Confidence is boosted when a street word is in the
/// gazetteer.
pub fn street_addresses(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let suffixes = gazetteer::street_suffix_any_set();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Number && toks[i].text.len() <= 5 {
            // Look ahead 1..=3 words then a suffix.
            let mut words = Vec::new();
            let mut j = i + 1;
            while j < toks.len() && toks[j].kind == TokenKind::Word && words.len() < 4 {
                if suffixes.contains(capitalize(&toks[j].text).as_str()) && !words.is_empty() {
                    let street_phrase = words.join(" ");
                    let conf = if gazetteer::street_set().contains(street_phrase.as_str()) {
                        0.97
                    } else {
                        0.8
                    };
                    out.push(span(FieldKind::StreetAddress, &toks[i..=j], text, conf));
                    break;
                }
                words.push(capitalize(&toks[j].text));
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Recognize cities (gazetteer phrases) with byte spans.
pub fn cities(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let mut out = Vec::new();
    for &(city, _, _) in gazetteer::CITIES {
        let city_words: Vec<String> = city.split(' ').map(|w| w.to_lowercase()).collect();
        let n = city_words.len();
        if n == 0 || toks.len() < n {
            continue;
        }
        for w in 0..=(toks.len() - n) {
            let window = &toks[w..w + n];
            if window
                .iter()
                .zip(&city_words)
                .all(|(t, cw)| t.kind == TokenKind::Word && t.lower() == *cw)
            {
                out.push(span(FieldKind::City, window, text, 0.9));
            }
        }
    }
    out.sort_by_key(|s| s.start);
    out
}

/// Recognize cuisine mentions with byte spans.
pub fn cuisines(text: &str) -> Vec<FieldSpan> {
    let toks = tokenize(text);
    let set = gazetteer::cuisine_set();
    toks.iter()
        .filter(|t| t.kind == TokenKind::Word && set.contains(capitalize(&t.text).as_str()))
        .map(|t| FieldSpan {
            kind: FieldKind::Cuisine,
            start: t.start,
            end: t.end,
            text: t.text.clone(),
            confidence: 0.85,
        })
        .collect()
}

/// Recognize emails: `word(.word)* @ word(.word)+` over the raw text.
pub fn emails(text: &str) -> Vec<FieldSpan> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'@' {
            continue;
        }
        // Expand left.
        let mut s = i;
        while s > 0 {
            let c = bytes[s - 1];
            if c.is_ascii_alphanumeric() || c == b'.' || c == b'_' || c == b'-' {
                s -= 1;
            } else {
                break;
            }
        }
        // Expand right.
        let mut e = i + 1;
        let mut dots = 0;
        while e < bytes.len() {
            let c = bytes[e];
            if c.is_ascii_alphanumeric() || c == b'-' {
                e += 1;
            } else if c == b'.' && e + 1 < bytes.len() && bytes[e + 1].is_ascii_alphanumeric() {
                dots += 1;
                e += 1;
            } else {
                break;
            }
        }
        if s < i && dots >= 1 {
            out.push(FieldSpan {
                kind: FieldKind::Email,
                start: s,
                end: e,
                text: text[s..e].to_string(),
                confidence: 0.97,
            });
        }
    }
    out
}

/// Recognize URLs starting with `http://`, `https://` or `www.`.
pub fn urls(text: &str) -> Vec<FieldSpan> {
    let mut out = Vec::new();
    for prefix in ["http://", "https://", "www."] {
        let mut from = 0;
        while let Some(pos) = text[from..].find(prefix) {
            let start = from + pos;
            // Only accept "www." at a word boundary.
            if prefix == "www." && start > 0 {
                let prev = text.as_bytes()[start - 1];
                if prev.is_ascii_alphanumeric() || prev == b'/' || prev == b'.' {
                    from = start + prefix.len();
                    continue;
                }
            }
            let mut end = start;
            for (off, c) in text[start..].char_indices() {
                if c.is_whitespace() || c == '"' || c == '<' || c == '>' || c == ')' {
                    break;
                }
                end = start + off + c.len_utf8();
            }
            // Trim trailing sentence punctuation.
            while end > start && matches!(text.as_bytes()[end - 1], b'.' | b',' | b';') {
                end -= 1;
            }
            if end > start + prefix.len() {
                out.push(FieldSpan {
                    kind: FieldKind::Url,
                    start,
                    end,
                    text: text[start..end].to_string(),
                    confidence: 0.98,
                });
            }
            from = end.max(start + prefix.len());
        }
    }
    out.sort_by_key(|s| s.start);
    out.dedup_by(|a, b| a.start < b.end && b.start < a.end); // drop overlaps (keep first)
    out
}

/// Run every recognizer and return all spans sorted by start offset.
pub fn recognize_all(text: &str) -> Vec<FieldSpan> {
    let mut out = Vec::new();
    out.extend(phones(text));
    out.extend(street_addresses(text));
    let covered: Vec<(usize, usize)> = out.iter().map(|s| (s.start, s.end)).collect();
    // 5-digit numbers inside phone numbers or street addresses (street
    // numbers!) are not zips.
    out.extend(
        zips(text)
            .into_iter()
            .filter(|z| !covered.iter().any(|&(s, e)| z.start >= s && z.end <= e)),
    );
    out.extend(prices(text));
    out.extend(dates(text));
    out.extend(times(text));
    out.extend(cities(text));
    out.extend(cuisines(text));
    out.extend(emails(text));
    out.extend(urls(text));
    out.sort_by_key(|s| (s.start, s.end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_formats() {
        for t in [
            "Call 408-555-0134 now",
            "Call (408) 555-0134 now",
            "Call 408.555.0134 now",
        ] {
            let p = phones(t);
            assert_eq!(p.len(), 1, "text: {t}");
            assert!(p[0].text.contains("408"));
        }
        assert!(phones("no phone 12345 here").is_empty());
    }

    #[test]
    fn phone_requires_separator() {
        assert!(
            phones("123 456 7890").is_empty(),
            "bare triples are ambiguous"
        );
    }

    #[test]
    fn zip_detection() {
        let z = zips("Cupertino CA 95014");
        assert_eq!(z.len(), 1);
        assert_eq!(z[0].text, "95014");
        assert!(z[0].confidence > 0.9, "state context boosts confidence");
        let z = zips("95014-1234");
        assert_eq!(z[0].text, "95014-1234");
    }

    #[test]
    fn zip_not_confused_with_phone() {
        let all = recognize_all("Call 408-555-0134");
        assert!(all.iter().all(|s| s.kind != FieldKind::Zip));
        assert!(all.iter().any(|s| s.kind == FieldKind::Phone));
    }

    #[test]
    fn price_detection() {
        let p = prices("Lunch special $12.95 or 20 dollars");
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].text, "$12.95");
        assert_eq!(p[1].text, "20 dollars");
    }

    #[test]
    fn date_detection() {
        let d = dates("open on January 20, 2010 and 1/20/2010");
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].text, "January 20, 2010");
        assert_eq!(d[1].text, "1/20/2010");
    }

    #[test]
    fn time_detection() {
        let t = times("Open 11:30am to 9 pm daily");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].text, "11:30am");
        assert_eq!(t[1].text, "9 pm");
    }

    #[test]
    fn street_address_detection() {
        let a = street_addresses("located at 19980 Homestead Rd in Cupertino");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].text, "19980 Homestead Rd");
        assert!(a[0].confidence > 0.9, "gazetteer street boosts confidence");
    }

    #[test]
    fn city_and_cuisine() {
        let c = cities("best pizza in San Jose and Chicago");
        assert_eq!(c.len(), 2);
        let cu = cuisines("great Italian food");
        assert_eq!(cu.len(), 1);
        assert_eq!(cu[0].text, "Italian");
    }

    #[test]
    fn email_detection() {
        let e = emails("contact info@gochi-tapas.example.com today");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].text, "info@gochi-tapas.example.com");
        assert!(emails("no at sign").is_empty());
        assert!(emails("a@b").is_empty(), "needs a dot in the domain");
    }

    #[test]
    fn url_detection() {
        let u = urls("see http://gochi.example.com/menu. Also www.yelp.example.");
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].text, "http://gochi.example.com/menu");
        assert_eq!(u[1].text, "www.yelp.example");
    }

    #[test]
    fn recognize_all_sorted() {
        let spans = recognize_all(
            "Gochi, 19980 Homestead Rd, Cupertino CA 95014, (408) 555-0134, open 11am",
        );
        assert!(!spans.is_empty());
        for w in spans.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        let kinds: std::collections::HashSet<_> = spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&FieldKind::StreetAddress));
        assert!(kinds.contains(&FieldKind::City));
        assert!(kinds.contains(&FieldKind::Zip));
        assert!(kinds.contains(&FieldKind::Phone));
        assert!(kinds.contains(&FieldKind::Time));
    }
}
