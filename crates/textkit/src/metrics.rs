//! String similarity metrics used by entity matching (paper §6).
//!
//! The entity-matching literature the paper builds on (Fellegi–Sunter \[31\],
//! Cohen et al. \[20\], Navarro \[51\]) composes per-attribute similarity scores
//! from edit-distance and token-overlap measures. All similarities here are
//! normalized to `\[0, 1\]` with `1.0` meaning identical.

use std::collections::HashMap;
use std::hash::Hash;

/// Levenshtein edit distance between two strings (unit costs), computed over
/// `char`s with the classic two-row dynamic program (O(|a|·|b|) time,
/// O(min(|a|,|b|)) space — see the perf-book guidance on avoiding quadratic
/// allocation in hot loops).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein distance normalized to a similarity in `\[0, 1\]`:
/// `1 - d / max(|a|, |b|)`. Two empty strings are defined as similarity 1.
pub fn lev_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / m as f64
}

/// Jaro similarity between two strings, in `\[0, 1\]`.
///
/// Matching window is `max(|a|,|b|)/2 - 1` per the standard definition.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut match_flags_b = vec![false; b.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                match_flags_b[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(match_flags_b.iter())
        .filter(|(_, &f)| f)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by shared prefix (standard p=0.1,
/// prefix capped at 4 characters). In `\[0, 1\]`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Jaccard similarity between two slices viewed as sets. In `\[0, 1\]`;
/// two empty sets are defined as similarity 1.
pub fn jaccard<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    let sa: std::collections::HashSet<&T> = a.iter().collect();
    let sb: std::collections::HashSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Dice coefficient between two slices viewed as sets: `2|A∩B| / (|A|+|B|)`.
pub fn dice<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    let sa: std::collections::HashSet<&T> = a.iter().collect();
    let sb: std::collections::HashSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

/// Cosine similarity between two multisets given as item slices (counts are
/// taken from repetitions). In `\[0, 1\]` since counts are non-negative.
pub fn cosine_counts<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    let ca = counts(a);
    let cb = counts(b);
    let mut dot = 0.0;
    for (k, &v) in &ca {
        if let Some(&w) = cb.get(k) {
            dot += v as f64 * w as f64;
        }
    }
    let na: f64 = ca.values().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

fn counts<T: Eq + Hash + Clone>(items: &[T]) -> HashMap<&T, usize> {
    let mut m = HashMap::new();
    for it in items {
        *m.entry(it).or_insert(0) += 1;
    }
    m
}

/// Character n-gram multiset of a string (padded with `_` at both ends),
/// useful for robust fuzzy-name comparison via [`cosine_counts`]/[`dice`].
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram order must be positive");
    let padded: Vec<char> = std::iter::repeat_n('_', n - 1)
        .chain(s.chars())
        .chain(std::iter::repeat_n('_', n - 1))
        .collect();
    if padded.len() < n {
        return Vec::new();
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// A hybrid name-similarity used as the default in entity matching: the
/// maximum of Jaro–Winkler on the normalized strings and Jaccard on their
/// token sets. Robust both to typos and to word reordering
/// ("Gochi Fusion Tapas" vs "Fusion Tapas Gochi").
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let na = crate::tokenize::normalize(a);
    let nb = crate::tokenize::normalize(b);
    let jw = jaro_winkler(&na, &nb);
    let ta: Vec<&str> = na.split(' ').filter(|t| !t.is_empty()).collect();
    let tb: Vec<&str> = nb.split(' ').filter(|t| !t.is_empty()).collect();
    jw.max(jaccard(&ta, &tb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gochi", "gochi"), 0);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn lev_similarity_bounds() {
        assert_eq!(lev_similarity("", ""), 1.0);
        assert_eq!(lev_similarity("abc", "abc"), 1.0);
        assert_eq!(lev_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook examples.
        let v = jaro("MARTHA", "MARHTA");
        assert!((v - 0.944444).abs() < 1e-4, "got {v}");
        let v = jaro("DIXON", "DICKSONX");
        assert!((v - 0.766667).abs() < 1e-4, "got {v}");
    }

    #[test]
    fn jaro_winkler_known_values() {
        let v = jaro_winkler("MARTHA", "MARHTA");
        assert!((v - 0.961111).abs() < 1e-4, "got {v}");
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("a", ""), 0.0);
    }

    #[test]
    fn jaccard_and_dice() {
        let a = ["x", "y", "z"];
        let b = ["y", "z", "w"];
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert!((dice(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard::<&str>(&[], &[]), 1.0);
    }

    #[test]
    fn cosine_counts_basics() {
        assert_eq!(cosine_counts(&["a", "a"], &["a"]), 1.0);
        assert_eq!(cosine_counts(&["a"], &["b"]), 0.0);
        assert_eq!(cosine_counts::<&str>(&[], &[]), 1.0);
    }

    #[test]
    fn char_ngrams_padding() {
        let g = char_ngrams("ab", 2);
        assert_eq!(g, vec!["_a", "ab", "b_"]);
        assert_eq!(char_ngrams("", 1), Vec::<String>::new());
    }

    #[test]
    fn name_similarity_reordering() {
        let s = name_similarity("Gochi Fusion Tapas", "Fusion Tapas Gochi");
        assert!(s > 0.99, "reordered names should match, got {s}");
        let s = name_similarity("Gochi Fusion Tapas", "Taqueria El Farolito");
        assert!(s < 0.6, "unrelated names should not match, got {s}");
    }
}
