//! Corpus statistics and TF-IDF sparse vectors.
//!
//! Used by the inverted index (ranking), review↔record matching baselines,
//! and "related pages" (Table 1, Article→Article) document similarity.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A sparse vector keyed by term id, kept sorted by term id so that dot
/// products are a linear merge.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Build from unsorted (term, weight) pairs; duplicate terms are summed.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (t, w) in pairs {
            match entries.last_mut() {
                Some((lt, lw)) if *lt == t => *lw += w,
                _ => entries.push((t, w)),
            }
        }
        Self { entries }
    }

    /// The (term, weight) entries in increasing term order.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product by linear merge over the sorted entries.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `\[0, 1\]` (0 if either vector is empty).
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let n = self.norm() * other.norm();
        if n == 0.0 {
            0.0
        } else {
            self.dot(other) / n
        }
    }
}

/// Document-frequency statistics over a corpus, with a string↔id term
/// dictionary. Terms are interned to `u32` ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CorpusStats {
    term_ids: HashMap<String, u32>,
    terms: Vec<String>,
    doc_freq: Vec<u32>,
    num_docs: u32,
    total_len: u64,
}

impl CorpusStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.term_ids.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_string());
        self.term_ids.insert(term.to_string(), id);
        self.doc_freq.push(0);
        id
    }

    /// Look up a term id without interning.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        self.term_ids.get(term).copied()
    }

    /// The term string for an id, if valid.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(|s| s.as_str())
    }

    /// Record one document's tokens (duplicates within the document only
    /// count once toward document frequency).
    pub fn add_document<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.num_docs += 1;
        self.total_len += tokens.len() as u64;
        let mut seen = std::collections::HashSet::new();
        for t in tokens {
            let id = self.intern(t.as_ref());
            if seen.insert(id) {
                self.doc_freq[id as usize] += 1;
            }
        }
    }

    /// Number of documents recorded.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Mean document length in tokens (0 if no documents).
    pub fn avg_doc_len(&self) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.total_len as f64 / self.num_docs as f64
        }
    }

    /// Document frequency of a term id (0 for unknown ids).
    pub fn df(&self, id: u32) -> u32 {
        self.doc_freq.get(id as usize).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency: `ln(1 + (N - df + 0.5)/(df + 0.5))`,
    /// the BM25+ style idf which is always positive.
    pub fn idf(&self, id: u32) -> f64 {
        let n = self.num_docs as f64;
        let df = self.df(id) as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// Number of distinct terms interned.
    pub fn vocab_size(&self) -> usize {
        self.terms.len()
    }
}

/// TF-IDF vectorizer over a [`CorpusStats`].
#[derive(Debug, Clone)]
pub struct TfIdf<'a> {
    stats: &'a CorpusStats,
}

impl<'a> TfIdf<'a> {
    /// Create a vectorizer borrowing corpus statistics.
    pub fn new(stats: &'a CorpusStats) -> Self {
        Self { stats }
    }

    /// Vectorize tokens with `(1 + ln tf) · idf` weighting. Unknown terms
    /// (never interned) are skipped.
    pub fn vectorize<S: AsRef<str>>(&self, tokens: &[S]) -> SparseVector {
        let mut tf: HashMap<u32, f64> = HashMap::new();
        for t in tokens {
            if let Some(id) = self.stats.term_id(t.as_ref()) {
                *tf.entry(id).or_insert(0.0) += 1.0;
            }
        }
        SparseVector::from_pairs(
            // woc-lint: allow(map-iter-order) — from_pairs sorts by term id.
            tf.into_iter()
                .map(|(id, f)| (id, (1.0 + f.ln()) * self.stats.idf(id)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CorpusStats {
        let mut s = CorpusStats::new();
        s.add_document(&["the", "best", "salsa", "in", "chicago"]);
        s.add_document(&["the", "menu", "of", "gochi"]);
        s.add_document(&["the", "best", "tapas"]);
        s
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let mut s = CorpusStats::new();
        s.add_document(&["a", "a", "a", "b"]);
        let a = s.term_id("a").unwrap();
        let b = s.term_id("b").unwrap();
        assert_eq!(s.df(a), 1);
        assert_eq!(s.df(b), 1);
    }

    #[test]
    fn idf_ordering() {
        let s = stats();
        let the = s.term_id("the").unwrap();
        let salsa = s.term_id("salsa").unwrap();
        assert!(s.idf(salsa) > s.idf(the), "rarer term has larger idf");
        assert!(
            s.idf(the) > 0.0,
            "idf stays positive even for ubiquitous terms"
        );
    }

    #[test]
    fn avg_doc_len() {
        let s = stats();
        assert!((s.avg_doc_len() - 4.0).abs() < 1e-12);
        assert_eq!(CorpusStats::new().avg_doc_len(), 0.0);
    }

    #[test]
    fn sparse_vector_dedup_and_sorted() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 4.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 5.0)]);
    }

    #[test]
    fn dot_and_cosine() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVector::from_pairs(vec![(2, 3.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 6.0);
        let c = a.cosine(&a);
        assert!((c - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&SparseVector::default()), 0.0);
    }

    #[test]
    fn vectorize_skips_unknown() {
        let s = stats();
        let v = TfIdf::new(&s).vectorize(&["salsa", "zebra"]);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn similar_docs_rank_higher() {
        let s = stats();
        let t = TfIdf::new(&s);
        let q = t.vectorize(&["best", "salsa"]);
        let d1 = t.vectorize(&["the", "best", "salsa", "in", "chicago"]);
        let d2 = t.vectorize(&["the", "menu", "of", "gochi"]);
        assert!(q.cosine(&d1) > q.cosine(&d2));
    }
}
