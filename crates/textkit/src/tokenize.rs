//! Offset-preserving tokenization and text normalization.
//!
//! The tokenizer is deliberately simple and deterministic: it splits text
//! into maximal runs of alphabetic characters, digit runs, and single
//! punctuation marks, preserving byte offsets so downstream extractors can
//! map token-level decisions (e.g. sequence-labeler output) back to spans of
//! the original page text.

use serde::{Deserialize, Serialize};

/// The coarse class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// A run of alphabetic characters (`[A-Za-z]+` plus other unicode letters).
    Word,
    /// A run of ASCII digits.
    Number,
    /// A single punctuation or symbol character.
    Punct,
}

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Token text, exactly as it appears in the source.
    pub text: String,
    /// Coarse token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Token {
    /// Lowercased token text.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// True if the token is a word consisting of a single uppercase initial
    /// followed by lowercase letters (e.g. `Gochi`).
    pub fn is_capitalized(&self) -> bool {
        let mut chars = self.text.chars();
        match chars.next() {
            Some(c) if c.is_uppercase() => chars.all(|c| c.is_lowercase()),
            _ => false,
        }
    }
}

/// Tokenize `text` into words, numbers and punctuation, skipping whitespace.
///
/// Invariants (checked by property tests):
/// * spans are non-overlapping and strictly increasing,
/// * every span satisfies `start < end` and slices `text` at char boundaries,
/// * concatenating the token texts with the skipped gaps reproduces `text`.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut iter = text.char_indices().peekable();
    while let Some(&(start, c)) = iter.peek() {
        if c.is_whitespace() {
            iter.next();
            continue;
        }
        if c.is_alphabetic() {
            let mut end = start;
            while let Some(&(i, ch)) = iter.peek() {
                if ch.is_alphabetic() {
                    end = i + ch.len_utf8();
                    iter.next();
                } else {
                    break;
                }
            }
            out.push(Token {
                text: text[start..end].to_string(),
                kind: TokenKind::Word,
                start,
                end,
            });
        } else if c.is_ascii_digit() {
            let mut end = start;
            while let Some(&(i, ch)) = iter.peek() {
                if ch.is_ascii_digit() {
                    end = i + ch.len_utf8();
                    iter.next();
                } else {
                    break;
                }
            }
            out.push(Token {
                text: text[start..end].to_string(),
                kind: TokenKind::Number,
                start,
                end,
            });
        } else {
            iter.next();
            out.push(Token {
                text: text[start..start + c.len_utf8()].to_string(),
                kind: TokenKind::Punct,
                start,
                end: start + c.len_utf8(),
            });
        }
    }
    out
}

/// Tokenize and return only lowercased word/number texts (no punctuation).
///
/// This is the canonical "bag of words" view used by the inverted index and
/// by TF-IDF vectorization.
pub fn tokenize_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Punct)
        .map(|t| t.lower())
        .collect()
}

/// Normalize a string for matching: lowercase, collapse whitespace runs to a
/// single space, strip leading/trailing whitespace, and drop punctuation.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        if c.is_alphanumeric() {
            // Lowercasing can emit combining marks ('İ' → "i\u{307}"); keep
            // only alphanumeric output so normalization is idempotent.
            for lc in c.to_lowercase() {
                if lc.is_alphanumeric() {
                    out.push(lc);
                }
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A small English stopword list used by ranking and attribute-tally code.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "were", "will", "with",
];

/// True if `word` (already lowercased) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Split text into sentences at `.`, `!`, `?` followed by whitespace.
///
/// Good enough for the synthetic article/review text this system processes;
/// used by semantic linking to attribute entity mentions to sentences.
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if (b == b'.' || b == b'!' || b == b'?')
            && bytes.get(i + 1).is_none_or(|n| n.is_ascii_whitespace())
        {
            let s = text[start..=i].trim();
            if !s.is_empty() {
                out.push(s);
            }
            start = i + 1;
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_mixed() {
        let toks = tokenize("Gochi, 19980 Homestead Rd #F");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["Gochi", ",", "19980", "Homestead", "Rd", "#", "F"]
        );
        assert_eq!(toks[0].kind, TokenKind::Word);
        assert_eq!(toks[2].kind, TokenKind::Number);
        assert_eq!(toks[5].kind, TokenKind::Punct);
    }

    #[test]
    fn tokenize_offsets_slice_source() {
        let text = "Best salsa in Chicago! Call 312-555-0134.";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn tokenize_empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn tokenize_words_lowercases_and_drops_punct() {
        assert_eq!(
            tokenize_words("Mexican Food, Chicago: BEST salsa"),
            vec!["mexican", "food", "chicago", "best", "salsa"]
        );
    }

    #[test]
    fn normalize_collapses() {
        assert_eq!(
            normalize("  Gochi   Fusion -- Tapas!  "),
            "gochi fusion tapas"
        );
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn capitalized_detection() {
        let toks = tokenize("Gochi CUPERTINO cafe");
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
        assert!(!toks[2].is_capitalized());
    }

    #[test]
    fn sentence_split() {
        let s = sentences("Great food. Would eat again! Right? Yes.");
        assert_eq!(s, vec!["Great food.", "Would eat again!", "Right?", "Yes."]);
    }

    #[test]
    fn sentence_split_no_terminator() {
        assert_eq!(sentences("no terminator here"), vec!["no terminator here"]);
    }

    #[test]
    fn sentence_split_decimal_not_boundary() {
        // A period followed by a digit is not a sentence boundary.
        let s = sentences("The price is 3.50 dollars. Cheap.");
        assert_eq!(s, vec!["The price is 3.50 dollars.", "Cheap."]);
    }

    #[test]
    fn stopwords() {
        assert!(is_stopword("the"));
        assert!(!is_stopword("menu"));
    }
}
