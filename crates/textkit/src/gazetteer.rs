//! Shared vocabulary pools (gazetteers).
//!
//! The synthetic-web generator samples entity names, addresses, dishes, etc.
//! from these pools, and the extraction stack uses the same pools as *domain
//! knowledge* (paper §4.2: "we might have two kinds of domain knowledge:
//! first, the fields of interest … along with rules to identify zips/phones").
//! Sharing one curated lexicon between generation and recognition mirrors how
//! production extraction systems curate domain lexicons from their own data.

use std::collections::HashSet;
use std::sync::OnceLock;

/// US cities used across the restaurant/local domain, paired with state code
/// and the 3-digit zip prefix their synthetic addresses use.
pub const CITIES: &[(&str, &str, &str)] = &[
    ("San Jose", "CA", "951"),
    ("Cupertino", "CA", "950"),
    ("Sunnyvale", "CA", "940"),
    ("Palo Alto", "CA", "943"),
    ("San Francisco", "CA", "941"),
    ("Chicago", "IL", "606"),
    ("Seattle", "WA", "981"),
    ("Austin", "TX", "787"),
    ("Portland", "OR", "972"),
    ("Boston", "MA", "021"),
    ("New York", "NY", "100"),
    ("Providence", "RI", "029"),
    ("Madison", "WI", "537"),
    ("Los Angeles", "CA", "900"),
    ("Denver", "CO", "802"),
    ("Atlanta", "GA", "303"),
];

/// Cuisine types for the restaurant concept.
pub const CUISINES: &[&str] = &[
    "Italian",
    "Mexican",
    "Chinese",
    "Japanese",
    "Indian",
    "Thai",
    "French",
    "Greek",
    "Korean",
    "Vietnamese",
    "Spanish",
    "American",
    "Ethiopian",
    "Peruvian",
];

/// First names used for people (reviewers, authors).
pub const FIRST_NAMES: &[&str] = &[
    "Ada", "Alan", "Grace", "Edgar", "Barbara", "Donald", "John", "Leslie", "Frances", "Niklaus",
    "Tony", "Judea", "Edsger", "Shafi", "Silvio", "Manuel", "Robin", "Juris", "Richard", "Dana",
    "Maurice", "Ken", "Dennis", "Fran", "Adele", "Radia", "Lynn", "Marissa", "Carlos", "Mei",
    "Priya", "Ravi", "Nina", "Omar", "Yuki", "Elena",
];

/// Last names used for people.
pub const LAST_NAMES: &[&str] = &[
    "Lovelace",
    "Turing",
    "Hopper",
    "Codd",
    "Liskov",
    "Knuth",
    "McCarthy",
    "Lamport",
    "Allen",
    "Wirth",
    "Hoare",
    "Pearl",
    "Dijkstra",
    "Goldwasser",
    "Micali",
    "Blum",
    "Milner",
    "Hartmanis",
    "Stearns",
    "Scott",
    "Wilkes",
    "Thompson",
    "Ritchie",
    "Berman",
    "Goldberg",
    "Perlman",
    "Conway",
    "Mayer",
    "Santos",
    "Chen",
    "Patel",
    "Rao",
    "Ivanova",
    "Hassan",
    "Tanaka",
    "Garcia",
];

/// Street base names for synthetic addresses.
pub const STREETS: &[&str] = &[
    "Homestead",
    "Stevens Creek",
    "Main",
    "Market",
    "Castro",
    "University",
    "Oak",
    "Elm",
    "Mission",
    "Valencia",
    "Lincoln",
    "Washington",
    "Lake",
    "Hill",
    "Park",
    "Bascom",
    "Winchester",
    "Saratoga",
    "Fremont",
    "Alma",
];

/// Street suffixes (abbreviated forms used when generating addresses).
pub const STREET_SUFFIXES: &[&str] = &["St", "Ave", "Rd", "Blvd", "Way", "Dr", "Ln"];

/// Expanded street suffixes (recognizers must accept both forms — sources
/// render either).
pub const STREET_SUFFIXES_FULL: &[&str] = &[
    "Street",
    "Avenue",
    "Road",
    "Boulevard",
    "Way",
    "Drive",
    "Lane",
];

/// Restaurant-name heads (combined with cuisine words and suffixes).
pub const RESTAURANT_HEADS: &[&str] = &[
    "Golden", "Blue", "Red", "Jade", "Silver", "Royal", "Little", "Grand", "Old", "New", "Casa",
    "Villa", "La", "El", "Bella", "Saigon", "Lotus", "Bamboo", "Olive", "Sunset",
];

/// Restaurant-name tails.
pub const RESTAURANT_TAILS: &[&str] = &[
    "Garden",
    "House",
    "Kitchen",
    "Palace",
    "Bistro",
    "Grill",
    "Cafe",
    "Tavern",
    "Table",
    "Cantina",
    "Trattoria",
    "Diner",
    "Room",
    "Corner",
    "Express",
    "Fusion",
    "Tapas",
];

/// Dish names per cuisine bucket (generic pool; cuisine adds flavor words).
pub const DISHES: &[&str] = &[
    "Margherita Pizza",
    "Carbonara",
    "Lasagna",
    "Tacos al Pastor",
    "Carnitas Burrito",
    "Enchiladas Verdes",
    "Kung Pao Chicken",
    "Mapo Tofu",
    "Chow Mein",
    "Tonkotsu Ramen",
    "Chicken Katsu",
    "Sashimi Platter",
    "Butter Chicken",
    "Palak Paneer",
    "Lamb Vindaloo",
    "Pad Thai",
    "Green Curry",
    "Tom Yum Soup",
    "Coq au Vin",
    "Ratatouille",
    "Moussaka",
    "Gyro Plate",
    "Bibimbap",
    "Kimchi Stew",
    "Pho Dac Biet",
    "Banh Mi",
    "Paella",
    "Gambas al Ajillo",
    "Cheeseburger",
    "BBQ Ribs",
    "Doro Wat",
    "Lomo Saltado",
    "Ceviche",
    "Caesar Salad",
    "Clam Chowder",
    "Garlic Noodles",
];

/// Positive sentiment words for review generation/analysis.
pub const POSITIVE_WORDS: &[&str] = &[
    "great",
    "excellent",
    "amazing",
    "delicious",
    "friendly",
    "cozy",
    "fresh",
    "fantastic",
    "wonderful",
    "perfect",
    "tasty",
    "superb",
];

/// Negative sentiment words for review generation/analysis.
pub const NEGATIVE_WORDS: &[&str] = &[
    "slow",
    "bland",
    "overpriced",
    "rude",
    "cold",
    "stale",
    "disappointing",
    "noisy",
    "greasy",
    "mediocre",
    "terrible",
    "soggy",
];

/// Research-topic terms for the academic domain.
pub const RESEARCH_TOPICS: &[&str] = &[
    "query optimization",
    "entity matching",
    "information extraction",
    "probabilistic databases",
    "data integration",
    "wrapper induction",
    "schema matching",
    "record linkage",
    "stream processing",
    "view maintenance",
    "provenance tracking",
    "concept search",
    "web mining",
    "transfer learning",
    "graph classification",
];

/// Conference venues for the academic domain.
pub const VENUES: &[&str] = &[
    "PODS", "SIGMOD", "VLDB", "ICDE", "KDD", "WWW", "SIGIR", "CIDR", "EDBT", "WSDM",
];

/// Universities / institutions for the academic domain.
pub const INSTITUTIONS: &[&str] = &[
    "University of Wisconsin",
    "Stanford University",
    "MIT",
    "University of Washington",
    "Cornell University",
    "UC Berkeley",
    "Carnegie Mellon University",
    "ETH Zurich",
    "University of Toronto",
    "Yahoo Research",
    "IBM Almaden",
    "Microsoft Research",
];

/// Product brands for the shopping domain.
pub const BRANDS: &[&str] = &[
    "Nikon",
    "Canon",
    "Sony",
    "Pentax",
    "Olympus",
    "Fuji",
    "Panasonic",
    "Leica",
    "Kodak",
    "Sigma",
];

/// Product category names for the shopping domain, with typical price bands
/// (low, high) in whole dollars.
pub const PRODUCT_CATEGORIES: &[(&str, u32, u32)] = &[
    ("Digital Camera", 150, 1200),
    ("DSLR Camera", 450, 3000),
    ("Camera Lens", 100, 2200),
    ("Camera Battery", 15, 90),
    ("Tripod", 25, 400),
    ("Memory Card", 10, 120),
    ("Camera Bag", 20, 250),
    ("Flash Unit", 40, 600),
];

/// Event categories for the events domain.
pub const EVENT_CATEGORIES: &[&str] = &[
    "Concert",
    "Festival",
    "Exhibition",
    "Conference",
    "Game",
    "Workshop",
    "Meetup",
    "Play",
];

/// Month names, used by date recognition and generation.
pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

fn set_of(words: &'static [&'static str]) -> HashSet<&'static str> {
    words.iter().copied().collect()
}

macro_rules! lazy_set {
    ($fn_name:ident, $src:expr, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static HashSet<&'static str> {
            static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
            SET.get_or_init(|| set_of($src))
        }
    };
}

lazy_set!(cuisine_set, CUISINES, "Set view of [`CUISINES`].");
lazy_set!(first_name_set, FIRST_NAMES, "Set view of [`FIRST_NAMES`].");
lazy_set!(last_name_set, LAST_NAMES, "Set view of [`LAST_NAMES`].");
lazy_set!(
    street_set,
    STREETS,
    "Set view of [`STREETS`] (multi-word entries appear whole)."
);
lazy_set!(
    street_suffix_set,
    STREET_SUFFIXES,
    "Set view of [`STREET_SUFFIXES`]."
);

/// Set of both abbreviated and expanded street suffixes.
pub fn street_suffix_any_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| {
        STREET_SUFFIXES
            .iter()
            .chain(STREET_SUFFIXES_FULL)
            .copied()
            .collect()
    })
}
lazy_set!(venue_set, VENUES, "Set view of [`VENUES`].");
lazy_set!(brand_set, BRANDS, "Set view of [`BRANDS`].");
lazy_set!(
    positive_set,
    POSITIVE_WORDS,
    "Set view of [`POSITIVE_WORDS`]."
);
lazy_set!(
    negative_set,
    NEGATIVE_WORDS,
    "Set view of [`NEGATIVE_WORDS`]."
);
lazy_set!(month_set, MONTHS, "Set view of [`MONTHS`].");

/// City-name set (full multi-word names, e.g. `San Jose`).
pub fn city_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| CITIES.iter().map(|&(c, _, _)| c).collect())
}

/// Look up a city's `(state, zip-prefix)` by exact name.
pub fn city_info(name: &str) -> Option<(&'static str, &'static str)> {
    CITIES
        .iter()
        .find(|&&(c, _, _)| c.eq_ignore_ascii_case(name))
        .map(|&(_, st, zp)| (st, zp))
}

/// True if `text` contains the given multi-word gazetteer phrase,
/// case-insensitively, on word boundaries.
pub fn contains_phrase(text: &str, phrase: &str) -> bool {
    let t = crate::tokenize::normalize(text);
    let p = crate::tokenize::normalize(phrase);
    if p.is_empty() {
        return false;
    }
    // Word-boundary containment over the normalized forms.
    t == p
        || t.starts_with(&format!("{p} "))
        || t.ends_with(&format!(" {p}"))
        || t.contains(&format!(" {p} "))
}

/// Find all cities mentioned in `text` (exact phrase, case-insensitive).
pub fn find_cities(text: &str) -> Vec<&'static str> {
    CITIES
        .iter()
        .map(|&(c, _, _)| c)
        .filter(|c| contains_phrase(text, c))
        .collect()
}

/// Find all cuisines mentioned in `text`.
pub fn find_cuisines(text: &str) -> Vec<&'static str> {
    CUISINES
        .iter()
        .copied()
        .filter(|c| contains_phrase(text, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_lookup() {
        assert_eq!(city_info("Cupertino"), Some(("CA", "950")));
        assert_eq!(city_info("cupertino"), Some(("CA", "950")));
        assert_eq!(city_info("Gotham"), None);
    }

    #[test]
    fn sets_nonempty_and_consistent() {
        assert_eq!(cuisine_set().len(), CUISINES.len());
        assert!(city_set().contains("San Jose"));
        assert!(venue_set().contains("PODS"));
    }

    #[test]
    fn phrase_matching() {
        assert!(contains_phrase("best tacos in san jose ca", "San Jose"));
        assert!(contains_phrase("San Jose", "san jose"));
        assert!(!contains_phrase("sanjose dining", "San Jose"));
        assert!(!contains_phrase("anything", ""));
    }

    #[test]
    fn find_cities_in_query() {
        let found = find_cities("mexican food Chicago best salsa");
        assert_eq!(found, vec!["Chicago"]);
        assert!(find_cities("no city here").is_empty());
    }

    #[test]
    fn find_cuisines_in_query() {
        let found = find_cuisines("San Jose Italian Restaurants");
        assert_eq!(found, vec!["Italian"]);
    }

    #[test]
    fn multiword_city_found() {
        let found = find_cities("moving to San Francisco soon");
        assert_eq!(found, vec!["San Francisco"]);
    }
}
