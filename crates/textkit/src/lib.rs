//! # woc-textkit — text substrate for the web of concepts
//!
//! This crate provides the text-processing primitives that every layer of the
//! web-of-concepts system builds on (see DESIGN.md §3):
//!
//! * [`mod@tokenize`] — offset-preserving tokenization and normalization,
//! * [`metrics`] — string similarity measures (Levenshtein, Jaro-Winkler,
//!   Jaccard, Dice, cosine) used by entity matching,
//! * [`tfidf`] — corpus statistics and TF-IDF sparse vectors,
//! * [`lm`] — unigram/bigram language models with smoothing, the backbone of
//!   the record↔text generative matcher (paper §4.2 "Matching"),
//! * [`recognize`] — *domain knowledge* field recognizers (phone, zip, price,
//!   date, hours, email, URL) used by domain-centric list extraction
//!   (paper §4.2 "Domain-Centric List Extraction"),
//! * [`gazetteer`] — shared vocabulary pools (cities, cuisines, person names,
//!   street names, …). The synthetic-web generator draws entity names from
//!   these pools and extractors use the same pools as gazetteers, mirroring
//!   how real extraction systems curate domain lexicons.
//!
//! Everything here is dependency-free (std only, plus `serde` for
//! serializable types) and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gazetteer;
pub mod lm;
pub mod metrics;
pub mod recognize;
pub mod tfidf;
pub mod tokenize;

pub use metrics::{cosine_counts, dice, jaccard, jaro, jaro_winkler, lev_similarity, levenshtein};
pub use recognize::{recognize_all, FieldKind, FieldSpan};
pub use tfidf::{CorpusStats, SparseVector, TfIdf};
pub use tokenize::{normalize, tokenize, tokenize_words, Token, TokenKind};
