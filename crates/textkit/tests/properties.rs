//! Property-based tests for textkit invariants (DESIGN.md §8).

use proptest::prelude::*;
use woc_textkit::metrics::{
    char_ngrams, cosine_counts, dice, jaccard, jaro, jaro_winkler, lev_similarity, levenshtein,
    name_similarity,
};
use woc_textkit::tokenize::{normalize, sentences, tokenize, tokenize_words};

proptest! {
    #[test]
    fn tokenize_spans_slice_source(s in ".{0,200}") {
        let toks = tokenize(&s);
        for t in &toks {
            prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
        }
        // Spans strictly increasing and non-overlapping.
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn tokenize_words_all_lowercase(s in "\\PC{0,200}") {
        for w in tokenize_words(&s) {
            prop_assert_eq!(w.to_lowercase(), w.clone());
            prop_assert!(!w.is_empty());
        }
    }

    #[test]
    fn normalize_idempotent(s in "\\PC{0,200}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once.clone());
        prop_assert!(!once.starts_with(' ') && !once.ends_with(' '));
    }

    #[test]
    fn levenshtein_metric_axioms(a in "[a-z]{0,20}", b in "[a-z]{0,20}", c in "[a-z]{0,20}") {
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by max length.
        prop_assert!(levenshtein(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn similarities_bounded(a in "\\PC{0,40}", b in "\\PC{0,40}") {
        for v in [
            lev_similarity(&a, &b),
            jaro(&a, &b),
            jaro_winkler(&a, &b),
            name_similarity(&a, &b),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "similarity out of range: {}", v);
        }
    }

    #[test]
    fn similarity_identity(a in "\\PC{1,40}") {
        prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((lev_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_symmetry(a in "[a-z ]{0,30}", b in "[a-z ]{0,30}") {
        prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
        prop_assert!((lev_similarity(&a, &b) - lev_similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn set_similarities_bounded(a in prop::collection::vec("[a-z]{1,6}", 0..20),
                                b in prop::collection::vec("[a-z]{1,6}", 0..20)) {
        for v in [jaccard(&a, &b), dice(&a, &b), cosine_counts(&a, &b)] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
        prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((cosine_counts(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn char_ngram_count(s in "[a-z]{0,30}", n in 1usize..5) {
        let g = char_ngrams(&s, n);
        if s.is_empty() && n == 1 {
            prop_assert!(g.is_empty());
        } else {
            // With (n-1) padding on both sides there are len + n - 1 windows.
            prop_assert_eq!(g.len(), s.chars().count() + n - 1);
        }
        for gram in &g {
            prop_assert_eq!(gram.chars().count(), n);
        }
    }

    #[test]
    fn sentences_cover_nonwhitespace(s in "[a-zA-Z .!?]{0,120}") {
        // Every sentence is a non-empty trimmed substring of the input.
        for sent in sentences(&s) {
            prop_assert!(!sent.is_empty());
            prop_assert!(s.contains(sent));
            prop_assert_eq!(sent.trim(), sent);
        }
    }
}

#[test]
fn tfidf_vector_norm_nonnegative() {
    use woc_textkit::{CorpusStats, TfIdf};
    let mut s = CorpusStats::new();
    s.add_document(&["a", "b", "c"]);
    s.add_document(&["a", "d"]);
    let v = TfIdf::new(&s).vectorize(&["a", "b", "b"]);
    assert!(v.norm() > 0.0);
    for &(_, w) in v.entries() {
        assert!(w >= 0.0, "tf-idf weights are non-negative with BM25+ idf");
    }
}
