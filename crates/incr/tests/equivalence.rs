//! The headline invariant of incremental maintenance: the maintained web
//! is **byte-identical** ([`woc_incr::canonical_bytes`]) to a from-scratch
//! rebuild of the same crawl, and passes the full integrity audit — at any
//! churn rate and any thread count. The `incr-equivalence` CI job runs
//! exactly these tests.

use woc_audit::{audit, AuditConfig};
use woc_core::{build, PipelineConfig};
use woc_incr::{canonical_bytes, IncrEngine};
use woc_lrec::Tick;
use woc_serve::{ConceptServer, ServeConfig};
use woc_webgen::{
    churn_restaurants, drift_site, generate_corpus, CorpusConfig, DriftConfig, WebCorpus, World,
    WorldConfig,
};

fn pipeline(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        ..PipelineConfig::default()
    }
}

/// Churn the world until at least one event actually fires. Tiny worlds at
/// 1% churn usually roll zero events, and a zero-event churn call does not
/// mutate the world at all — so retrying seeds is sound.
fn churn_until_events(world: &mut World, rate: f64, tick: Tick, mut seed: u64) -> u64 {
    while churn_restaurants(world, rate, tick, seed).is_empty() {
        seed += 1;
        assert!(seed < 1000, "no churn events after a thousand seeds");
    }
    seed
}

fn assert_clean_audit(woc: &woc_core::WebOfConcepts) {
    let report = audit(woc, &AuditConfig::default());
    let failing: Vec<_> = report
        .checks
        .iter()
        .filter(|c| c.violations > 0)
        .map(|c| (c.code.clone(), c.violations))
        .collect();
    assert!(report.passed(), "audit violations: {failing:?}");
}

/// Build epoch 1, churn at `rate`, maintain, and require byte-identity
/// with a from-scratch build plus a clean audit.
fn equivalence_scenario(rate: f64, threads: usize) {
    let mut world = World::generate(WorldConfig::tiny(500));
    let corpus_cfg = CorpusConfig::tiny(50);
    let config = pipeline(threads);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = IncrEngine::new(&corpus_v1, config.clone());

    churn_until_events(&mut world, rate, Tick(10), 1);
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);

    let report = engine.maintain(&corpus_v2).expect("maintain must succeed");
    assert!(!report.short_circuited, "churn must dirty some pages");
    assert!(report.pages_dirty > 0);

    let fresh = build(&corpus_v2, &config);
    assert_eq!(
        canonical_bytes(engine.web()),
        canonical_bytes(&fresh),
        "maintained web must be byte-identical to a from-scratch rebuild \
         (rate {rate}, {threads} threads)"
    );
    assert_clean_audit(engine.web());
}

#[test]
fn equivalent_at_1pct_churn_single_thread() {
    equivalence_scenario(0.01, 1);
}

#[test]
fn equivalent_at_1pct_churn_8_threads() {
    equivalence_scenario(0.01, 8);
}

#[test]
fn equivalent_at_50pct_churn_single_thread() {
    equivalence_scenario(0.50, 1);
}

#[test]
fn equivalent_at_50pct_churn_8_threads() {
    equivalence_scenario(0.50, 8);
}

#[test]
fn noop_maintain_short_circuits() {
    let world = World::generate(WorldConfig::tiny(501));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(51));
    let mut engine = IncrEngine::new(&corpus, pipeline(1));
    let before = canonical_bytes(engine.web());

    let report = engine.maintain(&corpus).expect("maintain must succeed");
    assert!(report.short_circuited);
    assert_eq!(report.pages_dirty, 0);
    assert_eq!(report.records_affected, 0);
    assert_eq!(report.pages_reextracted, 0, "no work on a clean crawl");
    assert_eq!(canonical_bytes(engine.web()), before, "web untouched");
}

/// Three consecutive epochs — churn, site redesign (DOM drift), heavier
/// churn — each maintained incrementally on top of the last, never
/// rebuilding from scratch in between. Equivalence must hold at the end of
/// the chain, not just one hop from a fresh build.
#[test]
fn chained_epochs_stay_equivalent() {
    let mut world = World::generate(WorldConfig::tiny(502));
    let corpus_cfg = CorpusConfig::tiny(52);
    let config = pipeline(0);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = IncrEngine::new(&corpus_v1, config.clone());

    // Epoch 2: value churn.
    churn_until_events(&mut world, 0.3, Tick(10), 1);
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);
    let r2 = engine.maintain(&corpus_v2).expect("maintain must succeed");
    assert!(!r2.short_circuited);

    // Epoch 3: one site redesigns (pure DOM drift, same values).
    let site = corpus_v2.pages()[0].site.clone();
    let site_pages: Vec<_> = corpus_v2
        .pages_of_site(&site)
        .into_iter()
        .cloned()
        .collect();
    let (drifted, _) = drift_site(&site_pages, &DriftConfig::mild(), 9);
    let mut corpus_v3 = WebCorpus::new();
    for p in corpus_v2.pages() {
        if p.site != site {
            corpus_v3.add(p.clone());
        }
    }
    for p in drifted {
        corpus_v3.add(p);
    }
    let r3 = engine.maintain(&corpus_v3).expect("maintain must succeed");
    assert!(!r3.short_circuited, "drifted DOMs must fingerprint dirty");

    // Epoch 4: heavier churn (may close restaurants → pages vanish).
    churn_until_events(&mut world, 0.6, Tick(20), 1);
    let corpus_v4 = generate_corpus(&world, &corpus_cfg);
    engine.maintain(&corpus_v4).expect("maintain must succeed");

    let fresh = build(&corpus_v4, &config);
    assert_eq!(
        canonical_bytes(engine.web()),
        canonical_bytes(&fresh),
        "equivalence must survive a chain of maintained epochs"
    );
    assert_clean_audit(engine.web());
}

#[test]
fn publish_path_bumps_epoch_only_on_change() {
    let mut world = World::generate(WorldConfig::tiny(503));
    let corpus_cfg = CorpusConfig::tiny(53);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = IncrEngine::new(&corpus_v1, pipeline(0));
    let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());
    server.search("is:restaurant", 5);
    let warm = server.cache_len();
    assert!(warm > 0);

    // Clean crawl: no publish, epoch and cache untouched.
    let (report, epoch) = engine
        .maintain_and_publish(&corpus_v1, &server)
        .expect("publish pass must succeed");
    assert!(report.short_circuited);
    assert_eq!(epoch, 1);
    assert_eq!(server.epoch(), 1);
    assert_eq!(server.cache_len(), warm, "no-op pass keeps the cache warm");

    // Real change: new epoch, cache invalidated, delta scoped to concepts.
    churn_until_events(&mut world, 0.5, Tick(10), 1);
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);
    let (report, epoch) = engine
        .maintain_and_publish(&corpus_v2, &server)
        .expect("publish pass must succeed");
    assert!(!report.short_circuited);
    assert!(
        !report.touched_concepts.is_empty(),
        "churned records must scope the delta"
    );
    assert_eq!(epoch, 2);
    assert_eq!(server.epoch(), 2);
    // The segmented publish retains entries whose scope the pass provably
    // did not touch instead of dropping the cache wholesale; whatever is
    // served now must equal a cold epoch-2 evaluation.
    let a = server.search("is:restaurant", 5);
    assert_eq!(a.epoch, 2);
    server.set_cache_enabled(false);
    let fresh = server.search("is:restaurant", 5);
    server.set_cache_enabled(true);
    assert_eq!(
        format!("{:?}", a.value),
        format!("{:?}", fresh.value),
        "post-publish answer must match a cold epoch-2 evaluation"
    );
}
