//! Property tests for the change-detection layer: page fingerprints must
//! be stable (identical content ⇒ identical fingerprint), sensitive
//! (any single-byte mutation of hashed content ⇒ different fingerprint),
//! and independent of thread count and visit order. They live here rather
//! than in `woc-webgen` because the thread-independence property exercises
//! `woc_core::shard_map`, which depends on webgen.

use proptest::prelude::*;
use woc_core::shard_map;
use woc_webgen::{Node, Page, PageKind, PageTruth};

/// An arbitrary small page: a body of class'd divs with text children.
fn page_strategy() -> impl Strategy<Value = Page> {
    (
        "[a-z]{1,8}",
        "[A-Za-z ]{1,20}",
        prop::collection::vec(("[a-z]{1,6}", "[A-Za-z0-9 ]{1,12}"), 1..5),
    )
        .prop_map(|(slug, title, kids)| {
            let mut body = Node::elem("body");
            for (class, text) in kids {
                body = body.child(Node::elem("div").attr("class", &class).text_child(text));
            }
            Page {
                url: format!("http://site.test/{slug}"),
                site: "site.test".to_string(),
                title,
                dom: Node::elem("html").child(body),
                truth: PageTruth {
                    kind: PageKind::RestaurantHome,
                    about: None,
                    records: Vec::new(),
                    mentions: Vec::new(),
                },
            }
        })
}

/// Flip the low bit of one ASCII byte of `s` (stays valid UTF-8 for the
/// ASCII alphabets our strategies draw from).
fn flip_byte(s: &str, at: usize) -> String {
    let mut bytes = s.as_bytes().to_vec();
    let i = at % bytes.len();
    bytes[i] ^= 0x01;
    String::from_utf8(bytes).expect("invariant: ASCII stays ASCII under low-bit flips")
}

proptest! {
    /// Identical bytes ⇒ identical fingerprint: a clone (and a structural
    /// re-walk of the same page) always hashes the same.
    #[test]
    fn identical_pages_fingerprint_identically(page in page_strategy()) {
        let copy = page.clone();
        prop_assert_eq!(page.fingerprint(), copy.fingerprint());
        prop_assert_eq!(page.fingerprint(), page.fingerprint());
    }

    /// A single-byte mutation in any hashed field — URL, title, or a text
    /// node — changes the fingerprint.
    #[test]
    fn single_byte_mutations_change_fingerprint(page in page_strategy(), at in 0usize..64) {
        let base = page.fingerprint();

        let mut m = page.clone();
        m.url = flip_byte(&m.url, at);
        prop_assert_ne!(base, m.fingerprint(), "url mutation undetected");

        let mut m = page.clone();
        m.title = flip_byte(&m.title, at);
        prop_assert_ne!(base, m.fingerprint(), "title mutation undetected");

        let mut m = page.clone();
        mutate_first_text(&mut m.dom, at);
        prop_assert_ne!(base, m.fingerprint(), "text mutation undetected");
    }

    /// Fingerprints are a pure per-page function: hashing the corpus on 1,
    /// 4 or 8 threads, or visiting pages in a rotated order, yields the
    /// same value for every page.
    #[test]
    fn fingerprints_independent_of_threads_and_order(
        pages in prop::collection::vec(page_strategy(), 1..8),
        rot in 0usize..8,
    ) {
        let serial: Vec<u64> = pages.iter().map(Page::fingerprint).collect();
        for threads in [1usize, 4, 8] {
            let sharded = shard_map(&pages, threads, |p| p.fingerprint());
            prop_assert_eq!(&serial, &sharded, "thread count {} changed fingerprints", threads);
        }
        let mut rotated = pages.clone();
        let shift = rot % rotated.len().max(1);
        rotated.rotate_left(shift);
        for p in &rotated {
            let i = pages.iter().position(|q| q == p).expect("invariant: rotation preserves membership");
            prop_assert_eq!(serial[i], p.fingerprint(), "visit order changed a fingerprint");
        }
    }
}

/// Flip a byte in the first text node found (depth-first).
fn mutate_first_text(node: &mut Node, at: usize) -> bool {
    match node {
        Node::Text(t) => {
            *t = flip_byte(t, at);
            true
        }
        Node::Element { children, .. } => {
            for c in children.iter_mut() {
                if mutate_first_text(c, at) {
                    return true;
                }
            }
            false
        }
    }
}

/// Ground truth is evaluation-only state the pipeline never reads; the
/// fingerprint must ignore it so truth-only differences never dirty a page.
#[test]
fn truth_changes_do_not_dirty_the_page() {
    let page = Page {
        url: "http://site.test/x".into(),
        site: "site.test".into(),
        title: "A Page".into(),
        dom: Node::elem("html").child(Node::elem("body").text_child("hello")),
        truth: PageTruth {
            kind: PageKind::RestaurantHome,
            about: None,
            records: Vec::new(),
            mentions: Vec::new(),
        },
    };
    let mut other = page.clone();
    other.truth.kind = PageKind::AggregatorBiz;
    other.truth.mentions = vec![woc_lrec::LrecId(7)];
    assert_eq!(page.fingerprint(), other.fingerprint());
}
