//! End-to-end cache retention across a real maintenance cycle: after a low
//! churn pass published through the segmented delta path, cached entries
//! whose scope the pass did not touch must be served from the cache —
//! byte-identical to their original fill and to a cold evaluation at the
//! new epoch — while entries the pass touched must be invalidated.

use std::collections::{BTreeMap, BTreeSet};

use woc_apps::interpret_query;
use woc_core::PipelineConfig;
use woc_incr::IncrEngine;
use woc_index::{scoped_term, LrecIndex};
use woc_lrec::{LrecId, Tick};
use woc_serve::{ConceptServer, ServeConfig, Snapshot};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

fn payload(a: &woc_serve::Answer) -> String {
    format!("{:?}", a.value)
}

/// The retention scope the server records for `query`, recomputed from the
/// pinned snapshot: rendered index terms plus the result records.
fn query_scope(snap: &Snapshot, query: &str, k: usize) -> (Vec<String>, Vec<LrecId>) {
    let fq = interpret_query(query).normalized();
    let mut terms = fq.terms.clone();
    for (f, t) in &fq.scoped {
        terms.push(scoped_term(f, t));
    }
    let woc = &snap.woc;
    let records = snap
        .segments
        .search(&fq, k, |n| woc.registry.id_of(n))
        .iter()
        .map(|h| h.id)
        .collect();
    (terms, records)
}

#[test]
fn low_churn_maintenance_keeps_untouched_entries_warm() {
    let mut world = World::generate(WorldConfig::tiny(610));
    let cfg = CorpusConfig::tiny(61);
    let corpus_v1 = generate_corpus(&world, &cfg);
    let mut engine = IncrEngine::new(&corpus_v1, PipelineConfig::default());
    let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());
    let snap1 = server.snapshot();

    // Warm the cache: one single-word query per live record.
    let pool: Vec<String> = {
        let mut words: BTreeSet<String> = BTreeSet::new();
        for id in engine.web().store.live_ids() {
            let rec = engine.web().store.latest(id).expect("live");
            if let Some(w) = LrecIndex::record_tokens(rec)
                .iter()
                .find(|w| w.chars().all(|c| c.is_ascii_alphanumeric()) && w.len() > 2)
            {
                words.insert(w.clone());
            }
        }
        words.into_iter().take(48).collect()
    };
    assert!(pool.len() >= 8, "need a meaningful query pool");
    let k = 5usize;
    let mut fills: BTreeMap<&str, String> = BTreeMap::new();
    for q in &pool {
        let a = server.search(q, k);
        assert!(!a.cached);
        fills.insert(q, payload(&a));
    }

    // Low churn: retry seeds until at least one event fires (a zero-event
    // churn call does not mutate the world).
    let mut seed = 1u64;
    while churn_restaurants(&mut world, 0.01, Tick(10), seed).is_empty() {
        seed += 1;
        assert!(seed < 1000, "no churn events after many seeds");
    }
    let corpus_v2 = generate_corpus(&world, &cfg);
    let (report, epoch) = engine
        .maintain_and_publish(&corpus_v2, &server)
        .expect("maintenance must succeed");
    assert!(!report.short_circuited);
    assert!(report.effective_change, "churn must change served bytes");
    assert_eq!(epoch, 2);
    assert_eq!(server.epoch(), 2);

    // The engine's maintained segments flatten to the flat truth.
    assert_eq!(
        engine.segments().flatten().digest(),
        engine.web().record_index.digest(),
        "maintained segments must equal a flat rebuild"
    );
    // The server serves the engine's exact segments: the frozen base is
    // the same allocation on both sides — a delta publish ships only the
    // small new segments, never a rebuilt base.
    let snap2 = server.snapshot();
    assert!(std::sync::Arc::ptr_eq(
        engine.segments().base_segment(),
        snap2.segments.base_segment(),
    ));
    assert!(snap2.segments.delta_count() > 0, "the pass shipped a delta");
    // The maintained segments audit clean, including W014 segment metadata.
    let audit = woc_audit::audit_with_segments(
        engine.web(),
        engine.segments(),
        &woc_audit::AuditConfig::default(),
    );
    assert!(audit.passed(), "{}", audit.render());

    let changed_terms: BTreeSet<&str> = report.changed_terms.iter().map(String::as_str).collect();
    let changed_records: BTreeSet<LrecId> = report.changed_records.iter().copied().collect();
    assert!(!changed_records.is_empty(), "churn touched some record");

    let (mut survivors, mut dropped) = (0usize, 0usize);
    for q in &pool {
        let (terms, records) = query_scope(&snap1, q, k);
        let expect_hit = terms.iter().all(|t| !changed_terms.contains(t.as_str()))
            && records.iter().all(|r| !changed_records.contains(r));
        let a = server.search(q, k);
        assert_eq!(a.epoch, 2);
        assert_eq!(
            a.cached, expect_hit,
            "query {q:?}: cached={} but scope-disjointness predicts {}",
            a.cached, expect_hit
        );
        if expect_hit {
            survivors += 1;
            assert_eq!(
                payload(&a),
                fills[q.as_str()],
                "retained entry for {q:?} must be byte-identical to its fill"
            );
        } else {
            dropped += 1;
        }
        // Cached or refilled, the answer equals a cold epoch-2 evaluation.
        server.set_cache_enabled(false);
        let cold = server.search(q, k);
        server.set_cache_enabled(true);
        assert_eq!(
            payload(&a),
            payload(&cold),
            "answer for {q:?} diverges from a cold epoch-2 evaluation"
        );
    }
    assert!(
        survivors * 2 > pool.len(),
        "low churn must keep the majority of entries warm ({survivors}/{} survived, {dropped} dropped)",
        pool.len()
    );
}
