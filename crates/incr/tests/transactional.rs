//! Transactional maintenance: a failed or rejected pass must leave the
//! engine byte-identical to its state before the call — the last good
//! epoch stays servable — and a subsequent clean pass must fully recover.

use woc_core::{build, PipelineConfig};
use woc_incr::{canonical_bytes, IncrEngine, MaintainError};
use woc_lrec::Tick;
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

fn epochs() -> (woc_webgen::WebCorpus, woc_webgen::WebCorpus) {
    let mut world = World::generate(WorldConfig::tiny(700));
    let corpus_cfg = CorpusConfig::tiny(70);
    let v1 = generate_corpus(&world, &corpus_cfg);
    let mut seed = 1;
    while churn_restaurants(&mut world, 0.4, Tick(10), seed).is_empty() {
        seed += 1;
        assert!(seed < 1000, "no churn events after a thousand seeds");
    }
    let v2 = generate_corpus(&world, &corpus_cfg);
    (v1, v2)
}

#[test]
fn rejected_pass_leaves_last_good_epoch_untouched() {
    let (v1, v2) = epochs();
    let config = PipelineConfig::default();
    let mut engine = IncrEngine::new(&v1, config.clone());
    let before = canonical_bytes(engine.web());

    engine.set_fault_hook(Box::new(|changes| {
        Err(format!("crawl gate rejected {} dirty pages", changes.len()))
    }));
    let err = engine.maintain(&v2).expect_err("hook must abort the pass");
    assert!(
        matches!(&err, MaintainError::FaultInjected(msg) if msg.contains("crawl gate")),
        "unexpected error: {err}"
    );
    assert_eq!(
        canonical_bytes(engine.web()),
        before,
        "aborted pass must not touch the engine's web"
    );

    // A later clean crawl of the *old* epoch still short-circuits: the
    // fingerprints were not replaced either.
    engine.clear_fault_hook();
    let report = engine.maintain(&v1).expect("clean pass succeeds");
    assert!(report.short_circuited, "epoch fingerprints were preserved");
}

#[test]
fn panicking_pass_aborts_cleanly_and_recovers() {
    let (v1, v2) = epochs();
    let config = PipelineConfig::default();
    let mut engine = IncrEngine::new(&v1, config.clone());
    let before = canonical_bytes(engine.web());

    engine.set_fault_hook(Box::new(|_| panic!("injected rebuild panic")));
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = engine.maintain(&v2).expect_err("panic must abort the pass");
    std::panic::set_hook(prev_hook);
    assert!(
        matches!(&err, MaintainError::RebuildPanicked(msg) if msg.contains("injected rebuild panic")),
        "unexpected error: {err}"
    );
    assert_eq!(
        canonical_bytes(engine.web()),
        before,
        "panicked pass must not touch the engine's web"
    );

    // Recovery: the same engine maintains the same target epoch cleanly
    // and lands byte-identical to a from-scratch rebuild.
    engine.clear_fault_hook();
    let report = engine.maintain(&v2).expect("recovery pass succeeds");
    assert!(!report.short_circuited);
    let fresh = build(&v2, &config);
    assert_eq!(
        canonical_bytes(engine.web()),
        canonical_bytes(&fresh),
        "recovered epoch must equal a from-scratch build"
    );
}

#[test]
fn short_circuit_does_not_consult_the_hook() {
    let (v1, _) = epochs();
    let mut engine = IncrEngine::new(&v1, PipelineConfig::default());
    engine.set_fault_hook(Box::new(|_| Err("must not be called".to_string())));
    let report = engine
        .maintain(&v1)
        .expect("empty change set short-circuits before the hook");
    assert!(report.short_circuited);
}

#[test]
fn maintain_error_displays_its_cause() {
    let a = MaintainError::RebuildPanicked("boom".to_string());
    let b = MaintainError::FaultInjected("gate closed".to_string());
    assert_eq!(a.to_string(), "rebuild panicked: boom");
    assert_eq!(b.to_string(), "fault injected: gate closed");
}
