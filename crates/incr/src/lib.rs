//! # woc-incr — incremental maintenance of the web of concepts
//!
//! Paper §7.3, "managing change": "There is an obvious efficiency challenge
//! in processing the same web pages repeatedly without re-incurring the
//! full cost of extraction when the page is not modified in a material
//! way." This crate is that engine, layered over the construction pipeline:
//!
//! 1. **Change detection** — every page gets a stable content fingerprint
//!    ([`woc_webgen::Page::fingerprint`]); [`IncrEngine::changes`] diffs the
//!    fingerprints of a fresh crawl against the previous epoch's into a
//!    [`ChangeSet`] of dirty, added and removed pages.
//! 2. **Dirty-set propagation** — the lineage DAG maps dirty pages to the
//!    records derived from them ([`woc_core::Lineage::records_from_document`]);
//!    the pass reports the affected partition and which records are
//!    tombstoned because every source page vanished.
//! 3. **Scoped recomputation with index patching** — [`IncrEngine::maintain`]
//!    replays the deterministic pipeline through
//!    [`woc_core::build_with_caches`]: extraction, pair scoring, mention
//!    scanning and index construction are content-keyed memos, so only work
//!    downstream of the dirty set is recomputed, and index postings are
//!    patched in place ([`woc_index::InvertedIndex::replace_doc`]) rather
//!    than rebuilt. Because every memo is a pure-function memo, the
//!    maintained web is **byte-identical** to a from-scratch rebuild at the
//!    same epoch — [`canonical_bytes`] is the oracle the equivalence tests
//!    and the `incr-equivalence` CI gate compare with.
//! 4. **Epoch-delta publishing** — [`IncrEngine::maintain_and_publish`]
//!    folds the pass into a [`woc_serve::EpochDelta`] and hands the patched
//!    web to [`woc_serve::ConceptServer::publish_delta`]: a no-op pass keeps
//!    the served epoch and its warm result cache; any real change publishes
//!    a new epoch.
//!
//! An empty [`ChangeSet`] short-circuits the whole pass —
//! [`MaintainReport::short_circuited`] — without cloning, rebuilding or
//! publishing anything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use serde::{Serialize, Value};
use woc_core::{build_with_caches, AssocKind, BuildCaches, PipelineConfig, WebOfConcepts};
use woc_index::{MergePolicy, RecordChange, SegmentedLrecIndex};
use woc_lrec::{ConceptId, LrecId};
use woc_serve::{ConceptServer, EpochDelta, SegmentDelta};
use woc_webgen::WebCorpus;

/// The page-level diff between the engine's current epoch and a fresh
/// crawl. URLs are sorted, so the set is deterministic regardless of
/// corpus iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChangeSet {
    /// Pages present in both crawls whose content fingerprint changed.
    pub dirty: Vec<String>,
    /// Pages present only in the new crawl.
    pub added: Vec<String>,
    /// Pages present only in the old crawl.
    pub removed: Vec<String>,
}

impl ChangeSet {
    /// Total number of changed pages.
    pub fn len(&self) -> usize {
        self.dirty.len() + self.added.len() + self.removed.len()
    }

    /// True when nothing changed — maintenance can short-circuit.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What one [`IncrEngine::maintain`] pass scanned, found and recomputed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintainReport {
    /// Pages in the new crawl.
    pub pages_scanned: usize,
    /// Pages whose fingerprint changed, plus added and removed pages.
    pub pages_dirty: usize,
    /// True when the change set was empty and the pass did nothing.
    pub short_circuited: bool,
    /// Live records derived (per lineage) from dirty or removed pages —
    /// the partition the pass had to reconsider.
    pub records_affected: usize,
    /// Affected records whose every source page vanished (tombstoned in
    /// the maintained web).
    pub records_tombstoned: usize,
    /// Concepts with at least one affected record (sorted) — the scope
    /// handed to [`woc_serve::EpochDelta`].
    pub touched_concepts: Vec<ConceptId>,
    /// Pages whose extraction was actually recomputed.
    pub pages_reextracted: usize,
    /// Candidate pairs whose match score was actually recomputed.
    pub pairs_rescored: usize,
    /// Pages re-scanned for record mentions.
    pub mention_pages_rescanned: usize,
    /// `(term, doc)` postings removed or inserted by in-place index
    /// patching.
    pub postings_patched: usize,
    /// True when the record index could not be patched and was rebuilt.
    pub record_index_rebuilt: bool,
    /// True when the document index could not be patched and was rebuilt.
    pub doc_index_rebuilt: bool,
    /// True when the maintained web actually differs from the previous
    /// epoch's ([`canonical_bytes`]-level). A pass can be *dirty but
    /// ineffective*: a cosmetic DOM edit changes a page fingerprint, every
    /// downstream memo recomputes to identical output, and the rebuilt web
    /// is byte-identical — publishing it would drop a warm cache for
    /// nothing. Short-circuited passes report `false`.
    pub effective_change: bool,
    /// URLs of every dirty, added or removed page this pass saw (sorted) —
    /// the scope a partitioned serving tier (`woc-cluster`) uses to decide
    /// which shard-local document indexes need rebuilding.
    pub changed_pages: Vec<String>,
    /// Index terms whose posting lists this pass changed: the union of the
    /// old and new token sequences of every record whose indexed tokens
    /// moved (sorted, deduplicated). Exact — computed from the memo
    /// layer's record-index diff, not approximated from lineage.
    pub changed_terms: Vec<String>,
    /// Canonical records whose stored content this pass may have changed
    /// (sorted): the lineage-affected partition on both sides of the pass
    /// plus every record the index diff touched. Conservative — a record
    /// listed here may turn out byte-identical, but a record *not* listed
    /// is guaranteed untouched.
    pub changed_records: Vec<LrecId>,
    /// The unfiltered candidate partition [`MaintainReport::changed_records`]
    /// was filtered from: every canonical record lineage-derived from a
    /// dirty, added or removed page (on either side of the pass) plus every
    /// record the index diff touched (sorted). `changed_records ⊆
    /// affected_records` by construction — the audit's W015 micro-epoch
    /// check verifies exactly this containment for every published
    /// micro-epoch of a streaming ingest.
    pub affected_records: Vec<LrecId>,
    /// Delta-segment merges the segmented index's size-tiered policy ran
    /// while absorbing this pass.
    pub segment_merges: usize,
    /// True when the segmented index compacted down to a single base and
    /// re-pinned its corpus-global scoring statistics during this pass.
    pub stats_repinned: bool,
}

/// Why a maintenance pass aborted without changing the engine's epoch.
///
/// A failed pass is transactional: [`IncrEngine::web`] and the epoch
/// fingerprints are exactly what they were before the pass began, so the
/// caller keeps serving the last good web.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintainError {
    /// The pipeline replay panicked; the payload message is captured.
    RebuildPanicked(String),
    /// The pre-rebuild fault hook rejected the pass (chaos testing, or a
    /// crawl-quality gate refusing a degraded corpus).
    FaultInjected(String),
}

impl fmt::Display for MaintainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintainError::RebuildPanicked(msg) => write!(f, "rebuild panicked: {msg}"),
            MaintainError::FaultInjected(msg) => write!(f, "fault injected: {msg}"),
        }
    }
}

impl std::error::Error for MaintainError {}

/// Render a `catch_unwind` payload: panics carry `&str` or `String`
/// almost always; anything else is opaque.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A pre-rebuild gate: sees the change set, returns `Err(reason)` to abort
/// the pass before any state is touched.
pub type FaultHook = Box<dyn Fn(&ChangeSet) -> Result<(), String> + Send>;

/// The incremental maintenance engine: owns the current web, the page
/// fingerprints it was built from, and the memo caches that make the next
/// pass cheap.
pub struct IncrEngine {
    config: PipelineConfig,
    caches: BuildCaches,
    fingerprints: HashMap<String, u64>,
    web: WebOfConcepts,
    segments: SegmentedLrecIndex,
    fault_hook: Option<FaultHook>,
}

impl fmt::Debug for IncrEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncrEngine")
            .field("config", &self.config)
            .field("pages", &self.fingerprints.len())
            .field("fault_hook", &self.fault_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl IncrEngine {
    /// Build the initial web from `corpus` (a full build that warms every
    /// cache) and remember its fingerprints.
    pub fn new(corpus: &WebCorpus, config: PipelineConfig) -> Self {
        let mut caches = BuildCaches::new();
        let web = build_with_caches(corpus, &config, Some(&mut caches));
        let segments = web.segmented_record_index(MergePolicy::default());
        Self {
            config,
            caches,
            fingerprints: fingerprint_map(corpus),
            web,
            segments,
            fault_hook: None,
        }
    }

    /// Install a pre-rebuild gate consulted by every maintain pass (after
    /// change detection, before any state is touched). `Err(reason)` from
    /// the hook aborts the pass as [`MaintainError::FaultInjected`].
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault_hook = Some(hook);
    }

    /// Remove the fault hook.
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// The current maintained web.
    pub fn web(&self) -> &WebOfConcepts {
        &self.web
    }

    /// The engine's incrementally-maintained segmented record index: a
    /// frozen base pinned at the initial build's statistics plus one small
    /// delta segment per effective pass, compacted by the size-tiered merge
    /// policy. Its flattened contents always equal [`Self::web`]'s record
    /// index (the `W014` audit checks exactly this).
    pub fn segments(&self) -> &SegmentedLrecIndex {
        &self.segments
    }

    /// Pre-seed the engine's extraction memo with an externally computed
    /// result for the page whose content fingerprint is `fp` — the seam the
    /// streaming ingest dataflow (`woc-stream`) feeds its pipelined extract
    /// stage through, so the next [`Self::maintain`] replay hits the memo
    /// instead of re-extracting the page. The caller certifies `records` is
    /// exactly what the pipeline's extraction stage would produce for a
    /// page with this fingerprint; a wrong seed would break the
    /// byte-identity contract (and the equivalence suite would catch it).
    pub fn seed_extraction(
        &mut self,
        fp: u64,
        records: std::sync::Arc<Vec<woc_extract::ExtractedRecord>>,
    ) {
        self.caches.seed_extract(fp, records);
    }

    /// Layer 1 — change detection: diff `corpus` against the fingerprints
    /// of the engine's current epoch.
    pub fn changes(&self, corpus: &WebCorpus) -> ChangeSet {
        self.changes_from(corpus, &fingerprint_map(corpus))
    }

    /// Change detection against already-computed fingerprints of `corpus`
    /// (so a maintain pass fingerprints each page exactly once).
    fn changes_from(&self, corpus: &WebCorpus, new_fps: &HashMap<String, u64>) -> ChangeSet {
        let mut set = ChangeSet::default();
        for page in corpus.pages() {
            let fp = new_fps[&page.url];
            match self.fingerprints.get(&page.url) {
                Some(&old) if old == fp => {}
                Some(_) => set.dirty.push(page.url.clone()),
                None => set.added.push(page.url.clone()),
            }
        }
        set.removed = self
            .fingerprints
            .keys()
            .filter(|url| !new_fps.contains_key(url.as_str()))
            .cloned()
            .collect();
        set.dirty.sort_unstable();
        set.added.sort_unstable();
        set.removed.sort_unstable();
        set
    }

    /// Layers 2+3 — maintain the web against a fresh crawl: detect
    /// changes, short-circuit if there are none, otherwise propagate the
    /// dirty set through lineage and replay the pipeline over the warm
    /// memo caches. Afterwards [`Self::web`] is byte-identical
    /// ([`canonical_bytes`]) to a from-scratch build of `corpus`.
    ///
    /// The pass is **transactional**: if the fault hook rejects it or the
    /// pipeline replay panics, `Err` is returned and the engine's web and
    /// fingerprints are exactly what they were before the call — the last
    /// good epoch stays servable.
    pub fn maintain(&mut self, corpus: &WebCorpus) -> Result<MaintainReport, MaintainError> {
        let new_fps = fingerprint_map(corpus);
        let changes = self.changes_from(corpus, &new_fps);
        let mut report = MaintainReport {
            pages_scanned: corpus.len(),
            pages_dirty: changes.len(),
            ..MaintainReport::default()
        };
        if changes.is_empty() {
            report.short_circuited = true;
            return Ok(report);
        }
        if let Some(hook) = &self.fault_hook {
            // The hook runs under the same unwind protection as the
            // rebuild: a panicking gate aborts the pass, it doesn't tear
            // down the engine.
            catch_unwind(AssertUnwindSafe(|| hook(&changes)))
                .map_err(|payload| MaintainError::RebuildPanicked(panic_message(payload)))?
                .map_err(MaintainError::FaultInjected)?;
        }

        // Dirty-set propagation: which live records derive from the pages
        // that changed or vanished? (Lineage speaks pre-merge ids; resolve
        // to canonical survivors.)
        let mut affected: BTreeSet<LrecId> = BTreeSet::new();
        for url in changes.dirty.iter().chain(&changes.removed) {
            for id in self.web.lineage.records_from_document(url) {
                if let Some(canon) = self.web.store.resolve(id) {
                    affected.insert(canon);
                }
            }
        }
        let removed_urls: HashSet<&str> = changes.removed.iter().map(String::as_str).collect();
        report.records_tombstoned = affected
            .iter()
            .filter(|&&id| {
                let docs = self.web.web.docs_of_kind(id, AssocKind::ExtractedFrom);
                !docs.is_empty() && docs.iter().all(|d| removed_urls.contains(d))
            })
            .count();
        report.records_affected = affected.len();
        let mut touched: BTreeSet<ConceptId> = affected
            .iter()
            .filter_map(|&id| self.web.store.latest(id).map(|r| r.concept()))
            .collect();

        // Scoped recomputation: replay the pipeline over the warm caches.
        // Only content downstream of the dirty set misses its memos. The
        // replay runs under `catch_unwind` so a panicking pass aborts
        // cleanly instead of poisoning the epoch. `AssertUnwindSafe` is
        // justified: the only state the closure mutates is the memo
        // caches, whose entries are content-keyed pure-function results —
        // a panic can strand freshly inserted (valid) entries but cannot
        // leave a wrong one, and `self.web` / `self.fingerprints` are not
        // touched until the replay has returned.
        let new_web = catch_unwind(AssertUnwindSafe(|| {
            build_with_caches(corpus, &self.config, Some(&mut self.caches))
        }))
        .map_err(|payload| MaintainError::RebuildPanicked(panic_message(payload)))?;

        // Records born from added or rewritten pages scope the delta too.
        let mut affected_new: BTreeSet<LrecId> = BTreeSet::new();
        for url in changes.dirty.iter().chain(&changes.added) {
            for id in new_web.lineage.records_from_document(url) {
                if let Some(canon) = new_web.store.resolve(id) {
                    if let Some(rec) = new_web.store.latest(canon) {
                        touched.insert(rec.concept());
                        affected_new.insert(canon);
                    }
                }
            }
        }
        report.touched_concepts = touched.into_iter().collect();

        let stats = self.caches.stats();
        report.pages_reextracted = stats.pages_reextracted;
        report.pairs_rescored = stats.pairs_rescored;
        report.mention_pages_rescanned = stats.mention_pages_rescanned;
        report.postings_patched = stats.postings_patched;
        report.record_index_rebuilt = stats.record_index_rebuilt;
        report.doc_index_rebuilt = stats.doc_index_rebuilt;

        // Did the pass actually change anything the web serves from? Any
        // index patch or rebuild is proof of change, as is a tombstone.
        // When every cheap signal is quiet — the cosmetic-change case —
        // fall back to the byte-level oracle. The oracle only runs on
        // quiet passes, so real-churn maintenance never pays for it.
        let cheap_change = stats.postings_patched > 0
            || stats.records_repatched > 0
            || stats.record_index_rebuilt
            || stats.doc_index_rebuilt
            || report.records_tombstoned > 0;
        report.effective_change =
            cheap_change || canonical_bytes(&new_web) != canonical_bytes(&self.web);
        report.changed_pages = {
            let mut urls = changes.dirty.clone();
            urls.extend(changes.added.iter().cloned());
            urls.extend(changes.removed.iter().cloned());
            urls.sort_unstable();
            urls
        };

        // The retention scope of the pass, in the cache's vocabulary: the
        // exact terms whose posting lists moved (from the memo layer's
        // record-index diff) and a conservative superset of the records
        // whose content may have moved (the lineage-affected partition on
        // both sides, plus everything the index diff touched).
        let record_changes = self.caches.stats().record_changes.clone();
        let mut changed_terms: BTreeSet<String> = BTreeSet::new();
        for c in &record_changes {
            for t in c
                .old_tokens
                .iter()
                .flatten()
                .chain(c.new_tokens.iter().flatten())
            {
                changed_terms.insert(t.clone());
            }
        }
        report.changed_terms = changed_terms.into_iter().collect();
        // Candidate changed records: the lineage-affected partition on both
        // sides plus everything the index diff touched. Lineage is
        // deliberately coarse — a dirty *list* page affects every record it
        // mentions — so filter the candidates down to records whose stored
        // content (or liveness) actually moved. The filtered set is still a
        // sound invalidation scope: any content change originates from a
        // changed page, and lineage captures every such record.
        let mut candidates = affected;
        candidates.extend(affected_new);
        candidates.extend(record_changes.iter().map(|c| c.id));
        report.affected_records = candidates.iter().copied().collect();
        report.changed_records = candidates
            .into_iter()
            .filter(|&id| self.web.store.latest(id) != new_web.store.latest(id))
            .collect();

        self.web = new_web;
        self.fingerprints = new_fps;

        // Absorb the pass into the segmented index as one delta segment
        // (newest-wins shadowing; tombstones for removals), letting the
        // size-tiered policy merge as it goes. An empty diff appends
        // nothing, so the segment structure only grows on real change.
        if !record_changes.is_empty() {
            let delta: Vec<RecordChange> = record_changes
                .iter()
                .map(|c| RecordChange {
                    id: c.id,
                    concept: c.concept,
                    tokens: c.new_tokens.clone(),
                })
                .collect();
            let outcome = self.segments.apply_delta(&delta);
            report.segment_merges = outcome.merges;
            report.stats_repinned = outcome.repinned;
        }
        Ok(report)
    }

    /// Layer 4 — maintain, then publish the result to a serving tier as a
    /// *segmented* delta ([`woc_serve::ConceptServer::publish_delta_segmented`]):
    /// the server ships the engine's maintained segments (sharing the frozen
    /// base across epochs) and retains every cached entry whose scope the
    /// pass provably did not touch, instead of dropping the cache wholesale.
    /// A short-circuited or ineffective pass publishes nothing: the server
    /// keeps its epoch and its warm result cache. A failed pass publishes
    /// nothing either — the error propagates and the server keeps serving
    /// the previous epoch. Returns the pass report and the epoch now being
    /// served.
    pub fn maintain_and_publish(
        &mut self,
        corpus: &WebCorpus,
        server: &ConceptServer,
    ) -> Result<(MaintainReport, u64), MaintainError> {
        let report = self.maintain(corpus)?;
        let epoch = server.publish_delta_segmented(
            self.web.clone(),
            &segment_delta(&report),
            Arc::new(self.segments.clone()),
        );
        Ok((report, epoch))
    }
}

/// Fold a maintenance report into the [`EpochDelta`] a serving tier should
/// publish with. Short-circuited and *ineffective* passes (dirty pages
/// whose recomputation produced a byte-identical web — see
/// [`MaintainReport::effective_change`]) fold to the empty delta, which
/// [`woc_serve::ConceptServer::publish_delta`] treats as a no-op: same
/// epoch, warm cache. `woc-cluster` uses the same folding for its
/// per-shard delta publishes.
pub fn epoch_delta(report: &MaintainReport) -> EpochDelta {
    if report.short_circuited || !report.effective_change {
        return EpochDelta::default();
    }
    EpochDelta {
        touched_concepts: report.touched_concepts.clone(),
        records_changed: report.records_affected > 0 || report.records_tombstoned > 0,
        // Any dirty/added/removed page perturbs the doc index and
        // the corpus-global BM25 statistics.
        docs_changed: report.pages_dirty > 0,
    }
}

/// Fold a maintenance report into the [`SegmentDelta`] a segmented publish
/// retains the result cache with: the coarse plane flags plus the pass's
/// exact changed-term set and conservative changed-record set. Folds to a
/// no-op for short-circuited and ineffective passes, exactly like
/// [`epoch_delta`].
pub fn segment_delta(report: &MaintainReport) -> SegmentDelta {
    SegmentDelta {
        base: epoch_delta(report),
        changed_terms: report.changed_terms.clone(),
        changed_records: report.changed_records.clone(),
        stats_repinned: report.stats_repinned,
    }
}

fn fingerprint_map(corpus: &WebCorpus) -> HashMap<String, u64> {
    corpus
        .pages()
        .iter()
        .map(|p| (p.url.clone(), p.fingerprint()))
        .collect()
}

/// Serialization wrapper whose value tree has already been canonicalized.
struct Canon(Value);

impl Serialize for Canon {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Sort every object's entries by key, recursively. The vendored serde
/// serializes maps in iteration order — per-instance nondeterministic for
/// `HashMap` — so canonical comparison must impose an order itself. Map
/// keys are always rendered as strings (scalar keys are stringified), so a
/// lexicographic sort is total.
fn canonicalize(value: Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.into_iter().map(canonicalize).collect()),
        Value::Object(entries) => {
            let mut entries: Vec<(String, Value)> = entries
                .into_iter()
                .map(|(k, v)| (k, canonicalize(v)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(entries)
        }
        scalar => scalar,
    }
}

/// A canonical byte rendering of everything the web serves from: the
/// record store (versions, merges, tombstones), lineage, record↔document
/// associations, the doc tables, and both index digests. Two webs with
/// equal `canonical_bytes` answer every query identically — this is the
/// equivalence oracle for "incremental maintenance ≡ from-scratch
/// rebuild".
pub fn canonical_bytes(woc: &WebOfConcepts) -> Vec<u8> {
    let top = Value::Object(vec![
        ("store".to_string(), canonicalize(woc.store.to_value())),
        ("lineage".to_string(), canonicalize(woc.lineage.to_value())),
        ("web".to_string(), canonicalize(woc.web.to_value())),
        (
            "doc_urls".to_string(),
            canonicalize(woc.doc_urls.to_value()),
        ),
        (
            "doc_titles".to_string(),
            canonicalize(woc.doc_titles.to_value()),
        ),
        (
            "record_index_digest".to_string(),
            Value::UInt(woc.record_index.digest()),
        ),
        (
            "doc_index_digest".to_string(),
            Value::UInt(woc.doc_index.digest()),
        ),
        ("trust_digest".to_string(), Value::UInt(woc.trust.digest())),
    ]);
    serde_json::to_string(&Canon(top))
        .expect("invariant: a canonicalized value tree always serializes")
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::build;
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    #[test]
    fn canonical_bytes_stable_across_identical_builds() {
        let world = World::generate(WorldConfig::tiny(41));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(5));
        let a = build(&corpus, &PipelineConfig::default());
        let b = build(&corpus, &PipelineConfig::default());
        assert_eq!(
            canonical_bytes(&a),
            canonical_bytes(&b),
            "two from-scratch builds of the same corpus must render identically"
        );
    }

    #[test]
    fn canonical_bytes_detects_differences() {
        let world = World::generate(WorldConfig::tiny(41));
        let a = build(
            &generate_corpus(&world, &CorpusConfig::tiny(5)),
            &PipelineConfig::default(),
        );
        let b = build(
            &generate_corpus(&world, &CorpusConfig::tiny(6)),
            &PipelineConfig::default(),
        );
        assert_ne!(canonical_bytes(&a), canonical_bytes(&b));
    }

    #[test]
    fn cosmetic_dom_change_is_dirty_but_ineffective() {
        use woc_serve::ServeConfig;

        let world = World::generate(WorldConfig::tiny(44));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(9));
        let mut engine = IncrEngine::new(&corpus, PipelineConfig::default());
        let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());
        server.search("gochi", 5);
        let warm = server.cache_len();
        assert!(warm > 0);

        // A DOM-attribute-only edit: fingerprint changes, visible text and
        // extraction output do not.
        let mut v2 = WebCorpus::new();
        for (i, p) in corpus.pages().iter().enumerate() {
            let mut p = p.clone();
            if i == 0 {
                if let woc_webgen::Node::Element { attrs, .. } = &mut p.dom {
                    attrs.insert("data-deploy".to_string(), "canary".to_string());
                }
                assert_ne!(
                    p.fingerprint(),
                    corpus.pages()[0].fingerprint(),
                    "the cosmetic edit must still dirty the fingerprint"
                );
            }
            v2.add(p);
        }

        let (report, epoch) = engine
            .maintain_and_publish(&v2, &server)
            .expect("cosmetic pass succeeds");
        assert_eq!(report.pages_dirty, 1, "one page re-fingerprinted");
        assert!(!report.short_circuited, "the pass did run");
        assert!(
            !report.effective_change,
            "…but recomputation produced a byte-identical web"
        );
        assert_eq!(report.changed_pages, vec![corpus.pages()[0].url.clone()]);
        assert_eq!(epoch, 1, "no epoch bump for an ineffective pass");
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.cache_len(), warm, "result cache stays warm");
        assert!(server.search("gochi", 5).cached);
        // The maintained web is still the from-scratch truth for v2.
        assert_eq!(
            canonical_bytes(engine.web()),
            canonical_bytes(&build(&v2, &PipelineConfig::default())),
        );

        // A real content change on the same engine still publishes.
        let mut v3 = WebCorpus::new();
        for (i, p) in v2.pages().iter().enumerate() {
            let mut p = p.clone();
            if i == 1 {
                p.title.push_str(" (renovated)");
            }
            v3.add(p);
        }
        let (report, epoch) = engine
            .maintain_and_publish(&v3, &server)
            .expect("real change publishes");
        assert!(report.effective_change);
        assert_eq!(epoch, 2);
        // The segmented publish retains entries the pass provably did not
        // touch instead of dropping the cache wholesale; whatever the
        // server answers now must equal a cold evaluation at epoch 2.
        let a = server.search("gochi", 5);
        assert_eq!(a.epoch, 2);
        server.set_cache_enabled(false);
        let fresh = server.search("gochi", 5);
        server.set_cache_enabled(true);
        assert_eq!(
            format!("{:?}", a.value),
            format!("{:?}", fresh.value),
            "post-publish answer must match a cold epoch-2 evaluation"
        );
        // The maintained segments always flatten to the flat truth.
        assert_eq!(
            engine.segments().flatten().digest(),
            engine.web().record_index.digest()
        );
    }

    #[test]
    fn changes_classifies_dirty_added_removed() {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
        let engine = IncrEngine::new(&corpus, PipelineConfig::default());

        assert!(engine.changes(&corpus).is_empty());

        let mut v2 = WebCorpus::new();
        let pages = corpus.pages();
        // Drop the first page, mutate the second, keep the rest, add one.
        for (i, p) in pages.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let mut p = p.clone();
            if i == 1 {
                p.title.push_str(" (updated)");
            }
            v2.add(p);
        }
        let mut extra = pages[2].clone();
        extra.url = "http://example.test/brand-new".to_string();
        v2.add(extra);

        let set = engine.changes(&v2);
        assert_eq!(set.removed, vec![pages[0].url.clone()]);
        assert_eq!(set.dirty, vec![pages[1].url.clone()]);
        assert_eq!(set.added, vec!["http://example.test/brand-new".to_string()]);
        assert_eq!(set.len(), 3);
    }
}
