//! # woc-matching — entity matching for the web of concepts (paper §6, §7.2)
//!
//! "The problems of identifying which pieces of information pertain to the
//! same concept is a variant of the well-studied entity matching problem."
//! This crate implements the full EM pipeline the paper surveys:
//!
//! * [`blocking`] — cheap candidate-pair generation by shared keys;
//! * [`simvec`] — per-attribute similarity vectors (Levenshtein/Jaro-Winkler
//!   based, kind-aware);
//! * [`fellegi`] — the Fellegi–Sunter probabilistic match/non-match model
//!   \[31\], with supervised m/u estimation;
//! * [`collective`] — iterative collective resolution where "matching
//!   decisions trigger new matches" \[12, 29\];
//! * [`textmatch`] — record↔text matching via a domain-centric generative
//!   language model (reviews → restaurants, the \[23\] idea), plus a TF-IDF
//!   baseline;
//! * [`cluster`] — union-find clustering and pairwise cluster P/R.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod cluster;
pub mod collective;
pub mod fellegi;
pub mod shard;
pub mod simvec;
pub mod textmatch;

pub use blocking::{blocking_keys, blocking_recall, candidate_pairs, candidate_pairs_sharded};
pub use cluster::{pairwise_prf, pairwise_prf_sharded, UnionFind};
pub use collective::{resolve_collective, resolve_pairwise, CollectiveConfig};
pub use fellegi::{AttrParams, Decision, FellegiSunter};
pub use simvec::{attr_similarity, similarity_vector, value_similarity};
pub use textmatch::{GenerativeMatcher, TfIdfMatcher};

/// Precision/recall/F1 over pair decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatchPrf {
    /// Correctly matched pairs.
    pub tp: usize,
    /// Incorrectly matched pairs.
    pub fp: usize,
    /// Missed pairs.
    pub fn_: usize,
}

impl MatchPrf {
    /// Precision (1.0 when nothing was matched).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when there was nothing to match).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl std::fmt::Display for MatchPrf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3}",
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}
