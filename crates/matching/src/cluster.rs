//! Union-find clustering and pairwise cluster evaluation.

use std::collections::HashMap;

/// Disjoint-set forest with path compression and union by rank.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merge the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The clusters as lists of member indices (deterministic order).
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let mut map: HashMap<usize, Vec<usize>> = HashMap::new();
        for x in 0..self.parent.len() {
            let r = self.find(x);
            map.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = map.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// Pairwise precision/recall of predicted clusters against gold labels:
/// a pair `(i, j)` is a gold positive if `gold[i] == gold[j]`.
pub fn pairwise_prf<T: Eq + std::hash::Hash>(
    predicted: &mut UnionFind,
    gold: &[T],
) -> crate::MatchPrf {
    // Not delegated to the sharded variant: that would force `T: Sync` on
    // every caller for no benefit at one thread.
    let n = gold.len();
    assert_eq!(predicted.len(), n);
    let roots: Vec<usize> = (0..n).map(|x| predicted.find(x)).collect();
    let mut prf = crate::MatchPrf::default();
    for i in 0..n {
        for j in (i + 1)..n {
            match (roots[i] == roots[j], gold[i] == gold[j]) {
                (true, true) => prf.tp += 1,
                (true, false) => prf.fp += 1,
                (false, true) => prf.fn_ += 1,
                (false, false) => {}
            }
        }
    }
    prf
}

/// [`pairwise_prf`] over `threads` workers. Roots are resolved up front so
/// the O(n²) pair sweep is a pure read; per-row counts are summed, which is
/// order-independent, so the result is identical at any thread count.
pub fn pairwise_prf_sharded<T: Eq + std::hash::Hash + Sync>(
    predicted: &mut UnionFind,
    gold: &[T],
    threads: usize,
) -> crate::MatchPrf {
    let n = gold.len();
    assert_eq!(predicted.len(), n);
    let roots: Vec<usize> = (0..n).map(|x| predicted.find(x)).collect();
    let rows: Vec<usize> = (0..n).collect();
    let counts = crate::shard::shard_map(&rows, threads, |&i| {
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for j in (i + 1)..n {
            let pred = roots[i] == roots[j];
            let truth = gold[i] == gold[j];
            match (pred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        (tp, fp, fn_)
    });
    let mut prf = crate::MatchPrf::default();
    for (tp, fp, fn_) in counts {
        prf.tp += tp;
        prf.fp += fp;
        prf.fn_ += fn_;
    }
    prf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        let clusters = uf.clusters();
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn pairwise_evaluation() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1); // correct
        uf.union(2, 3); // wrong
        let gold = ["a", "a", "b", "c"];
        let prf = pairwise_prf(&mut uf, &gold);
        assert_eq!(prf.tp, 1);
        assert_eq!(prf.fp, 1);
        assert_eq!(prf.fn_, 0);
    }

    #[test]
    fn sharded_prf_matches_serial() {
        let mut uf = UnionFind::new(40);
        for i in 0..20 {
            uf.union(i * 2, i * 2 + 1);
        }
        let gold: Vec<usize> = (0..40).map(|i| i / 3).collect();
        let serial = pairwise_prf(&mut uf, &gold);
        for threads in [2, 4, 40, 100] {
            assert_eq!(pairwise_prf_sharded(&mut uf, &gold, threads), serial);
        }
    }

    #[test]
    fn empty_is_fine() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let prf = pairwise_prf(&mut uf, &[] as &[u8]);
        assert_eq!(prf.precision(), 1.0);
    }
}
