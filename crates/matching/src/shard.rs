//! Order-preserving sharded map for the matching stages.
//!
//! Contiguous chunks, one per worker, results concatenated in chunk order —
//! for a pure per-item function the output equals the serial map exactly at
//! any thread count, which is what lets the pipeline promise byte-identical
//! builds regardless of parallelism.

/// Map `f` over `items` on up to `threads` workers, preserving input order.
pub fn shard_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let shards = threads.min(items.len());
    let chunk = items.len().div_ceil(shards);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| {
                let f = &f;
                scope.spawn(move |_| shard.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("matching shard worker panicked"));
        }
        out
    })
    .expect("matching shard scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_preserved() {
        let items: Vec<u32> = (0..97).collect();
        let serial: Vec<u32> = items.iter().map(|x| x + 1).collect();
        for threads in [1, 2, 5, 97, 200] {
            assert_eq!(shard_map(&items, threads, |x| x + 1), serial);
        }
    }
}
