//! Attribute-similarity vectors between records.
//!
//! Following the classical entity-matching pipeline (paper §6: "the bulk of
//! follow up work on EM focused on constructing good attribute-similarity
//! measures"), a candidate pair is summarized by one similarity per
//! comparable attribute, each in `\[0, 1\]`, chosen by the attribute's kind:
//! hybrid Jaro–Winkler/Jaccard for names, normalized-equality for
//! phones/zips, numeric closeness for numbers.

use woc_lrec::{AttrValue, Lrec};
use woc_textkit::metrics::name_similarity;
use woc_textkit::tokenize::normalize;

/// Similarity of two typed values under the semantics of their kinds.
pub fn value_similarity(a: &AttrValue, b: &AttrValue) -> f64 {
    match (a, b) {
        (AttrValue::Phone(x), AttrValue::Phone(y)) => f64::from(x == y),
        (AttrValue::Zip(x), AttrValue::Zip(y)) => {
            if x == y {
                1.0
            } else if x.get(..3) == y.get(..3) {
                0.3 // same locality
            } else {
                0.0
            }
        }
        (AttrValue::Int(x), AttrValue::Int(y)) => f64::from(x == y),
        (AttrValue::Float(x), AttrValue::Float(y)) => {
            let d = (x - y).abs();
            (1.0 - d).clamp(0.0, 1.0)
        }
        (AttrValue::PriceCents(x), AttrValue::PriceCents(y)) => {
            let m = (*x).max(*y).max(1) as f64;
            1.0 - ((x - y).abs() as f64 / m).min(1.0)
        }
        (AttrValue::Date(x), AttrValue::Date(y)) => f64::from(x == y),
        (AttrValue::Url(x), AttrValue::Url(y)) => f64::from(normalize(x) == normalize(y)),
        (AttrValue::Ref(x), AttrValue::Ref(y)) => f64::from(x == y),
        // Text vs anything: compare display strings with the hybrid name
        // metric (robust to reordering and small edits).
        _ => name_similarity(&a.display_string(), &b.display_string()),
    }
}

/// Best similarity between any value of `key` in `a` and any in `b`;
/// `None` when either side lacks the attribute (missing data must not count
/// as disagreement — paper §2.2's loose records).
pub fn attr_similarity(a: &Lrec, b: &Lrec, key: &str) -> Option<f64> {
    let va = a.get(key);
    let vb = b.get(key);
    if va.is_empty() || vb.is_empty() {
        return None;
    }
    let mut best: f64 = 0.0;
    for x in va {
        for y in vb {
            best = best.max(value_similarity(&x.value, &y.value));
        }
    }
    Some(best)
}

/// The similarity vector over a fixed attribute list. Missing comparisons
/// are `None`.
pub fn similarity_vector(a: &Lrec, b: &Lrec, attrs: &[&str]) -> Vec<(String, Option<f64>)> {
    attrs
        .iter()
        .map(|&k| (k.to_string(), attr_similarity(a, b, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{ConceptId, LrecId, Provenance, Tick};

    fn rec(id: u64, pairs: &[(&str, AttrValue)]) -> Lrec {
        let mut r = Lrec::new(LrecId(id), ConceptId(0));
        for (k, v) in pairs {
            r.add(k, v.clone(), Provenance::ground_truth(Tick(0)));
        }
        r
    }

    #[test]
    fn typed_similarities() {
        assert_eq!(
            value_similarity(&AttrValue::Phone("1".into()), &AttrValue::Phone("1".into())),
            1.0
        );
        assert_eq!(
            value_similarity(
                &AttrValue::Zip("95014".into()),
                &AttrValue::Zip("95099".into())
            ),
            0.3
        );
        assert_eq!(
            value_similarity(
                &AttrValue::Zip("95014".into()),
                &AttrValue::Zip("60601".into())
            ),
            0.0
        );
        let close = value_similarity(&AttrValue::PriceCents(1000), &AttrValue::PriceCents(1100));
        assert!(close > 0.85 && close < 1.0);
    }

    #[test]
    fn text_similarity_robust_to_variants() {
        let s = value_similarity(
            &AttrValue::Text("Gochi Fusion Tapas".into()),
            &AttrValue::Text("GOCHI FUSION TAPAS".into()),
        );
        assert!(s > 0.99);
        let s = value_similarity(
            &AttrValue::Text("Gochi Fusion Tapas".into()),
            &AttrValue::Text("Gochi Fusion Tapas - Cupertino".into()),
        );
        assert!(s > 0.7, "suffixed variant still similar: {s}");
    }

    #[test]
    fn missing_attr_is_none() {
        let a = rec(1, &[("name", AttrValue::Text("Gochi".into()))]);
        let b = rec(2, &[("zip", AttrValue::Zip("95014".into()))]);
        assert_eq!(attr_similarity(&a, &b, "name"), None);
        assert_eq!(attr_similarity(&a, &b, "zip"), None);
        assert_eq!(attr_similarity(&a, &b, "other"), None);
    }

    #[test]
    fn multi_value_takes_best() {
        let a = rec(
            1,
            &[
                ("phone", AttrValue::Phone("1111111111".into())),
                ("phone", AttrValue::Phone("2222222222".into())),
            ],
        );
        let b = rec(2, &[("phone", AttrValue::Phone("2222222222".into()))]);
        assert_eq!(attr_similarity(&a, &b, "phone"), Some(1.0));
    }

    #[test]
    fn vector_shape() {
        let a = rec(1, &[("name", AttrValue::Text("X".into()))]);
        let b = rec(2, &[("name", AttrValue::Text("X".into()))]);
        let v = similarity_vector(&a, &b, &["name", "zip"]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], ("name".to_string(), Some(1.0)));
        assert_eq!(v[1], ("zip".to_string(), None));
    }
}
