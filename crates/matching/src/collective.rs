//! Iterative collective entity resolution (paper §6, references \[12, 29\]).
//!
//! "Collective approaches … are either iterative, where matching decisions
//! trigger new matches, or use various advanced probabilistic models."
//!
//! This module implements the iterative family: pairs are scored by a base
//! (attribute-level) scorer plus relational evidence — the overlap between
//! the *clusters* of the two records' neighbors (co-authors, shared
//! citations, shared reviews). Because neighbor clusters change as merges
//! happen, accepting one pair can push another pair over the threshold on
//! the next round; iteration runs to fixpoint.

use std::collections::HashSet;

use crate::cluster::UnionFind;

/// Configuration of the collective-resolution loop.
#[derive(Debug, Clone)]
pub struct CollectiveConfig {
    /// Score at or above which a pair is merged.
    pub accept: f64,
    /// Weight of the relational (neighbor-overlap) evidence.
    pub relational_weight: f64,
    /// Maximum iterations (fixpoint usually arrives in 2–4).
    pub max_iters: usize,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        Self {
            accept: 1.0,
            relational_weight: 1.5,
            max_iters: 10,
        }
    }
}

/// Jaccard overlap of two cluster-id sets.
fn cluster_jaccard(a: &HashSet<usize>, b: &HashSet<usize>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Run collective resolution.
///
/// * `n` — number of records;
/// * `candidates` — blocked candidate pairs with their base scores;
/// * `neighbors[i]` — indices of records related to record `i` (co-author
///   mentions, reviews rendered on the same page, …);
/// * returns the final clustering and the number of iterations used.
pub fn resolve_collective(
    n: usize,
    candidates: &[(usize, usize, f64)],
    neighbors: &[Vec<usize>],
    config: &CollectiveConfig,
) -> (UnionFind, usize) {
    assert_eq!(neighbors.len(), n);
    let mut uf = UnionFind::new(n);
    let mut merged: HashSet<(usize, usize)> = HashSet::new();
    let mut iters = 0;
    for round in 1..=config.max_iters {
        iters = round;
        // Snapshot neighbor clusters for this round.
        let neighbor_clusters: Vec<HashSet<usize>> = (0..n)
            .map(|i| neighbors[i].iter().map(|&j| uf.find(j)).collect())
            .collect();
        let mut changed = false;
        for &(i, j, base) in candidates {
            if merged.contains(&(i, j)) || uf.same(i, j) {
                continue;
            }
            let rel = cluster_jaccard(&neighbor_clusters[i], &neighbor_clusters[j]);
            let score = base + config.relational_weight * rel;
            if score >= config.accept {
                uf.union(i, j);
                merged.insert((i, j));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (uf, iters)
}

/// Baseline for comparison: accept purely on base score (no relational
/// evidence, single pass) — the "pairwise" column of experiment S5.
pub fn resolve_pairwise(n: usize, candidates: &[(usize, usize, f64)], accept: f64) -> UnionFind {
    let mut uf = UnionFind::new(n);
    for &(i, j, base) in candidates {
        if base >= accept {
            uf.union(i, j);
        }
    }
    uf
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scenario modeled on author disambiguation: two "A. Lovelace" mentions
    /// have an ambiguous base score, but their co-author mentions have
    /// already-mergeable names; collective resolution cascades.
    ///
    /// Records 0,1: "A. Lovelace" mentions (ambiguous pair, base 0.6).
    /// Records 2,3: "Grace Hopper" mentions (clear pair, base 1.2).
    /// Mention 0 co-occurs with 2; mention 1 with 3.
    type Scenario = (usize, Vec<(usize, usize, f64)>, Vec<Vec<usize>>);

    fn scenario() -> Scenario {
        let candidates = vec![(0, 1, 0.6), (2, 3, 1.2)];
        let neighbors = vec![vec![2], vec![3], vec![0], vec![1]];
        (4, candidates, neighbors)
    }

    #[test]
    fn pairwise_misses_ambiguous_pair() {
        let (n, cands, _) = scenario();
        let mut uf = resolve_pairwise(n, &cands, 1.0);
        assert!(!uf.same(0, 1), "base score 0.6 < 1.0");
        assert!(uf.same(2, 3));
    }

    #[test]
    fn collective_cascades() {
        let (n, cands, neigh) = scenario();
        let (mut uf, iters) = resolve_collective(n, &cands, &neigh, &CollectiveConfig::default());
        assert!(uf.same(2, 3), "clear pair merges in round 1");
        assert!(
            uf.same(0, 1),
            "after 2~3 merges co-author clusters overlap and the ambiguous pair follows"
        );
        assert!(iters >= 2, "needs at least two rounds, got {iters}");
    }

    #[test]
    fn no_relational_signal_no_cascade() {
        // Same ambiguous pair but with disjoint neighborhoods.
        let candidates = vec![(0, 1, 0.6), (2, 3, 1.2)];
        let neighbors = vec![vec![2], vec![], vec![0], vec![]];
        let (mut uf, _) =
            resolve_collective(4, &candidates, &neighbors, &CollectiveConfig::default());
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn fixpoint_terminates_early() {
        let candidates = vec![(0, 1, 2.0)];
        let neighbors = vec![vec![], vec![]];
        let (mut uf, iters) =
            resolve_collective(2, &candidates, &neighbors, &CollectiveConfig::default());
        assert!(uf.same(0, 1));
        assert!(iters <= 2);
    }

    #[test]
    fn empty_input() {
        let (uf, iters) = resolve_collective(0, &[], &[], &CollectiveConfig::default());
        assert!(uf.is_empty());
        assert!(iters <= 1);
    }
}
