//! Blocking: cheap candidate-pair generation.
//!
//! Comparing all `n²` record pairs is infeasible at web scale; blocking
//! groups records by cheap keys (zip, city, name tokens, phone) and only
//! pairs records sharing a key — the standard first stage of every EM system
//! the paper surveys.

use std::collections::{HashMap, HashSet};

use woc_lrec::Lrec;
use woc_textkit::tokenize::{normalize, tokenize_words};

use crate::shard::shard_map;

/// Generate blocking keys for one record.
pub fn blocking_keys(rec: &Lrec) -> Vec<String> {
    let mut keys = Vec::new();
    for e in rec.get("zip") {
        keys.push(format!("zip:{}", e.value.display_string()));
    }
    for e in rec.get("phone") {
        keys.push(format!("phone:{}", normalize(&e.value.display_string())));
    }
    for e in rec.get("city") {
        keys.push(format!("city:{}", normalize(&e.value.display_string())));
    }
    for name_attr in ["name", "title"] {
        for e in rec.get(name_attr) {
            for tok in tokenize_words(&e.value.display_string()) {
                if tok.len() >= 3 && !woc_textkit::tokenize::is_stopword(&tok) {
                    keys.push(format!("tok:{tok}"));
                }
            }
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

/// Candidate pairs `(i, j)` with `i < j` over `records`, from shared
/// blocking keys. Keys matching more than `max_block` records are skipped
/// (stopword-like keys would otherwise reintroduce the quadratic blowup).
pub fn candidate_pairs(records: &[&Lrec], max_block: usize) -> Vec<(usize, usize)> {
    candidate_pairs_sharded(records, max_block, 1)
}

/// [`candidate_pairs`] with both expensive halves sharded across `threads`
/// workers: key generation per record, then pair emission per key bucket.
/// The final sort + dedup makes the result identical at any thread count.
pub fn candidate_pairs_sharded(
    records: &[&Lrec],
    max_block: usize,
    threads: usize,
) -> Vec<(usize, usize)> {
    let keys_per_rec: Vec<Vec<String>> = shard_map(records, threads, |r| blocking_keys(r));
    let mut blocks: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, keys) in keys_per_rec.iter().enumerate() {
        for k in keys {
            blocks.entry(k.as_str()).or_default().push(i);
        }
    }
    let buckets: Vec<Vec<usize>> = blocks
        .into_values()
        .filter(|m| m.len() <= max_block)
        .collect();
    let per_bucket: Vec<Vec<(usize, usize)>> = shard_map(&buckets, threads, |members| {
        let mut pairs = Vec::with_capacity(members.len() * (members.len() - 1) / 2);
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                pairs.push((i.min(j), i.max(j)));
            }
        }
        pairs
    });
    let mut out: Vec<(usize, usize)> = per_bucket.into_iter().flatten().collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Blocking recall: fraction of true pairs (same gold label) surviving
/// blocking. The complementary metric to the pair-count reduction.
pub fn blocking_recall<T: Eq>(pairs: &[(usize, usize)], gold: &[T]) -> f64 {
    let mut truth_pairs = 0usize;
    let mut found = 0usize;
    let pair_set: HashSet<&(usize, usize)> = pairs.iter().collect();
    for i in 0..gold.len() {
        for j in (i + 1)..gold.len() {
            if gold[i] == gold[j] {
                truth_pairs += 1;
                if pair_set.contains(&(i, j)) {
                    found += 1;
                }
            }
        }
    }
    if truth_pairs == 0 {
        1.0
    } else {
        found as f64 / truth_pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{AttrValue, ConceptId, LrecId, Provenance, Tick};

    fn rec(id: u64, name: &str, zip: &str) -> Lrec {
        let mut r = Lrec::new(LrecId(id), ConceptId(0));
        let p = Provenance::ground_truth(Tick(0));
        r.add("name", AttrValue::Text(name.into()), p.clone());
        if !zip.is_empty() {
            r.add("zip", AttrValue::Zip(zip.into()), p);
        }
        r
    }

    #[test]
    fn keys_cover_attributes() {
        let r = rec(1, "Gochi Fusion Tapas", "95014");
        let keys = blocking_keys(&r);
        assert!(keys.contains(&"zip:95014".to_string()));
        assert!(keys.contains(&"tok:gochi".to_string()));
        assert!(keys.contains(&"tok:fusion".to_string()));
    }

    #[test]
    fn shared_key_pairs() {
        let a = rec(1, "Gochi Tapas", "95014");
        let b = rec(2, "Gochi Fusion", "99999");
        let c = rec(3, "Farolito", "60601");
        let records = vec![&a, &b, &c];
        let pairs = candidate_pairs(&records, 50);
        assert!(pairs.contains(&(0, 1)), "shared token gochi");
        assert!(!pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(1, 2)));
    }

    #[test]
    fn oversized_blocks_skipped() {
        let recs: Vec<Lrec> = (0..10).map(|i| rec(i, "Common Name", "")).collect();
        let refs: Vec<&Lrec> = recs.iter().collect();
        let pairs = candidate_pairs(&refs, 5);
        assert!(pairs.is_empty(), "block of 10 exceeds max 5");
        let pairs = candidate_pairs(&refs, 20);
        assert_eq!(pairs.len(), 45);
    }

    #[test]
    fn sharded_pairs_match_serial_at_any_thread_count() {
        let recs: Vec<Lrec> = (0..30)
            .map(|i| {
                rec(
                    i,
                    ["Gochi Tapas", "Blue Lotus", "Farolito Cafe"][i as usize % 3],
                    "",
                )
            })
            .collect();
        let refs: Vec<&Lrec> = recs.iter().collect();
        let serial = candidate_pairs(&refs, 50);
        assert!(!serial.is_empty());
        for threads in [2, 3, 8, 64] {
            assert_eq!(candidate_pairs_sharded(&refs, 50, threads), serial);
        }
    }

    #[test]
    fn recall_measurement() {
        let pairs = vec![(0, 1)];
        let gold = ["a", "a", "b", "a"];
        // truth pairs: (0,1),(0,3),(1,3) → found 1/3
        let r = blocking_recall(&pairs, &gold);
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(blocking_recall(&[], &["x", "y"]), 1.0);
    }
}
