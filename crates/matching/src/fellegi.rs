//! Fellegi–Sunter probabilistic record linkage (paper §6, reference \[31\]).
//!
//! Each attribute comparison is discretized into agree / disagree / missing.
//! Under the match hypothesis M an attribute agrees with probability `m`;
//! under non-match U with probability `u`. A pair's score is the
//! log-likelihood ratio `Σ log(P(γ|M)/P(γ|U))`; two thresholds split pairs
//! into Match / Possible / NonMatch, exactly as in the 1969 formulation.

use woc_lrec::Lrec;

use crate::simvec::attr_similarity;

/// Per-attribute m/u parameters.
#[derive(Debug, Clone)]
pub struct AttrParams {
    /// Attribute key.
    pub key: String,
    /// P(agree | match).
    pub m: f64,
    /// P(agree | non-match).
    pub u: f64,
    /// Similarity at or above which the comparison counts as agreement.
    pub agree_threshold: f64,
}

/// The Fellegi–Sunter model: attribute parameters plus decision thresholds.
#[derive(Debug, Clone)]
pub struct FellegiSunter {
    /// Attribute parameters.
    pub attrs: Vec<AttrParams>,
    /// Score at or above which a pair is declared a match.
    pub upper: f64,
    /// Score below which a pair is declared a non-match.
    pub lower: f64,
}

/// The three-way decision of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Confidently the same entity.
    Match,
    /// Undecided (would go to clerical review).
    Possible,
    /// Confidently different entities.
    NonMatch,
}

impl FellegiSunter {
    /// Reasonable hand-set parameters for the restaurant domain.
    pub fn restaurant_default() -> Self {
        Self {
            attrs: vec![
                AttrParams {
                    key: "name".into(),
                    m: 0.9,
                    u: 0.05,
                    agree_threshold: 0.75,
                },
                AttrParams {
                    key: "phone".into(),
                    m: 0.85,
                    u: 0.001,
                    agree_threshold: 0.99,
                },
                AttrParams {
                    key: "zip".into(),
                    m: 0.95,
                    u: 0.05,
                    agree_threshold: 0.99,
                },
                AttrParams {
                    key: "street".into(),
                    m: 0.85,
                    u: 0.02,
                    agree_threshold: 0.85,
                },
                AttrParams {
                    key: "city".into(),
                    m: 0.98,
                    u: 0.2,
                    agree_threshold: 0.95,
                },
            ],
            // Calibrated against experiment S5c: 4.0 admits name-similar
            // same-city pairs ("Olive House" / "Old House"); 5.0 sits on the
            // precision shoulder with negligible recall cost.
            upper: 5.0,
            lower: 0.0,
        }
    }

    /// Estimate `m`/`u` from labeled pairs (supervised variant): fraction of
    /// agreements among matching and non-matching pairs, Laplace-smoothed.
    /// Thresholds are left at the caller's values.
    pub fn estimate(
        attrs: &[&str],
        agree_threshold: f64,
        pairs: &[(&Lrec, &Lrec, bool)],
        upper: f64,
        lower: f64,
    ) -> Self {
        let mut params = Vec::new();
        for &key in attrs {
            let mut m_agree = 1.0f64;
            let mut m_total = 2.0f64;
            let mut u_agree = 1.0f64;
            let mut u_total = 2.0f64;
            for (a, b, is_match) in pairs {
                let Some(sim) = attr_similarity(a, b, key) else {
                    continue;
                };
                let agree = sim >= agree_threshold;
                if *is_match {
                    m_total += 1.0;
                    if agree {
                        m_agree += 1.0;
                    }
                } else {
                    u_total += 1.0;
                    if agree {
                        u_agree += 1.0;
                    }
                }
            }
            params.push(AttrParams {
                key: key.to_string(),
                m: m_agree / m_total,
                u: u_agree / u_total,
                agree_threshold,
            });
        }
        Self {
            attrs: params,
            upper,
            lower,
        }
    }

    /// Log-likelihood-ratio score of a pair. Missing comparisons contribute
    /// nothing (conditional independence given observability).
    pub fn score(&self, a: &Lrec, b: &Lrec) -> f64 {
        let mut s = 0.0;
        for p in &self.attrs {
            let Some(sim) = attr_similarity(a, b, &p.key) else {
                continue;
            };
            let (m, u) = (p.m.clamp(1e-6, 1.0 - 1e-6), p.u.clamp(1e-6, 1.0 - 1e-6));
            if sim >= p.agree_threshold {
                s += (m / u).ln();
            } else {
                s += ((1.0 - m) / (1.0 - u)).ln();
            }
        }
        s
    }

    /// Three-way decision for a pair.
    pub fn decide(&self, a: &Lrec, b: &Lrec) -> Decision {
        let s = self.score(a, b);
        if s >= self.upper {
            Decision::Match
        } else if s < self.lower {
            Decision::NonMatch
        } else {
            Decision::Possible
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{AttrValue, ConceptId, LrecId, Provenance, Tick};

    fn rec(id: u64, name: &str, phone: &str, zip: &str, city: &str) -> Lrec {
        let mut r = Lrec::new(LrecId(id), ConceptId(0));
        let p = Provenance::ground_truth(Tick(0));
        r.add("name", AttrValue::Text(name.into()), p.clone());
        if !phone.is_empty() {
            r.add("phone", AttrValue::Phone(phone.into()), p.clone());
        }
        if !zip.is_empty() {
            r.add("zip", AttrValue::Zip(zip.into()), p.clone());
        }
        r.add("city", AttrValue::Text(city.into()), p);
        r
    }

    #[test]
    fn same_entity_scores_high() {
        let fs = FellegiSunter::restaurant_default();
        let a = rec(1, "Gochi Fusion Tapas", "4085550134", "95014", "Cupertino");
        let b = rec(
            2,
            "GOCHI FUSION TAPAS - Cupertino",
            "4085550134",
            "95014",
            "Cupertino",
        );
        assert_eq!(
            fs.decide(&a, &b),
            Decision::Match,
            "score {}",
            fs.score(&a, &b)
        );
    }

    #[test]
    fn different_entities_score_low() {
        let fs = FellegiSunter::restaurant_default();
        let a = rec(1, "Gochi Fusion Tapas", "4085550134", "95014", "Cupertino");
        let b = rec(
            2,
            "Taqueria El Farolito",
            "4155559999",
            "94110",
            "San Francisco",
        );
        assert_eq!(fs.decide(&a, &b), Decision::NonMatch);
    }

    #[test]
    fn shared_city_alone_is_possible_at_best() {
        let fs = FellegiSunter::restaurant_default();
        let a = rec(1, "Blue Garden", "1112223333", "95014", "Cupertino");
        let b = rec(2, "Red Palace", "4445556666", "95014", "Cupertino");
        assert_ne!(fs.decide(&a, &b), Decision::Match);
    }

    #[test]
    fn estimation_learns_discriminative_attrs() {
        let a1 = rec(1, "Gochi", "4085550134", "95014", "Cupertino");
        let a2 = rec(2, "Gochi Tapas", "4085550134", "95014", "Cupertino");
        let b1 = rec(3, "Farolito", "4155550000", "94110", "San Francisco");
        let b2 = rec(4, "El Farolito", "4155550000", "94110", "San Francisco");
        let pairs: Vec<(&Lrec, &Lrec, bool)> = vec![
            (&a1, &a2, true),
            (&b1, &b2, true),
            (&a1, &b1, false),
            (&a1, &b2, false),
            (&a2, &b1, false),
            (&a2, &b2, false),
        ];
        let fs = FellegiSunter::estimate(&["name", "phone", "zip", "city"], 0.75, &pairs, 2.0, 0.0);
        let phone = fs.attrs.iter().find(|p| p.key == "phone").unwrap();
        assert!(phone.m > phone.u, "phone agreement is match evidence");
        assert!(fs.score(&a1, &a2) > fs.score(&a1, &b1));
    }

    #[test]
    fn missing_attrs_neutral() {
        let fs = FellegiSunter::restaurant_default();
        let a = rec(1, "Gochi", "", "", "Cupertino");
        let b = rec(2, "Gochi", "", "", "Cupertino");
        let c = rec(3, "Gochi", "4085550134", "95014", "Cupertino");
        let d = rec(4, "Gochi", "4085550134", "95014", "Cupertino");
        // Fewer observed agreements, lower score — but both positive.
        assert!(fs.score(&a, &b) > 0.0);
        assert!(fs.score(&c, &d) > fs.score(&a, &b));
    }
}
