//! Record↔text matching: "establishing that a piece of text is *about* a
//! record" (paper §4.2 "Matching", reference \[23\]).
//!
//! The main method is the paper's: a **domain-centric generative model** —
//! each candidate record induces a unigram language model from its attribute
//! values, interpolated with a domain background model; the record
//! maximizing the text's likelihood wins. A TF-IDF cosine baseline is
//! provided for experiment S5's comparison.

use woc_lrec::{Lrec, LrecId};
use woc_textkit::lm::UnigramLm;
use woc_textkit::tokenize::tokenize_words;
use woc_textkit::{CorpusStats, TfIdf};

/// The generative text-to-record matcher.
#[derive(Debug)]
pub struct GenerativeMatcher {
    ids: Vec<LrecId>,
    models: Vec<UnigramLm>,
    background: UnigramLm,
    /// Weight on the record model vs the background (the α of DESIGN.md §6).
    pub alpha: f64,
}

impl GenerativeMatcher {
    /// Build from candidate records. The background model pools all records'
    /// text plus any extra domain text supplied.
    pub fn build<'a>(
        records: impl IntoIterator<Item = &'a Lrec>,
        domain_text: &[&str],
        alpha: f64,
    ) -> Self {
        let mut ids = Vec::new();
        let mut models = Vec::new();
        let mut background = UnigramLm::standard();
        for rec in records {
            let toks = record_tokens(rec);
            let mut lm = UnigramLm::standard();
            lm.observe(&toks);
            background.observe(&toks);
            ids.push(rec.id());
            models.push(lm);
        }
        for t in domain_text {
            background.observe(&tokenize_words(t));
        }
        Self {
            ids,
            models,
            background,
            alpha,
        }
    }

    /// The most likely record for a text, with its log-likelihood margin
    /// over the runner-up (a confidence signal).
    pub fn match_text(&self, text: &str) -> Option<(LrecId, f64)> {
        let toks = tokenize_words(text);
        if toks.is_empty() || self.ids.is_empty() {
            return None;
        }
        let mut scored: Vec<(usize, f64)> = self
            .models
            .iter()
            .enumerate()
            .map(|(i, lm)| {
                (
                    i,
                    lm.mixture_log_likelihood(&self.background, self.alpha, &toks),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let (best, best_ll) = scored[0];
        let margin = if scored.len() > 1 {
            best_ll - scored[1].1
        } else {
            f64::INFINITY
        };
        Some((self.ids[best], margin))
    }

    /// Number of candidate records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// TF-IDF cosine baseline matcher.
#[derive(Debug)]
pub struct TfIdfMatcher {
    ids: Vec<LrecId>,
    stats: CorpusStats,
    vectors: Vec<woc_textkit::SparseVector>,
}

impl TfIdfMatcher {
    /// Build from candidate records.
    pub fn build<'a>(records: impl IntoIterator<Item = &'a Lrec>) -> Self {
        let mut ids = Vec::new();
        let mut token_lists = Vec::new();
        let mut stats = CorpusStats::new();
        for rec in records {
            let toks = record_tokens(rec);
            stats.add_document(&toks);
            ids.push(rec.id());
            token_lists.push(toks);
        }
        let vectors = {
            let v = TfIdf::new(&stats);
            token_lists.iter().map(|t| v.vectorize(t)).collect()
        };
        Self {
            ids,
            stats,
            vectors,
        }
    }

    /// Best cosine match for a text.
    pub fn match_text(&self, text: &str) -> Option<(LrecId, f64)> {
        let toks = tokenize_words(text);
        if toks.is_empty() || self.ids.is_empty() {
            return None;
        }
        let q = TfIdf::new(&self.stats).vectorize(&toks);
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, q.cosine(v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, s)| (self.ids[i], s))
    }
}

/// Tokenize a record's non-reference attribute values.
fn record_tokens(rec: &Lrec) -> Vec<String> {
    let mut toks = Vec::new();
    for (_, entries) in rec.iter() {
        for e in entries {
            if matches!(e.value, woc_lrec::AttrValue::Ref(_)) {
                continue;
            }
            toks.extend(tokenize_words(&e.value.display_string()));
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{AttrValue, ConceptId, Provenance, Tick};

    fn restaurant(id: u64, name: &str, city: &str, cuisine: &str, dishes: &[&str]) -> Lrec {
        let mut r = Lrec::new(LrecId(id), ConceptId(0));
        let p = Provenance::ground_truth(Tick(0));
        r.add("name", AttrValue::Text(name.into()), p.clone());
        r.add("city", AttrValue::Text(city.into()), p.clone());
        r.add("cuisine", AttrValue::Text(cuisine.into()), p.clone());
        for d in dishes {
            r.add("dish", AttrValue::Text((*d).into()), p.clone());
        }
        r
    }

    fn candidates() -> Vec<Lrec> {
        vec![
            restaurant(
                1,
                "Gochi Fusion Tapas",
                "Cupertino",
                "Japanese",
                &["Tonkotsu Ramen"],
            ),
            restaurant(
                2,
                "El Farolito",
                "San Francisco",
                "Mexican",
                &["Carnitas Burrito"],
            ),
            restaurant(
                3,
                "Blue Lotus",
                "Austin",
                "Thai",
                &["Pad Thai", "Green Curry"],
            ),
        ]
    }

    #[test]
    fn generative_matches_review_to_restaurant() {
        let recs = candidates();
        let m = GenerativeMatcher::build(recs.iter(), &[], 0.6);
        let (id, margin) = m
            .match_text("The Pad Thai was amazing, best Thai in Austin")
            .unwrap();
        assert_eq!(id, LrecId(3));
        assert!(margin > 0.0);
        let (id, _) = m.match_text("great tapas at gochi in cupertino").unwrap();
        assert_eq!(id, LrecId(1));
    }

    #[test]
    fn background_absorbs_generic_words() {
        let recs = candidates();
        let m = GenerativeMatcher::build(
            recs.iter(),
            &["the food was great service friendly would eat again"],
            0.6,
        );
        // A review that is all generic words has low margin.
        let (_, margin) = m.match_text("the food was great").unwrap();
        let (_, strong_margin) = m.match_text("Carnitas Burrito at El Farolito").unwrap();
        assert!(strong_margin > margin);
    }

    #[test]
    fn tfidf_baseline_works_on_distinctive_text() {
        let recs = candidates();
        let m = TfIdfMatcher::build(recs.iter());
        let (id, score) = m.match_text("Carnitas Burrito in San Francisco").unwrap();
        assert_eq!(id, LrecId(2));
        assert!(score > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let m = GenerativeMatcher::build(std::iter::empty(), &[], 0.5);
        assert!(m.is_empty());
        assert!(m.match_text("anything").is_none());
        let recs = candidates();
        let m = GenerativeMatcher::build(recs.iter(), &[], 0.5);
        assert!(m.match_text("").is_none());
    }
}
