//! Property tests for entity-matching invariants.

use proptest::prelude::*;
use woc_lrec::{AttrValue, ConceptId, Lrec, LrecId, Provenance, Tick};
use woc_matching::{
    attr_similarity, candidate_pairs, pairwise_prf, resolve_collective, resolve_pairwise,
    value_similarity, CollectiveConfig, FellegiSunter, UnionFind,
};

fn rec(id: u64, name: &str, zip: &str, phone: &str) -> Lrec {
    let mut r = Lrec::new(LrecId(id), ConceptId(0));
    let p = Provenance::ground_truth(Tick(0));
    if !name.is_empty() {
        r.add("name", AttrValue::Text(name.into()), p.clone());
    }
    if !zip.is_empty() {
        r.add("zip", AttrValue::Zip(zip.into()), p.clone());
    }
    if !phone.is_empty() {
        r.add("phone", AttrValue::Phone(phone.into()), p);
    }
    r
}

proptest! {
    /// Value similarity is bounded, reflexive and symmetric across the typed
    /// algebra.
    #[test]
    fn value_similarity_axioms(a in "[a-z0-9 ]{0,20}", b in "[a-z0-9 ]{0,20}") {
        let va = AttrValue::Text(a.clone());
        let vb = AttrValue::Text(b.clone());
        let s = value_similarity(&va, &vb);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s));
        prop_assert!((value_similarity(&va, &va) - 1.0).abs() < 1e-9);
        prop_assert!((value_similarity(&va, &vb) - value_similarity(&vb, &va)).abs() < 1e-9);
    }

    /// Fellegi–Sunter scores are symmetric, and missing attributes never
    /// change a score (loose records: absence is not evidence).
    #[test]
    fn fs_symmetry_and_missing_neutrality(
        n1 in "[a-z]{3,12}", n2 in "[a-z]{3,12}",
        z1 in "[0-9]{5}", z2 in "[0-9]{5}",
    ) {
        let fs = FellegiSunter::restaurant_default();
        let a = rec(1, &n1, &z1, "4085550134");
        let b = rec(2, &n2, &z2, "4085550199");
        prop_assert!((fs.score(&a, &b) - fs.score(&b, &a)).abs() < 1e-9);
        // Adding an attribute only one side has cannot change the score.
        let mut a2 = a.clone();
        a2.add("street", AttrValue::Text("1 Main St".into()), Provenance::ground_truth(Tick(0)));
        prop_assert!((fs.score(&a2, &b) - fs.score(&a, &b)).abs() < 1e-9);
    }

    /// attr_similarity is None iff either side lacks the attribute.
    #[test]
    fn attr_similarity_missing_contract(n in "[a-z]{1,10}") {
        let a = rec(1, &n, "", "");
        let b = rec(2, "", "95014", "");
        prop_assert!(attr_similarity(&a, &b, "name").is_none());
        prop_assert!(attr_similarity(&a, &b, "zip").is_none());
        prop_assert!(attr_similarity(&a, &b, "nope").is_none());
        let c = rec(3, &n, "", "");
        prop_assert!(attr_similarity(&a, &c, "name").is_some());
    }

    /// Blocking never pairs records sharing no key, and identical records
    /// always end up candidates.
    #[test]
    fn blocking_contract(names in prop::collection::vec("[a-f]{4,8}", 2..12)) {
        let recs: Vec<Lrec> = names
            .iter()
            .enumerate()
            .map(|(i, n)| rec(i as u64, n, "", ""))
            .collect();
        let refs: Vec<&Lrec> = recs.iter().collect();
        let pairs = candidate_pairs(&refs, 100);
        for &(i, j) in &pairs {
            prop_assert!(i < j && j < recs.len());
        }
        // Duplicate names must be candidates.
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                if names[i] == names[j] {
                    prop_assert!(pairs.contains(&(i, j)), "dup {} not paired", names[i]);
                }
            }
        }
    }

    /// Collective resolution with zero relational weight equals pairwise.
    #[test]
    fn collective_reduces_to_pairwise(
        scores in prop::collection::vec((0usize..8, 0usize..8, -2.0f64..6.0), 0..20)
    ) {
        let n = 8;
        let cands: Vec<(usize, usize, f64)> = scores
            .into_iter()
            .filter(|(i, j, _)| i != j)
            .map(|(i, j, s)| (i.min(j), i.max(j), s))
            .collect();
        let neighbors = vec![Vec::new(); n];
        let (mut coll, _) = resolve_collective(
            n,
            &cands,
            &neighbors,
            &CollectiveConfig {
                accept: 2.0,
                relational_weight: 0.0,
                max_iters: 5,
            },
        );
        let mut pair = resolve_pairwise(n, &cands, 2.0);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(coll.same(i, j), pair.same(i, j));
            }
        }
    }

    /// Pairwise P/R/F1 stays in range and perfect clustering has F1 = 1.
    #[test]
    fn prf_bounds(labels in prop::collection::vec(0u8..4, 1..16)) {
        let n = labels.len();
        let mut perfect = UnionFind::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if labels[i] == labels[j] {
                    perfect.union(i, j);
                }
            }
        }
        let prf = pairwise_prf(&mut perfect, &labels);
        prop_assert!((prf.f1() - 1.0).abs() < 1e-12 || prf.tp + prf.fn_ == 0);
        prop_assert!(prf.precision() >= 0.0 && prf.precision() <= 1.0);
        prop_assert!(prf.recall() >= 0.0 && prf.recall() <= 1.0);
    }

    /// Union-find: union is commutative/idempotent, `same` is an equivalence
    /// relation.
    #[test]
    fn union_find_equivalence(ops in prop::collection::vec((0usize..10, 0usize..10), 0..30)) {
        let mut uf = UnionFind::new(10);
        for &(a, b) in &ops {
            uf.union(a, b);
        }
        for x in 0..10 {
            prop_assert!(uf.same(x, x));
            for y in 0..10 {
                prop_assert_eq!(uf.same(x, y), uf.same(y, x));
                for z in 0..10 {
                    if uf.same(x, y) && uf.same(y, z) {
                        prop_assert!(uf.same(x, z));
                    }
                }
            }
        }
        // Clusters partition the universe.
        let clusters = uf.clusters();
        let total: usize = clusters.iter().map(Vec::len).sum();
        prop_assert_eq!(total, 10);
    }
}
