//! Macrobenches: end-to-end web-of-concepts construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use woc_core::{build, PipelineConfig};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn bench_core(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(79));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(79));

    // One instrumented build up front so the bench log shows where the
    // pipeline spends its time, not just the end-to-end numbers.
    let woc = build(&corpus, &PipelineConfig::default());
    println!("{}", woc.report);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("build_tiny_sequential", |b| {
        b.iter(|| {
            build(
                black_box(&corpus),
                &PipelineConfig {
                    threads: 1,
                    ..PipelineConfig::default()
                },
            )
        })
    });
    group.bench_function("build_tiny_parallel", |b| {
        b.iter(|| {
            build(
                black_box(&corpus),
                &PipelineConfig {
                    threads: 0,
                    ..PipelineConfig::default()
                },
            )
        })
    });
    group.finish();

    c.bench_function("webgen/generate_tiny_corpus", |b| {
        b.iter(|| generate_corpus(black_box(&world), &CorpusConfig::tiny(79)))
    });
    c.bench_function("webgen/generate_tiny_world", |b| {
        b.iter(|| World::generate(WorldConfig::tiny(79)))
    });
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
