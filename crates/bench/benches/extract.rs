//! Microbenches: list extraction, wrapper application, sequence labeling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use woc_extract::lists::{extract_lists, ConceptProfile};
use woc_extract::seqlabel::{example_from_segments, Labeler};
use woc_webgen::sites::academic::render_citation;
use woc_webgen::{generate_corpus, CorpusConfig, PageKind, World, WorldConfig};

fn bench_extract(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(78));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(78));
    let profiles = ConceptProfile::standard();
    let menu_page = corpus
        .pages()
        .iter()
        .find(|p| p.truth.kind == PageKind::RestaurantMenu)
        .unwrap();
    let biz_page = corpus
        .pages()
        .iter()
        .find(|p| p.truth.kind == PageKind::AggregatorBiz)
        .unwrap();

    c.bench_function("lists/extract_menu_page", |b| {
        b.iter(|| extract_lists(black_box(menu_page), &profiles))
    });
    c.bench_function("pipeline/extract_page_biz", |b| {
        b.iter(|| woc_core::extract_page(black_box(biz_page), &profiles))
    });

    // Sequence labeler decode throughput.
    let examples: Vec<_> = world
        .publications
        .iter()
        .map(|&p| {
            let cit = render_citation(&world, p, 0);
            example_from_segments(&cit.text, &cit.segments)
        })
        .collect();
    let model = Labeler::train(&examples, 5);
    let cit = render_citation(&world, world.publications[0], 0);
    c.bench_function("seqlabel/train_12_citations", |b| {
        b.iter(|| Labeler::train(black_box(&examples), 5))
    });
    c.bench_function("seqlabel/segment_citation", |b| {
        b.iter(|| model.segment(black_box(&cit.text)))
    });
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
