//! Microbenches: tokenization, string metrics, recognizers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PAGE_TEXT: &str = "Gochi Fusion Tapas, 19980 Homestead Rd, Cupertino, CA 95014. \
    Call (408) 555-0134 or 408-555-0199. Open 11:30am - 9pm daily. Lunch special $12.95. \
    The best Japanese tapas in Cupertino since January 15, 2006. Visit http://gochi.example.com/menu \
    or email info@gochi.example.com for reservations and weekly specials.";

fn bench_textkit(c: &mut Criterion) {
    c.bench_function("tokenize/page_text", |b| {
        b.iter(|| woc_textkit::tokenize(black_box(PAGE_TEXT)))
    });
    c.bench_function("normalize/page_text", |b| {
        b.iter(|| woc_textkit::normalize(black_box(PAGE_TEXT)))
    });
    c.bench_function("metrics/levenshtein_20", |b| {
        b.iter(|| {
            woc_textkit::levenshtein(
                black_box("Gochi Fusion Tapas"),
                black_box("Gochi Fusion Tapas SJ"),
            )
        })
    });
    c.bench_function("metrics/jaro_winkler_20", |b| {
        b.iter(|| {
            woc_textkit::jaro_winkler(
                black_box("gochi fusion tapas"),
                black_box("gochi fusion tapas cupertino"),
            )
        })
    });
    c.bench_function("metrics/name_similarity", |b| {
        b.iter(|| {
            woc_textkit::metrics::name_similarity(
                black_box("Gochi Fusion Tapas"),
                black_box("GOCHI FUSION TAPAS - Cupertino"),
            )
        })
    });
    c.bench_function("recognize/recognize_all", |b| {
        b.iter(|| woc_textkit::recognize_all(black_box(PAGE_TEXT)))
    });
}

criterion_group!(benches, bench_textkit);
criterion_main!(benches);
