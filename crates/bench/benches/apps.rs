//! Microbenches: application-layer query latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use woc_apps::{augmented_search, concept_search, TransitionEngine};
use woc_core::{build, PipelineConfig};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn bench_apps(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(80));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(80));
    let woc = build(&corpus, &PipelineConfig::default());

    c.bench_function("apps/augmented_search_entity", |b| {
        b.iter(|| augmented_search(&woc, black_box("gochi cupertino"), 10))
    });
    c.bench_function("apps/augmented_search_generic", |b| {
        b.iter(|| augmented_search(&woc, black_box("best dinner reviews"), 10))
    });
    c.bench_function("apps/concept_search_scoped", |b| {
        b.iter(|| concept_search(&woc, black_box("is:restaurant italian san jose"), 10))
    });
    let engine = TransitionEngine::new(&woc, None);
    let gochi = concept_search(&woc, "gochi", 1)[0].id;
    c.bench_function("apps/alternatives", |b| {
        b.iter(|| engine.recommendations(black_box(gochi), 5))
    });
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
