//! Microbenches: similarity scoring, blocking, resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use woc_lrec::{AttrValue, ConceptId, Lrec, LrecId, Provenance, Tick};
use woc_matching::{candidate_pairs, FellegiSunter};

fn records(n: u64) -> Vec<Lrec> {
    (0..n)
        .map(|i| {
            let mut r = Lrec::new(LrecId(i), ConceptId(0));
            let p = Provenance::ground_truth(Tick(0));
            r.add(
                "name",
                AttrValue::Text(format!("Restaurant Number {}", i / 2)),
                p.clone(),
            );
            r.add(
                "zip",
                AttrValue::Zip(format!("95{:03}", i % 100)),
                p.clone(),
            );
            r.add(
                "phone",
                AttrValue::Phone(format!("408555{:04}", i / 2)),
                p.clone(),
            );
            r.add("city", AttrValue::Text("San Jose".into()), p);
            r
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let recs = records(200);
    let refs: Vec<&Lrec> = recs.iter().collect();
    let fs = FellegiSunter::restaurant_default();

    c.bench_function("matching/fs_score_pair", |b| {
        b.iter(|| fs.score(black_box(&recs[0]), black_box(&recs[1])))
    });
    c.bench_function("matching/blocking_200_records", |b| {
        b.iter(|| candidate_pairs(black_box(&refs), 200))
    });
    let pairs = candidate_pairs(&refs, 200);
    c.bench_function("matching/score_all_candidates", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(i, j)| fs.score(&recs[i], &recs[j]))
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
