//! Microbenches: inverted-index build and query throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn bench_index(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(77));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(77));
    let texts: Vec<String> = corpus.pages().iter().map(|p| p.text()).collect();

    c.bench_function("index/build_corpus", |b| {
        b.iter(|| {
            let mut ix = woc_index::InvertedIndex::new();
            for t in &texts {
                ix.add_text(black_box(t));
            }
            ix
        })
    });

    let mut ix = woc_index::InvertedIndex::new();
    for t in &texts {
        ix.add_text(t);
    }
    c.bench_function("index/search_top10", |b| {
        b.iter(|| ix.search(black_box("gochi cupertino menu reviews"), 10))
    });
    c.bench_function("index/boolean_and", |b| {
        b.iter(|| ix.search_and(black_box("menu specials")))
    });

    // Postings encode/decode round-trip.
    let mut pl = woc_index::PostingList::new();
    for i in 0..10_000u32 {
        pl.add_tf(woc_index::DocId(i * 3), 1 + i % 5);
    }
    c.bench_function("postings/encode_10k", |b| b.iter(|| pl.encode()));
    let bytes = pl.encode();
    c.bench_function("postings/decode_10k", |b| {
        b.iter(|| woc_index::PostingList::decode(black_box(bytes.clone())).unwrap())
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
