//! Microbenches: log simulation and analysis throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use woc_usage::{analyze, simulate, UsageConfig, AGGREGATOR_HOST};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn bench_usage(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(81));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(81));
    let config = UsageConfig::small(81);
    let log = simulate(&world, &corpus, &config);

    let mut group = c.benchmark_group("usage");
    group.sample_size(20);
    group.bench_function("simulate_2400_events", |b| {
        b.iter(|| simulate(black_box(&world), &corpus, &config))
    });
    group.bench_function("analyze_click_categories", |b| {
        b.iter(|| analyze::click_categories(black_box(&log), AGGREGATOR_HOST))
    });
    group.bench_function("analyze_co_clicks", |b| {
        b.iter(|| analyze::co_clicks(black_box(&log), AGGREGATOR_HOST))
    });
    group.finish();
}

criterion_group!(benches, bench_usage);
criterion_main!(benches);
