//! # woc-bench — the benchmark/experiment harness
//!
//! Shared fixtures and table-printing helpers for the experiment binaries
//! (`src/bin/*.rs`, one per experiment id of DESIGN.md §4) and the criterion
//! microbenches (`benches/*.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use woc_core::{PipelineConfig, WebOfConcepts};
use woc_webgen::{generate_corpus, CorpusConfig, WebCorpus, World, WorldConfig};

/// The standard experiment fixture: a medium world, its corpus, and the
/// constructed web of concepts.
pub struct Fixture {
    /// Ground truth.
    pub world: World,
    /// The synthetic web.
    pub corpus: WebCorpus,
    /// The constructed web of concepts.
    pub woc: WebOfConcepts,
}

impl std::fmt::Debug for Fixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fixture")
            .field("pages", &self.corpus.len())
            .field("live_records", &self.woc.store.live_count())
            .finish()
    }
}

/// The pipeline configuration the experiment binaries use: defaults, with
/// the worker count overridable via the `WOC_THREADS` env var (0 = all
/// cores). Results are identical at any thread count — only timings move.
pub fn bench_pipeline_config() -> PipelineConfig {
    let threads = std::env::var("WOC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    PipelineConfig {
        threads,
        ..PipelineConfig::default()
    }
}

/// Build the standard experiment fixture (deterministic).
pub fn standard_fixture() -> Fixture {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let woc = woc_core::build(&corpus, &bench_pipeline_config());
    Fixture { world, corpus, woc }
}

/// A small fixture for fast microbenches.
pub fn small_fixture(seed: u64) -> Fixture {
    let world = World::generate(WorldConfig::tiny(seed));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(seed));
    let woc = woc_core::build(&corpus, &bench_pipeline_config());
    Fixture { world, corpus, woc }
}

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("═══ {title} ═══");
}

/// Print a paper-vs-measured comparison row.
pub fn compare_row(metric: &str, paper: f64, measured: f64) {
    let delta = measured - paper;
    println!("  {metric:<42} paper {paper:>7.3}   measured {measured:>7.3}   Δ {delta:>+7.3}");
}

/// Print a plain metric row.
pub fn metric_row(metric: &str, value: impl std::fmt::Display) {
    println!("  {metric:<42} {value}");
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// The `p`-th percentile (0–100) of an unsorted sample set, nearest-rank.
/// Returns 0 for an empty set — benches print it rather than crash when a
/// phase produced no samples.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A full recrawl as a stream event sequence: every page of the new crawl
/// as an update (unchanged ones dedup away at the fingerprint stage) plus
/// a removal for every URL that vanished.
pub fn recrawl_events(old: &WebCorpus, new: &WebCorpus) -> Vec<woc_stream::PageEvent> {
    let mut events: Vec<woc_stream::PageEvent> = new
        .pages()
        .iter()
        .cloned()
        .map(woc_stream::PageEvent::Updated)
        .collect();
    for p in old.pages() {
        if new.get(&p.url).is_none() {
            events.push(woc_stream::PageEvent::Removed(p.url.clone()));
        }
    }
    events
}

/// True when `at` (an offset from a streaming run's start) falls inside
/// any publish window. `publishes` pairs each publish's completion offset
/// with how long the maintain-and-publish pass took — the window is the
/// pass itself, so answers landing in it were served *while* an epoch was
/// being built and swapped.
pub fn during_publish(
    at: std::time::Duration,
    publishes: &[(std::time::Duration, std::time::Duration)],
) -> bool {
    publishes
        .iter()
        .any(|&(done, took)| at >= done.saturating_sub(took) && at <= done)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fixture_builds() {
        let f = small_fixture(9);
        assert!(f.corpus.len() > 20);
        assert!(f.woc.store.live_count() > 0);
    }
}
