//! Throughput under fault injection: sweep the `everything(rate)` fault
//! profile from 0% to 30%, crawl the truth corpus through the resilient
//! crawler, build a partial web over whatever was delivered, and measure
//! build throughput and serving QPS on the degraded web. After every
//! timed build the web is audited **outside the timing window** — a
//! degraded epoch still has to be a clean epoch.
//!
//! Exits non-zero if any audit fails, any site's coverage arithmetic
//! leaks pages, or the zero-fault crawl fails to deliver everything.
//!
//! Run: `cargo run -p woc-bench --bin chaos_bench --release [-- --quick]`

use std::time::Instant;

use woc_audit::{audit, AuditConfig};
use woc_bench::{header, metric_row, pct};
use woc_chaos::{build_resilient, crawl, FaultProfile, RetryPolicy};
use woc_core::PipelineConfig;
use woc_serve::{ConceptServer, Query, ServeConfig};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

/// Fault rates swept (shared by the table in EXPERIMENTS.md).
const RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];

/// Fixed fault seed: one reproducible sweep, not a distribution study.
const FAULT_SEED: u64 = 11;

fn query_batch(n: usize) -> Vec<Query> {
    const TERMS: [&str; 8] = [
        "pizza",
        "thai noodles",
        "sushi",
        "burger",
        "vegan brunch",
        "steakhouse",
        "ramen",
        "tacos",
    ];
    (0..n)
        .map(|i| match i % 3 {
            0 => Query::Search(TERMS[i % TERMS.len()].to_string(), 5),
            1 => Query::ConceptBox(TERMS[i % TERMS.len()].to_string()),
            _ => Query::Recommend(TERMS[i % TERMS.len()].to_string(), 3),
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (world_cfg, corpus_cfg, batch) = if quick {
        (WorldConfig::tiny(500), CorpusConfig::tiny(50), 300)
    } else {
        (WorldConfig::default(), CorpusConfig::default(), 3_000)
    };
    let config = PipelineConfig::default();
    let policy = RetryPolicy::default();

    let world = World::generate(world_cfg);
    let truth = generate_corpus(&world, &corpus_cfg);
    let queries = query_batch(batch);

    header("Build + serve throughput vs fault rate (profile: everything)");
    println!(
        "  {:>6} {:>9} {:>7} {:>7} {:>8} {:>10} {:>11} {:>9} {:>9}",
        "fault", "delivered", "quar", "failed", "retries", "virt s", "build p/s", "QPS", "audit"
    );

    let mut failed = false;
    for &rate in &RATES {
        let profile = FaultProfile::everything(rate);
        let t = Instant::now();
        let outcome = crawl(&truth, &profile, &policy, FAULT_SEED);
        let woc = build_resilient(&outcome, &config);
        let build_secs = t.elapsed().as_secs_f64();
        let pages_per_sec = outcome.corpus.len() as f64 / build_secs.max(1e-9);

        // Verification — outside the timing window.
        for site in &outcome.sites {
            let c = &site.coverage;
            if c.expected != c.delivered + c.quarantined + c.failed {
                eprintln!("FAIL: site {} leaks pages at rate {rate}", c.site);
                failed = true;
            }
        }
        if rate == 0.0 && !outcome.complete() {
            eprintln!("FAIL: zero-fault crawl quarantined pages");
            failed = true;
        }
        let integrity = audit(&woc, &AuditConfig::default());
        let audit_ok = integrity.passed();
        if !audit_ok {
            eprintln!(
                "FAIL: audit violations at rate {rate}:\n{}",
                integrity.render()
            );
            failed = true;
        }

        let server = ConceptServer::new(woc, ServeConfig::default());
        let t = Instant::now();
        let answers = server.run_batch(&queries, 4);
        let serve_secs = t.elapsed().as_secs_f64();
        let qps = answers.len() as f64 / serve_secs.max(1e-9);

        println!(
            "  {:>6} {:>9} {:>7} {:>7} {:>8} {:>10.1} {:>11.0} {:>9.0} {:>9}",
            pct(rate),
            outcome.corpus.len(),
            outcome.poisoned(),
            outcome.undelivered(),
            outcome.retries,
            outcome.virtual_micros as f64 / 1e6,
            pages_per_sec,
            qps,
            if audit_ok { "pass" } else { "FAIL" },
        );
    }

    header("Verdict");
    metric_row(
        "coverage + audit",
        if failed {
            "FAILED"
        } else {
            "clean at every fault rate"
        },
    );
    if failed {
        std::process::exit(1);
    }
}
