//! Experiment F1: regenerate Figure 1 — the augmented search-results page
//! for the query `gochi cupertino`, with the concept box (map/address,
//! hours, reviews, homepage pointer) and record-aware document ranking.
//! Run: `cargo run -p woc-bench --bin figure1 --release`

use woc_apps::augmented_search;
use woc_bench::{header, metric_row, standard_fixture};

fn main() {
    let f = standard_fixture();
    println!("{}", f.woc.report);
    metric_row("pages crawled", f.corpus.len());
    metric_row("canonical records", f.woc.store.live_count());

    header("Figure 1 — search results for `gochi cupertino`");
    let results = augmented_search(&f.woc, "gochi cupertino", 8);
    match &results.concept_box {
        Some(b) => {
            println!("{}", b.render());
            println!("  trigger confidence: {:.2}", b.confidence);
        }
        None => println!("  !! concept box did not trigger"),
    }
    println!();
    println!("  Ranked results:");
    for (i, r) in results.results.iter().enumerate() {
        println!(
            "  {:>2}. [{:>5.2}] {}  {:?}",
            i + 1,
            r.score,
            r.url,
            r.features
        );
    }

    header("Control — generic query `best food in town` (must not trigger)");
    let control = augmented_search(&f.woc, "best food in town", 3);
    metric_row(
        "concept box",
        if control.concept_box.is_some() {
            "TRIGGERED (unexpected)"
        } else {
            "not triggered (correct)"
        },
    );

    header("Second entity query — another restaurant");
    let restaurants = f.woc.records_of(f.woc.concepts.restaurant);
    if let Some(other) = restaurants.iter().find(|r| {
        r.best_string("name")
            .is_some_and(|n| !n.to_lowercase().contains("gochi"))
    }) {
        let name = other.best_string("name").unwrap();
        let city = other.best_string("city").unwrap_or_default();
        let q = format!("{} {}", name.to_lowercase(), city.to_lowercase());
        let res = augmented_search(&f.woc, &q, 3);
        metric_row("query", &q);
        match &res.concept_box {
            Some(b) => println!("{}", b.render()),
            None => println!("  (no box)"),
        }
    }
}
