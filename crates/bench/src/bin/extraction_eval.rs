//! Experiments S1–S4: the extraction-stack evaluation grid.
//!
//! * S1 — wrapper induction: F1 vs #labeled pages; brittle vs robust rules
//!   under template drift;
//! * S2 — domain-centric list extraction: unsupervised P/R on unseen sites;
//! * S3 — relational classification: global classifier vs graph-refined;
//! * S4 — bootstrapping: records recovered vs rounds, seed-size sweep.
//!
//! Run: `cargo run -p woc-bench --bin extraction_eval --release`

use woc_bench::{header, metric_row, pct};
use woc_extract::bootstrap::{bootstrap, seeds_from_names, BootstrapConfig};
use woc_extract::eval::{score_field, Prf};
use woc_extract::lists::{extract_lists, ConceptProfile};
use woc_extract::relational::{accuracy, refine_site, NaiveBayes};
use woc_extract::SiteWrapper;
use woc_webgen::sites::city::city_guide_pages;
use woc_webgen::{
    drift_site, generate_corpus, CorpusConfig, DriftConfig, Page, PageKind, World, WorldConfig,
};

fn truth_label(page: &Page, attr: &str) -> Option<String> {
    page.truth.records.first()?.field(attr).map(str::to_string)
}

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    metric_row("world restaurants", world.restaurants.len());
    metric_row("corpus pages", corpus.len());

    // ================= S1: wrapper induction ==========================
    header("S1  Wrapper induction — F1 vs labeled examples (biz pages)");
    let biz: Vec<&Page> = corpus
        .pages()
        .iter()
        .filter(|p| p.truth.kind == PageKind::AggregatorBiz && p.site == "localreviews.example.com")
        .collect();
    let attrs = ["hours", "cuisine"];
    println!(
        "  {:<10} {:>12} {:>12}",
        "k labeled", "brittle F1", "robust F1"
    );
    for k in [1usize, 2, 3, 5, 8] {
        // Sample labeled pages spread across the site (annotators label a
        // representative handful, not the first k URLs).
        let train: Vec<&Page> = (0..k).map(|i| biz[i * biz.len() / k]).collect();
        let w = SiteWrapper::learn(&train, &attrs, truth_label);
        let mut brittle = Prf::default();
        let mut robust = Prf::default();
        for p in biz.iter().skip(k) {
            let truth: Vec<_> = p.truth.records.iter().take(1).cloned().collect();
            for attr in attrs {
                brittle.merge(score_field(&[w.extract_brittle(p)], &truth, attr));
                robust.merge(score_field(&[w.extract_robust(p)], &truth, attr));
            }
        }
        println!("  {:<10} {:>12.3} {:>12.3}", k, brittle.f1(), robust.f1());
    }

    header("S1b Robustness under template drift (trained with k=3)");
    let train: Vec<&Page> = (0..3).map(|i| biz[i * biz.len() / 3]).collect();
    let w = SiteWrapper::learn(&train, &attrs, truth_label);
    let owned: Vec<Page> = biz.iter().map(|&p| p.clone()).collect();
    println!("  {:<12} {:>12} {:>12}", "drift", "brittle F1", "robust F1");
    for (label, cfg) in [
        ("none", None),
        ("mild", Some(DriftConfig::mild())),
        ("heavy", Some(DriftConfig::heavy())),
    ] {
        let pages: Vec<Page> = match cfg {
            None => owned.clone(),
            Some(c) => drift_site(&owned, &c, 17).0,
        };
        let mut brittle = Prf::default();
        let mut robust = Prf::default();
        for p in pages.iter().skip(3) {
            let truth: Vec<_> = p.truth.records.iter().take(1).cloned().collect();
            for attr in attrs {
                brittle.merge(score_field(&[w.extract_brittle(p)], &truth, attr));
                robust.merge(score_field(&[w.extract_robust(p)], &truth, attr));
            }
        }
        println!(
            "  {:<12} {:>12.3} {:>12.3}",
            label,
            brittle.f1(),
            robust.f1()
        );
    }
    println!("  (expected shape: brittle collapses under drift, robust survives)");

    // ================= S2: list extraction ==============================
    header("S2  Domain-centric list extraction — unsupervised, site-independent");
    let profiles = ConceptProfile::standard();
    for (label, kind, concept, field) in [
        (
            "menu items on homepages",
            PageKind::RestaurantMenu,
            "menu_item",
            "name",
        ),
        (
            "restaurants on category pages",
            PageKind::AggregatorCategory,
            "restaurant",
            "name",
        ),
        (
            "publications on venue pages",
            PageKind::VenuePage,
            "publication",
            "venue",
        ),
        (
            "events on listing pages",
            PageKind::EventList,
            "event",
            "name",
        ),
    ] {
        let mut prf = Prf::default();
        let mut pages_n = 0;
        for p in corpus.pages().iter().filter(|p| p.truth.kind == kind) {
            pages_n += 1;
            let recs: Vec<_> = extract_lists(p, &profiles)
                .into_iter()
                .filter(|r| r.concept.as_deref() == Some(concept))
                .collect();
            prf.merge(score_field(&recs, &p.truth.records, field));
        }
        println!(
            "  {:<36} pages {:>4}  P {:>5.3}  R {:>5.3}  F1 {:>5.3}",
            label,
            pages_n,
            prf.precision(),
            prf.recall(),
            prf.f1()
        );
    }

    // ================= S2b: sequence labeling + transfer ==================
    header("S2b Sequence labeling — in-format, cross-format, and transfer (§7.2)");
    use woc_extract::seqlabel::{example_from_segments, Labeler};
    use woc_webgen::sites::academic::render_citation;
    let cite = |fmt: usize| -> Vec<woc_extract::seqlabel::Example> {
        world
            .publications
            .iter()
            .map(|&p| {
                let c = render_citation(&world, p, fmt);
                example_from_segments(&c.text, &c.segments)
            })
            .collect()
    };
    let src = cite(0);
    let tgt = cite(2);
    let model = Labeler::train(&src[..30], 8);
    metric_row(
        "in-format token accuracy",
        pct(model.token_accuracy(&src[30..])),
    );
    metric_row(
        "cross-format (no adaptation)",
        pct(model.token_accuracy(&tgt[30..])),
    );
    println!("  adaptation curve (k target-format examples):");
    println!("  {:>4} {:>14} {:>14}", "k", "adapted", "cold start");
    for k in [1usize, 2, 4, 8] {
        let adapted = model.adapt(&tgt[..k], 4);
        let cold = Labeler::train(&tgt[..k], 4);
        println!(
            "  {:>4} {:>14} {:>14}",
            k,
            pct(adapted.token_accuracy(&tgt[30..])),
            pct(cold.token_accuracy(&tgt[30..]))
        );
    }
    println!("  (expected shape: cross-format accuracy drops — the sensitivity the");
    println!("   paper warns about — and warm-started adaptation recovers it with");
    println!("   fewer target labels than cold start)");

    // ================= S3: relational classification ====================
    header("S3  Relational classification — events pages on city sites");
    let mut rng = rand::SeedableRng::seed_from_u64(99);
    let city_pages = city_guide_pages(&world, &mut rng);
    let mut sites: Vec<&str> = city_pages.iter().map(|p| p.site.as_str()).collect();
    sites.sort();
    sites.dedup();
    // A *small* labeled training set (two sites) — the realistic regime in
    // which the global classifier is noisy and relational refinement pays.
    let (train_sites, test_sites) = sites.split_at(2.min(sites.len() / 2));
    metric_row(
        "train sites / test sites",
        format!("{} / {}", train_sites.len(), test_sites.len()),
    );
    // The paper's premise is an *inaccurate* global classifier ("it tends to
    // be noisy given the vastly different content in the large collection of
    // sites"); sweep annotation-noise levels to show where relational
    // refinement pays and where it degrades gracefully.
    println!("  {:>12} {:>10} {:>10}", "label noise", "global", "refined");
    for noise in [0.0, 0.1, 0.2, 0.25, 0.3] {
        let mut nb = NaiveBayes::new();
        let mut noise_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7);
        for p in city_pages
            .iter()
            .filter(|p| train_sites.contains(&p.site.as_str()))
        {
            let mut label = p.truth.kind == PageKind::CityEvents;
            if noise > 0.0 && rand::Rng::random_bool(&mut noise_rng, noise) {
                label = !label;
            }
            nb.observe(&p.text(), label);
        }
        let mut global_pred = Vec::new();
        let mut refined_pred = Vec::new();
        let mut gold = Vec::new();
        for site in test_sites {
            let pages: Vec<&Page> = city_pages.iter().filter(|p| p.site == *site).collect();
            if pages.is_empty() {
                continue;
            }
            let labels = refine_site(&pages, &nb, 0.35, 10);
            for (i, p) in pages.iter().enumerate() {
                global_pred.push(nb.predict(&p.text()));
                refined_pred.push(labels.label(i));
                gold.push(p.truth.kind == PageKind::CityEvents);
            }
        }
        println!(
            "  {:>12} {:>10} {:>10}",
            format!("{:.0}%", noise * 100.0),
            pct(accuracy(&global_pred, &gold)),
            pct(accuracy(&refined_pred, &gold))
        );
    }
    println!("  (expected shape: refinement recovers a noisy global classifier;");
    println!("   at extreme noise the graph can no longer rescue it)");

    // ================= S4: bootstrapping =================================
    header("S4  Aggregator mining — bootstrap growth from seed menu items");
    let menu_pages: Vec<&Page> = corpus
        .pages()
        .iter()
        .filter(|p| p.truth.kind == PageKind::RestaurantMenu)
        .collect();
    let total_truth: usize = menu_pages.iter().map(|p| p.truth.records.len()).sum();
    metric_row("menu pages", menu_pages.len());
    metric_row("true menu items", total_truth);
    println!(
        "  {:<10} {:>10} {:>10} {:>12}",
        "seeds", "rounds", "harvested", "growth curve"
    );
    for n_seeds in [1usize, 3, 5, 10] {
        let seed_names: Vec<String> = menu_pages[0]
            .truth
            .records
            .iter()
            .chain(menu_pages[1].truth.records.iter())
            .take(n_seeds)
            .filter_map(|t| t.field("name").map(str::to_string))
            .collect();
        let refs: Vec<&str> = seed_names.iter().map(String::as_str).collect();
        let seeds = seeds_from_names("menu_item", &refs);
        let result = bootstrap(
            &menu_pages,
            "menu_item",
            &seeds,
            &BootstrapConfig::default(),
        );
        println!(
            "  {:<10} {:>10} {:>10} {:>12?}",
            n_seeds,
            result.rounds,
            result.harvested().len(),
            result.growth_curve()
        );
    }
    println!("  (expected shape: growth saturates within a few rounds; more seeds");
    println!("   reach the fixpoint faster, not further)");
}
