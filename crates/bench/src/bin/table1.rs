//! Experiment T1: exercise every cell of Table 1 ("Technologies for
//! Interconnecting Different Page Types") end to end and print one section
//! per cell with live outputs.
//! Run: `cargo run -p woc-bench --bin table1 --release`

use woc_apps::{RelatedPages, TransitionEngine};
use woc_bench::{header, metric_row, standard_fixture};
use woc_webgen::PageKind;

fn main() {
    let f = standard_fixture();

    // Co-engagement harvested from simulated user logs through the
    // logs→concepts bridge (§5.3), plus a few synthetic shopping sessions.
    let log = woc_usage::simulate(&f.world, &f.corpus, &woc_usage::UsageConfig::small(7));
    let mut co = woc_usage::co_engagement_from_logs(&f.woc, &log);
    let products = f.woc.records_of(f.woc.concepts.product);
    for pair in products.windows(2) {
        co.observe_session(&[pair[0].id(), pair[1].id()]);
    }
    metric_row("co-engaged record pairs from logs", co.len());
    let engine = TransitionEngine::new(&f.woc, Some(&co));

    println!("Table 1: p ⇓ q ⇒   Result | Concept | Article");

    // ---------------- Row 1: Result → … ----------------
    header("Result → Result : Assistance");
    for link in engine.assistance("italian restaurants", 4) {
        metric_row("suggestion", &link.destination);
    }

    header("Result → Concept : Concept search");
    for r in engine.concept_links("italian san jose", 4) {
        metric_row(&format!("{} ({})", r.name, r.concept), &r.summary);
    }

    header("Result → Article : Vanilla search");
    for link in engine.vanilla_search("best salsa reviews", 4) {
        metric_row("document", &link.destination);
    }

    // ---------------- Row 2: Concept → … ----------------
    let gochi = engine.concept_links("gochi cupertino", 1)[0].id;
    header("Concept → Result : Search within the concept");
    for link in engine.search_within(gochi, "menu reviews", 4) {
        metric_row("associated doc", &link.destination);
    }

    header("Concept → Concept : Recommendation (Alternatives)");
    let (alts, _) = engine.recommendations(gochi, 4);
    for a in &alts {
        let name = f
            .woc
            .store
            .latest(a.id)
            .and_then(|r| r.best_string("name"))
            .unwrap_or_default();
        metric_row(&name, &a.reason);
    }

    header("Concept → Concept : Recommendation (Augmentations, shopping)");
    // A camera with augments links, per §2.3's Canon G10 / NB-7L example.
    let camera = products.iter().find(|p| !p.get("augments").is_empty());
    if let Some(cam) = camera {
        let (_, augs) = engine.recommendations(cam.id(), 4);
        metric_row(
            "anchor product",
            cam.best_string("name").unwrap_or_default(),
        );
        for a in &augs {
            let name = f
                .woc
                .store
                .latest(a.id)
                .and_then(|r| r.best_string("name"))
                .unwrap_or_default();
            metric_row(&format!("  + {name}"), &a.reason);
        }
    } else {
        println!("  (no product with augmentation links in this corpus)");
    }

    header("Concept → Article : Semantic linking");
    // Find a record actually mentioned in an article.
    let mentioned = f
        .corpus
        .pages()
        .iter()
        .filter(|p| p.truth.kind == PageKind::Article)
        .find_map(|p| {
            woc_apps::records_in(&f.woc, &p.url)
                .first()
                .copied()
                .map(|r| (r, p.url.clone()))
        });
    let (rec, article_url) = mentioned.expect("corpus has article mentions");
    let rec_name = f
        .woc
        .store
        .latest(rec)
        .and_then(|r| r.best_string("name"))
        .unwrap_or_default();
    metric_row("record", &rec_name);
    for link in engine.semantic_links_from_concept(rec, 4) {
        metric_row("article", &link.destination);
    }

    // ---------------- Row 3: Article → … ----------------
    header("Article → Concept : Semantic linking (reverse pivot)");
    metric_row("article", &article_url);
    for link in engine.semantic_links_from_article(&article_url, 4) {
        metric_row("record", &link.text);
    }

    header("Article → Article : Related pages");
    let articles: Vec<&woc_webgen::Page> = f
        .corpus
        .pages()
        .iter()
        .filter(|p| p.truth.kind == PageKind::Article)
        .collect();
    let urls: Vec<String> = articles.iter().map(|p| p.url.clone()).collect();
    let texts: Vec<String> = articles.iter().map(|p| p.text()).collect();
    let rp = RelatedPages::build(&f.woc, &urls, &texts);
    for link in engine.related_pages(&rp, &article_url, 4) {
        metric_row("related", &link.destination);
    }

    println!();
    println!("All nine Table 1 cells exercised on one web of concepts.");
}
