//! Scatter-gather serving at cluster width: measure the throughput curve
//! as shards are added (N = 1 → 2 → 4) and the failover-latency profile
//! of every shard-fault shape at full width.
//!
//! Latency here is **virtual**: every query's cost is the max over shards
//! of `base + postings_walked × 2µs` plus injected fault latency, summed
//! on the cluster's deterministic clock (see `woc_cluster::router`). That
//! makes both tables exact arithmetic — rerunning this binary reproduces
//! them byte-for-byte, so EXPERIMENTS.md numbers never drift with host
//! load. QPS is `ops / Σ virtual latency`: posting work partitions across
//! shards, so the curve must rise monotonically with N.
//!
//! Exits non-zero if the scaling curve is not monotone, any complete
//! answer differs from the single-node reference, or a post-fault audit
//! (W013 included) fails.
//!
//! Run: `cargo run -p woc-bench --bin cluster_bench --release [-- --quick]`

use woc_apps::{concept_search_parsed, interpret_query, ConceptResult};
use woc_audit::AuditConfig;
use woc_bench::{bench_pipeline_config, header, metric_row};
use woc_chaos::ShardFaultProfile;
use woc_cluster::{ClusterConfig, ClusterServer, Coverage};
use woc_core::{build, WebOfConcepts};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

/// Shard widths swept for the throughput curve.
const WIDTHS: [usize; 3] = [1, 2, 4];

/// Fixed fault seed: one reproducible sweep, not a distribution study.
const FAULT_SEED: u64 = 11;

/// Per-shard routing knobs used by every table: a tight dispatch cost so
/// the posting-walk work term (which partitions across shards) dominates
/// the latency model, making the scaling curve visible even on the
/// `--quick` fixture.
fn bench_cluster_config(shards: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        base_latency_micros: 10,
        ..ClusterConfig::default()
    }
}

/// Deterministic workload over real record names from the built web (so
/// every query walks actual posting lists), with a skewed pick pattern
/// and alternating depths.
fn workload(woc: &WebOfConcepts, n: usize, pool_cap: usize) -> Vec<(String, usize)> {
    let mut pool: Vec<String> = woc
        .store
        .live_ids()
        .into_iter()
        .filter_map(|id| woc.store.latest(id)?.best_string("name"))
        .take(pool_cap)
        .collect();
    pool.sort();
    pool.dedup();
    (0..n)
        .map(|i| {
            let k = if i % 3 == 0 { 10 } else { 5 };
            (pool[(i * 7919) % pool.len()].clone(), k)
        })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunStats {
    qps: f64,
    p50: u64,
    p95: u64,
    complete: usize,
    partial: usize,
    hedges: u64,
    mismatches: usize,
}

/// Drive the workload once and fold the answer stream into a stat row.
/// Complete answers are checked byte-for-byte against the single-node
/// reference (partial answers are covered by the chaos suite's prefix
/// contract, which needs the partition map — out of scope for a bench).
fn drive(
    cluster: &ClusterServer,
    woc: &WebOfConcepts,
    queries: &[(String, usize)],
    reference: &[Vec<ConceptResult>],
) -> RunStats {
    let hedges_before = cluster.stats().hedges;
    let mut latencies = Vec::with_capacity(queries.len());
    let mut complete = 0usize;
    let mut partial = 0usize;
    let mut mismatches = 0usize;
    for (i, (q, k)) in queries.iter().enumerate() {
        // Closed-loop inter-arrival gap: moves the virtual clock across
        // fault windows so flapping profiles sample many availability
        // states instead of freezing the state of window zero.
        cluster.advance_clock(1_000);
        let ans = cluster.search(q, *k);
        latencies.push(ans.virtual_micros);
        match ans.coverage {
            Coverage::Complete => {
                complete += 1;
                if format!("{:?}", ans.results) != format!("{:?}", reference[i]) {
                    eprintln!("FAIL: complete answer for {q:?} diverged from single-node");
                    mismatches += 1;
                }
            }
            Coverage::Partial { .. } => partial += 1,
        }
    }
    let _ = woc;
    let total_micros: u64 = latencies.iter().sum();
    latencies.sort_unstable();
    RunStats {
        qps: queries.len() as f64 / (total_micros as f64 / 1e6).max(1e-9),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        complete,
        partial,
        hedges: cluster.stats().hedges - hedges_before,
        mismatches,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (world_cfg, corpus_cfg, ops) = if quick {
        (WorldConfig::tiny(700), CorpusConfig::tiny(70), 240)
    } else {
        (WorldConfig::default(), CorpusConfig::default(), 1_200)
    };
    let world = World::generate(world_cfg);
    let corpus = generate_corpus(&world, &corpus_cfg);
    let woc = build(&corpus, &bench_pipeline_config());
    let queries = workload(&woc, ops, if quick { 64 } else { 512 });
    let reference: Vec<Vec<ConceptResult>> = queries
        .iter()
        .map(|(q, k)| concept_search_parsed(&woc, &interpret_query(q).normalized(), *k))
        .collect();

    let mut failed = false;

    // ── Throughput curve: healthy cluster, growing width ────────────────
    header("Scatter-gather throughput vs shard count (healthy, virtual time)");
    println!(
        "  {:>3} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "N", "QPS", "p50 µs", "p95 µs", "complete", "audit"
    );
    let mut curve = Vec::new();
    for &shards in &WIDTHS {
        let cluster = ClusterServer::new(&corpus, woc.clone(), bench_cluster_config(shards));
        let stats = drive(&cluster, &woc, &queries, &reference);
        let audit_ok = cluster.audit(&AuditConfig::default()).passed();
        println!(
            "  {:>3} {:>10.0} {:>10} {:>10} {:>9} {:>7}",
            shards,
            stats.qps,
            stats.p50,
            stats.p95,
            stats.complete,
            if audit_ok { "pass" } else { "FAIL" }
        );
        failed |= !audit_ok || stats.mismatches > 0 || stats.partial > 0;
        curve.push(stats.qps);
    }
    for w in curve.windows(2) {
        if w[1] <= w[0] {
            eprintln!("FAIL: QPS curve not monotone: {curve:?}");
            failed = true;
        }
    }

    // ── Failover latency: every fault shape at full width ───────────────
    header("Failover latency by fault profile (N = 4, R = 2, virtual time)");
    println!(
        "  {:>14} {:>10} {:>10} {:>10} {:>9} {:>8} {:>7} {:>7}",
        "profile", "QPS", "p50 µs", "p95 µs", "complete", "partial", "hedges", "audit"
    );
    let profiles = [
        ShardFaultProfile::healthy(),
        ShardFaultProfile::replica_down(1, 0),
        ShardFaultProfile::shard_blackout(2),
        ShardFaultProfile::flappy(0.3),
        ShardFaultProfile::slow(0.5, 10_000),
    ];
    for profile in profiles {
        let cluster = ClusterServer::new(&corpus, woc.clone(), bench_cluster_config(4));
        let name = profile.name;
        let quiet = profile.is_quiet();
        cluster.set_faults(profile, FAULT_SEED);
        let stats = drive(&cluster, &woc, &queries, &reference);
        let audit_ok = cluster.audit(&AuditConfig::default()).passed();
        println!(
            "  {:>14} {:>10.0} {:>10} {:>10} {:>9} {:>8} {:>7} {:>7}",
            name,
            stats.qps,
            stats.p50,
            stats.p95,
            stats.complete,
            stats.partial,
            stats.hedges,
            if audit_ok { "pass" } else { "FAIL" }
        );
        failed |= !audit_ok || stats.mismatches > 0;
        if quiet && stats.partial > 0 {
            eprintln!("FAIL: healthy profile degraded {} answers", stats.partial);
            failed = true;
        }
        if name == "shard-blackout" && stats.complete > 0 {
            eprintln!("FAIL: blackout must degrade every answer");
            failed = true;
        }
    }

    header("Verdict");
    metric_row(
        "scaling + failover",
        if failed {
            "FAILED"
        } else {
            "monotone curve, byte-identical quorum answers, audits clean"
        },
    );
    if failed {
        std::process::exit(1);
    }
}
