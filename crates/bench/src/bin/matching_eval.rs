//! Experiment S5: entity-matching evaluation.
//!
//! * restaurant record matching across sources: pairwise Fellegi–Sunter vs
//!   collective resolution (pairwise cluster P/R/F1 against ground truth);
//! * blocking efficiency (pair reduction vs recall);
//! * review→record matching: generative language model vs TF-IDF baseline.
//!
//! Run: `cargo run -p woc-bench --bin matching_eval --release`

use woc_bench::{header, metric_row, pct};
use woc_lrec::{Lrec, LrecId};
use woc_matching::{
    blocking_recall, candidate_pairs, pairwise_prf, resolve_collective, resolve_pairwise,
    CollectiveConfig, FellegiSunter, GenerativeMatcher, TfIdfMatcher,
};
use woc_webgen::sites::RestaurantView;
use woc_webgen::{generate_corpus, CorpusConfig, PageKind, World, WorldConfig};

/// Build the "records as extracted per source" set: one restaurant record
/// per (biz page | homepage | category row), labeled with the true world
/// entity. Fields are randomly dropped to model sources with partial
/// information — the regime where matching is actually hard.
fn mention_records(world: &World, corpus: &woc_webgen::WebCorpus) -> (Vec<Lrec>, Vec<LrecId>) {
    use rand::Rng;
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(4242);
    let mut records = Vec::new();
    let mut gold = Vec::new();
    let mut next_id = 0u64;
    for page in corpus.pages() {
        if !matches!(
            page.truth.kind,
            PageKind::AggregatorBiz | PageKind::RestaurantHome | PageKind::AggregatorCategory
        ) {
            continue;
        }
        for tr in &page.truth.records {
            if tr.concept != world.concepts.restaurant {
                continue;
            }
            let mut rec = Lrec::new(LrecId(next_id), world.concepts.restaurant);
            next_id += 1;
            for (k, v) in &tr.fields {
                // Partial sources: many real listings omit the phone or zip.
                let drop = match k.as_str() {
                    "phone" => rng.random_bool(0.35),
                    "zip" => rng.random_bool(0.35),
                    "street" => rng.random_bool(0.2),
                    _ => false,
                };
                if drop {
                    continue;
                }
                rec.add(
                    k,
                    woc_core::pipeline::type_value(k, v),
                    woc_lrec::Provenance::extracted(&page.url, "bench", 0.9, woc_lrec::Tick(0)),
                );
            }
            records.push(rec);
            gold.push(tr.entity);
        }
    }
    (records, gold)
}

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let (records, gold) = mention_records(&world, &corpus);
    metric_row("restaurant mention records", records.len());
    metric_row(
        "true entities",
        gold.iter().collect::<std::collections::HashSet<_>>().len(),
    );

    // ---------------- blocking -------------------------------------------
    header("S5a Blocking — pair reduction vs recall");
    let refs: Vec<&Lrec> = records.iter().collect();
    let n = refs.len();
    let all_pairs = n * (n - 1) / 2;
    let pairs = candidate_pairs(&refs, 200);
    metric_row("all pairs", all_pairs);
    metric_row("blocked candidate pairs", pairs.len());
    metric_row(
        "reduction",
        pct(1.0 - pairs.len() as f64 / all_pairs.max(1) as f64),
    );
    metric_row("blocking recall", pct(blocking_recall(&pairs, &gold)));

    // ---------------- pairwise vs collective ------------------------------
    header("S5b Resolution — pairwise Fellegi–Sunter vs collective");
    // The collective setting (paper §6, [12, 29]): restaurant mentions from
    // different aggregators are linked to the *reviews rendered on the same
    // page*. Syndicated reviews appear verbatim on several aggregators, so
    // review mentions match by text with near certainty; once they merge,
    // the restaurants they hang off become relationally linked — "matching
    // decisions trigger new matches".
    #[derive(PartialEq)]
    enum Kind {
        Restaurant,
        Review,
    }
    let mut m_records: Vec<Lrec> = Vec::new();
    let mut m_gold: Vec<LrecId> = Vec::new();
    let mut m_kind: Vec<Kind> = Vec::new();
    let mut m_neighbors: Vec<Vec<usize>> = Vec::new();
    {
        use rand::Rng;
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(99);
        let mut next_id = 0u64;
        for page in corpus.pages() {
            if page.truth.kind != PageKind::AggregatorBiz {
                continue;
            }
            let mut page_restaurant: Option<usize> = None;
            let mut page_reviews: Vec<usize> = Vec::new();
            for tr in &page.truth.records {
                if tr.concept == world.concepts.restaurant {
                    let mut rec = Lrec::new(LrecId(next_id), world.concepts.restaurant);
                    next_id += 1;
                    for (k, v) in &tr.fields {
                        // Aggressive field loss: matching on attributes alone
                        // is genuinely ambiguous here.
                        let drop = match k.as_str() {
                            "phone" | "zip" => rng.random_bool(0.75),
                            "street" => rng.random_bool(0.6),
                            _ => false,
                        };
                        if drop {
                            continue;
                        }
                        rec.add(
                            k,
                            woc_core::pipeline::type_value(k, v),
                            woc_lrec::Provenance::extracted(
                                &page.url,
                                "bench",
                                0.9,
                                woc_lrec::Tick(0),
                            ),
                        );
                    }
                    page_restaurant = Some(m_records.len());
                    m_records.push(rec);
                    m_gold.push(tr.entity);
                    m_kind.push(Kind::Restaurant);
                    m_neighbors.push(Vec::new());
                } else if tr.concept == world.concepts.review {
                    let mut rec = Lrec::new(LrecId(next_id), world.concepts.review);
                    next_id += 1;
                    if let Some(t) = tr.field("text") {
                        rec.add(
                            "text",
                            woc_lrec::AttrValue::Text(t.to_string()),
                            woc_lrec::Provenance::extracted(
                                &page.url,
                                "bench",
                                0.9,
                                woc_lrec::Tick(0),
                            ),
                        );
                    }
                    page_reviews.push(m_records.len());
                    m_records.push(rec);
                    m_gold.push(tr.entity);
                    m_kind.push(Kind::Review);
                    m_neighbors.push(Vec::new());
                }
            }
            if let Some(r) = page_restaurant {
                for &v in &page_reviews {
                    m_neighbors[r].push(v);
                    m_neighbors[v].push(r);
                }
            }
        }
    }
    metric_row(
        "restaurant mentions",
        m_kind.iter().filter(|k| **k == Kind::Restaurant).count(),
    );
    metric_row(
        "review mentions",
        m_kind.iter().filter(|k| **k == Kind::Review).count(),
    );

    // Candidate pairs: attribute blocking for restaurants; reviews pair by
    // exact normalized text (their natural blocking key).
    let m_refs: Vec<&Lrec> = m_records.iter().collect();
    let m_pairs = candidate_pairs(&m_refs, 400);
    let fs_r = FellegiSunter::restaurant_default();
    let mut m_scored: Vec<(usize, usize, f64)> = m_pairs
        .iter()
        .filter_map(|&(i, j)| match (&m_kind[i], &m_kind[j]) {
            (Kind::Restaurant, Kind::Restaurant) => {
                Some((i, j, fs_r.score(&m_records[i], &m_records[j])))
            }
            _ => None,
        })
        .collect();
    {
        let mut by_text: std::collections::HashMap<String, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, rec) in m_records.iter().enumerate() {
            if m_kind[i] == Kind::Review {
                if let Some(t) = rec.best_string("text") {
                    by_text
                        .entry(woc_textkit::tokenize::normalize(&t))
                        .or_default()
                        .push(i);
                }
            }
        }
        for group in by_text.values() {
            for (a, &i) in group.iter().enumerate() {
                for &j in &group[a + 1..] {
                    m_scored.push((i.min(j), i.max(j), 8.0));
                }
            }
        }
    }
    let accept = 5.0;
    let restaurant_prf = |uf: &mut woc_matching::UnionFind| {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for i in 0..m_records.len() {
            if m_kind[i] != Kind::Restaurant {
                continue;
            }
            for j in (i + 1)..m_records.len() {
                if m_kind[j] != Kind::Restaurant {
                    continue;
                }
                match (uf.same(i, j), m_gold[i] == m_gold[j]) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    (false, false) => {}
                }
            }
        }
        woc_matching::MatchPrf { tp, fp, fn_ }
    };
    let mut uf_pair = resolve_pairwise(m_records.len(), &m_scored, accept);
    println!("  pairwise   {}", restaurant_prf(&mut uf_pair));
    let (mut uf_coll, iters) = resolve_collective(
        m_records.len(),
        &m_scored,
        &m_neighbors,
        &CollectiveConfig {
            accept,
            relational_weight: 3.5,
            max_iters: 6,
        },
    );
    println!(
        "  collective {}   (iterations: {iters})",
        restaurant_prf(&mut uf_coll)
    );
    println!("  (restaurant-pair P/R/F1; expected shape: shared syndicated reviews");
    println!("   let collective resolution recover recall pairwise matching loses");
    println!("   when attributes are sparse)");

    // ---------------- threshold sweep --------------------------------------
    header("S5c Pairwise threshold sweep (precision/recall trade-off)");
    let fs = FellegiSunter::restaurant_default();
    let scored: Vec<(usize, usize, f64)> = pairs
        .iter()
        .map(|&(i, j)| (i, j, fs.score(&records[i], &records[j])))
        .collect();
    println!("  {:>9} {:>8} {:>8} {:>8}", "threshold", "P", "R", "F1");
    for t in [2.0, 3.0, 4.0, 5.0, 6.0, 8.0] {
        let mut uf = resolve_pairwise(n, &scored, t);
        let prf = pairwise_prf(&mut uf, &gold);
        println!(
            "  {:>9.1} {:>8.3} {:>8.3} {:>8.3}",
            t,
            prf.precision(),
            prf.recall(),
            prf.f1()
        );
    }

    // ---------------- review → record matching -----------------------------
    header("S5d Review→record matching — generative LM vs TF-IDF");
    let views = RestaurantView::all(&world);
    // Candidates: ground-truth restaurant records (name/city/cuisine/menu).
    let candidates: Vec<Lrec> = views
        .iter()
        .map(|v| {
            let mut r = Lrec::new(v.id, world.concepts.restaurant);
            let p = woc_lrec::Provenance::ground_truth(woc_lrec::Tick(0));
            r.add("name", woc_lrec::AttrValue::Text(v.name.clone()), p.clone());
            r.add("city", woc_lrec::AttrValue::Text(v.city.clone()), p.clone());
            r.add(
                "cuisine",
                woc_lrec::AttrValue::Text(v.cuisine.clone()),
                p.clone(),
            );
            for (dish, _) in &v.menu {
                r.add("dish", woc_lrec::AttrValue::Text(dish.clone()), p.clone());
            }
            r
        })
        .collect();
    let generative = GenerativeMatcher::build(candidates.iter(), &[], 0.6);
    let tfidf = TfIdfMatcher::build(candidates.iter());
    // Two conditions: full review text, and name-masked text (snippets and
    // blog mentions often talk about "this place" without naming it — the
    // matcher must then lean on dishes/city/cuisine).
    println!(
        "  {:<22} {:>12} {:>12}",
        "condition", "generative", "tf-idf"
    );
    for masked in [false, true] {
        let mut gen_ok = 0usize;
        let mut tf_ok = 0usize;
        let mut total = 0usize;
        for (ri, reviews) in world.reviews.iter().enumerate() {
            let name = world.attr(world.restaurants[ri], "name");
            let name_toks: std::collections::HashSet<String> =
                woc_textkit::tokenize::tokenize_words(&name)
                    .into_iter()
                    .collect();
            for &rv in reviews {
                let mut text = world.attr(rv, "text");
                if masked {
                    text = woc_textkit::tokenize::tokenize_words(&text)
                        .into_iter()
                        .filter(|t| !name_toks.contains(t))
                        .collect::<Vec<_>>()
                        .join(" ");
                }
                total += 1;
                if let Some((id, _)) = generative.match_text(&text) {
                    if id == world.restaurants[ri] {
                        gen_ok += 1;
                    }
                }
                if let Some((id, _)) = tfidf.match_text(&text) {
                    if id == world.restaurants[ri] {
                        tf_ok += 1;
                    }
                }
            }
        }
        println!(
            "  {:<22} {:>12} {:>12}",
            if masked {
                "name-masked text"
            } else {
                "full text"
            },
            pct(gen_ok as f64 / total.max(1) as f64),
            pct(tf_ok as f64 / total.max(1) as f64)
        );
    }
    println!("  (expected shape: the domain-centric generative model degrades");
    println!("   more gracefully when the name is absent)");
}
