//! Experiment S6: maintenance under change (paper §7.3).
//!
//! * incremental re-extraction cost vs full rebuild across world-churn rates;
//! * correctness: churned values land on existing records;
//! * lineage-guided error attribution.
//!
//! Run: `cargo run -p woc-bench --bin maintenance_eval --release`

use woc_bench::{header, metric_row, pct};
use woc_core::{build, recrawl, PipelineConfig};
use woc_lrec::Tick;
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

fn main() {
    header("S6a Incremental maintenance vs full rebuild across churn rates");
    println!(
        "  {:>6} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "churn", "events", "reprocessed", "cost ratio", "updated", "created"
    );
    for &rate in &[0.0, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let cfg = CorpusConfig::default();
        let mut world = World::generate(WorldConfig::default());
        let corpus_v1 = generate_corpus(&world, &cfg);
        let mut woc = build(&corpus_v1, &PipelineConfig::default());
        let events = churn_restaurants(&mut world, rate, Tick(10), 1234);
        let corpus_v2 = generate_corpus(&world, &cfg);
        let report = recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(100));
        println!(
            "  {:>6} {:>8} {:>12} {:>12} {:>10} {:>10}",
            pct(rate),
            events.len(),
            format!("{}/{}", report.pages_reprocessed, report.pages_total),
            pct(report.cost_ratio()),
            report.records_updated,
            report.records_created
        );
    }
    println!("  (expected shape: cost scales with churn, staying far below 100%");
    println!("   at realistic rates — a full rebuild always re-extracts every page)");

    header("S6b Churned values land on existing records (no duplication)");
    let cfg = CorpusConfig::default();
    let mut world = World::generate(WorldConfig::default());
    let corpus_v1 = generate_corpus(&world, &cfg);
    let mut woc = build(&corpus_v1, &PipelineConfig::default());
    println!("{}", woc.report);
    let live_before = woc.store.live_count();
    let events = churn_restaurants(&mut world, 0.3, Tick(10), 77);
    let corpus_v2 = generate_corpus(&world, &cfg);
    let report = recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(100));
    let phone_changes: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            woc_webgen::ChurnEvent::PhoneChanged(id, p) => Some((*id, p.clone())),
            _ => None,
        })
        .collect();
    let mut landed = 0usize;
    for (world_id, new_phone) in &phone_changes {
        let name = world.attr(*world_id, "name");
        let found = woc
            .store
            .by_concept(woc.concepts.restaurant)
            .into_iter()
            .filter_map(|id| woc.store.latest(id))
            .any(|r| {
                r.best_string("name").unwrap_or_default().contains(&name)
                    && r.get("phone").iter().any(|e| match &e.value {
                        woc_lrec::AttrValue::Phone(p) => p == new_phone,
                        _ => false,
                    })
            });
        if found {
            landed += 1;
        }
    }
    metric_row("phone changes in world", phone_changes.len());
    metric_row("changes reflected in records", landed);
    metric_row("records updated in place", report.records_updated);
    metric_row(
        "live records before → after",
        format!("{live_before} → {}", woc.store.live_count()),
    );

    header("S6b2 Corpus quality report after maintenance (§7.3 dashboard)");
    let q = woc_core::assess(&woc);
    print!("{}", q.render());
    woc_bench::metric_row("overall quality", format!("{:.3}", q.overall_quality()));

    header("S6c Lineage-guided error attribution");
    // Flag records that violate their schema as "bad" and ask lineage which
    // operator is the common upstream suspect.
    let mut bad = Vec::new();
    for id in woc.store.live_ids() {
        let rec = woc.store.latest(id).unwrap();
        if let Some(schema) = woc.registry.schema(rec.concept()) {
            if !schema.check(rec).is_empty() {
                bad.push(id);
            }
        }
    }
    metric_row("records with schema violations", bad.len());
    for (op, count) in woc.lineage.attribute_error(&bad).into_iter().take(5) {
        metric_row(&format!("  suspect operator {op}"), count);
    }

    header("S6d Time travel — record versions across the recrawl");
    if let Some((world_id, _)) = phone_changes.first() {
        let name = world.attr(*world_id, "name");
        let rec = woc
            .store
            .by_concept(woc.concepts.restaurant)
            .into_iter()
            .filter_map(|id| woc.store.latest(id))
            .find(|r| r.best_string("name").unwrap_or_default().contains(&name));
        if let Some(rec) = rec {
            let id = rec.id();
            metric_row("record", &name);
            metric_row("versions", woc.store.num_versions(id));
            let old = woc
                .store
                .as_of(id, Tick(5))
                .and_then(|r| r.best_string("phone"));
            let new = woc.store.latest(id).and_then(|r| r.best_string("phone"));
            metric_row("phone as of t5", old.unwrap_or_else(|| "-".into()));
            metric_row("phone now", new.unwrap_or_else(|| "-".into()));
        }
    }
}
