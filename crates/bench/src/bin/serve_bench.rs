//! Serving-layer load benchmark: closed-loop QPS and tail latency for the
//! `woc-serve` front end, at 1 vs N worker threads, cache off vs on — plus
//! a cache-survival phase that churns ~1% of the world through a real
//! incremental maintenance cycle and measures how much of the cache the
//! segmented delta publish keeps warm, and a read-while-write phase that
//! keeps serving while a `woc-stream` engine publishes micro-epochs
//! underneath and splits read percentiles into during- vs between-publish.
//! Run: `cargo run -p woc-bench --bin serve_bench --release`
//!
//! `--quick` serves a tiny fixture with a smaller workload — the CI smoke
//! profile. The workload is deterministic (seeded skew over real record
//! names), so hit rates, retention counts and result counts are
//! reproducible run to run; only timings move with the machine. In
//! `--quick` mode the survival phase *asserts* that the majority of search
//! entries outlive the maintenance cycle — the CI gate that the cache
//! survives maintenance at all (before segmented publishing it dropped to
//! zero).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use woc_bench::{
    bench_pipeline_config, during_publish, header, metric_row, pct, percentile, recrawl_events,
};
use woc_incr::IncrEngine;
use woc_lrec::Tick;
use woc_serve::{ConceptServer, Endpoint, Query, ServeConfig};
use woc_stream::{PageEvent, StreamConfig, StreamEngine};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

/// Deterministic closed-loop workload: mixed endpoints over a skewed query
/// pool (a hot set takes ~3/4 of traffic, the tail the rest), so the cache
/// has something to earn.
fn build_workload(pool: &[String], ops: usize) -> Vec<Query> {
    let hot = (pool.len() / 16).max(1);
    (0..ops)
        .map(|i| {
            let name = if i % 4 != 3 {
                &pool[(i * 31) % hot]
            } else {
                &pool[(i * 7919) % pool.len()]
            };
            match i % 5 {
                0 | 1 => Query::Search(name.clone(), 5),
                2 => Query::Search(format!("{name} is:restaurant"), 8),
                3 => Query::ConceptBox(name.clone()),
                _ => Query::Recommend(name.clone(), 3),
            }
        })
        .collect()
}

/// Total cache hits and lookups across every endpoint since the last reset.
fn cache_totals(server: &ConceptServer) -> (u64, u64) {
    let (mut hits, mut consulted) = (0u64, 0u64);
    for e in Endpoint::ALL {
        let s = server.metrics().endpoint(e).summary();
        hits += s.cache_hits;
        consulted += s.cache_hits + s.cache_misses;
    }
    (hits, consulted)
}

/// One benchmark phase: drain the workload through the server and report
/// QPS, hit rate and latency percentiles from the server's own metrics.
fn run_phase(server: &ConceptServer, workload: &[Query], threads: usize, cache: bool) -> f64 {
    server.set_cache_enabled(cache);
    server.metrics().reset();
    if cache {
        // Warm pass: fill the cache so the measured pass shows steady state.
        server.run_batch(workload, threads);
        server.metrics().reset();
    }
    let t0 = Instant::now();
    let answers = server.run_batch(workload, threads);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(answers.len(), workload.len());
    let qps = workload.len() as f64 / secs;

    let (hits, consulted) = cache_totals(server);
    let hit_rate = if consulted == 0 {
        0.0
    } else {
        hits as f64 / consulted as f64
    };
    let s = server.metrics().endpoint(Endpoint::Search).summary();
    println!(
        "  threads {threads}  cache {}   {qps:>9.0} qps   hit-rate {:>6}   \
         search p50 {:>5}µs  p95 {:>5}µs  p99 {:>5}µs",
        if cache { "on " } else { "off" },
        pct(hit_rate),
        s.p50_micros,
        s.p95_micros,
        s.p99_micros,
    );
    qps
}

/// The cache-survival phase: measure steady-state cached QPS, churn ~1% of
/// the world, run a real maintenance cycle published through the segmented
/// delta path, and measure (a) how many distinct search entries survived
/// and (b) cached QPS straight after the publish, with no re-warm.
fn run_survival_phase(
    server: &ConceptServer,
    engine: &mut IncrEngine,
    world: &mut World,
    corpus_cfg: &CorpusConfig,
    workload: &[Query],
    quick: bool,
) {
    header("Cache survival across maintenance (~1% churn)");
    server.set_cache_enabled(true);

    // Steady state before maintenance: warm, then measure.
    server.run_batch(workload, 1);
    server.metrics().reset();
    let t0 = Instant::now();
    server.run_batch(workload, 1);
    let pre_qps = workload.len() as f64 / t0.elapsed().as_secs_f64();
    let entries_before = server.cache_len();

    // Churn ~1% of the world and run the maintenance cycle.
    let mut seed = 1u64;
    while churn_restaurants(world, 0.01, Tick(10), seed).is_empty() {
        seed += 1;
    }
    let corpus_next = generate_corpus(world, corpus_cfg);
    let t0 = Instant::now();
    let (report, epoch) = engine
        .maintain_and_publish(&corpus_next, server)
        .expect("maintenance cycle must succeed");
    metric_row(
        "maintenance cycle",
        format!("{:.3}s (epoch {epoch})", t0.elapsed().as_secs_f64()),
    );
    metric_row("changed records", report.changed_records.len());
    metric_row("changed terms", report.changed_terms.len());
    metric_row("segment merges", report.segment_merges);
    let entries_after = server.cache_len();
    metric_row(
        "cache entries retained",
        format!("{entries_after}/{entries_before}"),
    );

    // Retention, exactly: serve each distinct search query once. Every hit
    // is an entry the segmented publish kept; before segmented publishing
    // this count was zero by construction.
    let unique_searches: Vec<Query> = workload
        .iter()
        .filter_map(|q| match q {
            Query::Search(s, k) => Some((s.clone(), *k)),
            _ => None,
        })
        .collect::<BTreeSet<_>>()
        .into_iter()
        .map(|(s, k)| Query::Search(s, k))
        .collect();
    server.metrics().reset();
    server.run_batch(&unique_searches, 1);
    let (retained, consulted) = cache_totals(server);
    metric_row(
        "search entries surviving maintenance",
        format!(
            "{retained}/{consulted} ({})",
            pct(retained as f64 / consulted as f64)
        ),
    );

    // Cached QPS straight after the publish (the survivors pass re-warmed
    // only first occurrences; repeats dominate a closed loop either way).
    server.metrics().reset();
    let t0 = Instant::now();
    server.run_batch(workload, 1);
    let post_qps = workload.len() as f64 / t0.elapsed().as_secs_f64();
    let (hits, lookups) = cache_totals(server);
    metric_row("cached qps pre-maintenance", format!("{pre_qps:.0}"));
    metric_row("cached qps post-maintenance", format!("{post_qps:.0}"));
    metric_row("cached-qps ratio", format!("{:.2}", post_qps / pre_qps));
    metric_row(
        "post-maintenance hit rate",
        pct(hits as f64 / lookups as f64),
    );

    assert!(
        entries_after > 0,
        "the cache must survive a maintenance cycle"
    );
    if quick {
        // The CI gate: the deterministic quick fixture must keep ≥80% of
        // its distinct search entries warm across a ~1% churn cycle.
        assert!(
            retained as f64 >= 0.8 * consulted as f64,
            "quick fixture must retain >=80% of search entries across \
             maintenance ({retained}/{consulted} survived)"
        );
    }
}

/// The read-while-write phase: adopt the (already-maintained) incremental
/// engine into a `woc-stream` dataflow, churn the world twice more, and
/// stream the recrawls through micro-epoch publishes while this thread
/// keeps draining the workload against the same server. Reads are split
/// into during-publish vs between-publish percentiles, and the retention
/// gate from the survival phase is re-checked under *streaming* publishes.
fn run_read_while_write_phase(
    engine: IncrEngine,
    server: &Arc<ConceptServer>,
    world: &mut World,
    corpus_cfg: &CorpusConfig,
    workload: &[Query],
    quick: bool,
) {
    header("Read-while-write (streaming micro-epoch publishes)");
    // The world regenerates the exact corpus the engine was last
    // maintained against (generation is pure), so the stream engine can
    // adopt the warm incremental state instead of rebuilding.
    let corpus_now = generate_corpus(world, corpus_cfg);
    let config = StreamConfig {
        pipeline: bench_pipeline_config(),
        ..StreamConfig::default()
    };
    let mut stream = StreamEngine::from_parts(engine, corpus_now.clone(), config);

    // Two more churn rounds concatenated into one continuous event stream
    // (the survival phase consumed Tick(10); continue above it).
    let mut events: Vec<PageEvent> = Vec::new();
    let mut prev = corpus_now;
    let mut seed = 1u64;
    for round in 0..2u64 {
        let tick = Tick(20 + round);
        while churn_restaurants(world, 0.01, tick, seed).is_empty() {
            seed += 1;
        }
        seed += 1;
        let next = generate_corpus(world, corpus_cfg);
        events.extend(recrawl_events(&prev, &next));
        prev = next;
    }
    metric_row("event stream", format!("{} events", events.len()));

    // Warm the cache, then serve the workload in a loop while the stream
    // publishes underneath. At least one full pass runs even if the stream
    // finishes first, so "between publishes" always has samples.
    server.set_cache_enabled(true);
    server.run_batch(workload, 1);
    let entries_before = server.cache_len();
    let run_t0 = Instant::now();
    let streamer = {
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let report = stream.run(events, &server);
            (stream, report)
        })
    };
    let mut samples: Vec<(Duration, u64, bool)> = Vec::new();
    let mut pass = 0usize;
    while pass == 0 || !streamer.is_finished() {
        for q in workload {
            let answer = server.execute(q);
            samples.push((run_t0.elapsed(), answer.micros, answer.cached));
        }
        pass += 1;
    }
    let (_stream, report) = streamer.join().expect("stream thread must not panic");
    assert_eq!(report.publish_failures, 0, "{:?}", report.failure_messages);
    assert_eq!(report.pending_carryover, 0);
    metric_row(
        "micro-epochs published mid-serve",
        format!(
            "{} ({} effective)",
            report.micro_epochs, report.effective_epochs
        ),
    );
    metric_row("workload passes while streaming", pass);

    let windows: Vec<(Duration, Duration)> = report
        .publish_at
        .iter()
        .copied()
        .zip(report.publish_took.iter().copied())
        .collect();
    let mut groups: [(&str, Vec<u64>); 4] = [
        ("cached reads, between publishes", Vec::new()),
        ("cached reads, during a publish", Vec::new()),
        ("uncached reads, between publishes", Vec::new()),
        ("uncached reads, during a publish", Vec::new()),
    ];
    for &(at, micros, cached) in &samples {
        let idx = usize::from(!cached) * 2 + usize::from(during_publish(at, &windows));
        groups[idx].1.push(micros);
    }
    for (label, micros) in &groups {
        metric_row(
            label,
            format!(
                "{} answers, p50 {}µs, p99 {}µs",
                micros.len(),
                percentile(micros, 50.0),
                percentile(micros, 99.0)
            ),
        );
    }
    metric_row(
        "cache entries after streaming publishes",
        format!("{}/{entries_before}", server.cache_len()),
    );

    // The survival-phase retention gate, re-checked under streaming
    // publishes: distinct search entries must still be warm.
    let unique_searches: Vec<Query> = workload
        .iter()
        .filter_map(|q| match q {
            Query::Search(s, k) => Some((s.clone(), *k)),
            _ => None,
        })
        .collect::<BTreeSet<_>>()
        .into_iter()
        .map(|(s, k)| Query::Search(s, k))
        .collect();
    server.metrics().reset();
    server.run_batch(&unique_searches, 1);
    let (retained, consulted) = cache_totals(server);
    metric_row(
        "search entries surviving the stream",
        format!(
            "{retained}/{consulted} ({})",
            pct(retained as f64 / consulted as f64)
        ),
    );
    if report.last_epoch > 0 {
        assert_eq!(
            server.epoch(),
            report.last_epoch,
            "the server must sit at the stream's last published epoch"
        );
    }
    if quick {
        assert!(
            retained as f64 >= 0.8 * consulted as f64,
            "quick fixture must retain >=80% of search entries across \
             streaming publishes ({retained}/{consulted} survived)"
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (mut world, corpus_cfg) = if quick {
        (
            World::generate(WorldConfig::tiny(83)),
            CorpusConfig::tiny(83),
        )
    } else {
        (
            World::generate(WorldConfig::default()),
            CorpusConfig::default(),
        )
    };
    let corpus = generate_corpus(&world, &corpus_cfg);
    header("Serve bench: build + publish");
    let t0 = Instant::now();
    let mut engine = IncrEngine::new(&corpus, bench_pipeline_config());
    let woc = engine.web().clone();
    metric_row(
        "pipeline build",
        format!("{:.2}s", t0.elapsed().as_secs_f64()),
    );
    metric_row("records live", woc.store.live_count());

    // Query pool: real record names from the built web (deterministic order).
    let mut pool: Vec<String> = woc
        .store
        .live_ids()
        .into_iter()
        .filter_map(|id| woc.store.latest(id)?.best_string("name"))
        .take(if quick { 64 } else { 512 })
        .collect();
    pool.sort();
    pool.dedup();
    let server = Arc::new(ConceptServer::new(woc, ServeConfig::default()));
    let ops = if quick { 2_000 } else { 20_000 };
    let workload = build_workload(&pool, ops);
    metric_row("query pool", pool.len());
    metric_row("workload ops", workload.len());

    header("Closed-loop phases (QPS, cache hit rate, tail latency)");
    let mut qps_off_1 = 0.0;
    let mut qps_on_1 = 0.0;
    for threads in [1usize, 8] {
        for cache in [false, true] {
            let qps = run_phase(&server, &workload, threads, cache);
            if threads == 1 && !cache {
                qps_off_1 = qps;
            }
            if threads == 1 && cache {
                qps_on_1 = qps;
            }
        }
    }

    run_survival_phase(
        &server,
        &mut engine,
        &mut world,
        &corpus_cfg,
        &workload,
        quick,
    );

    run_read_while_write_phase(engine, &server, &mut world, &corpus_cfg, &workload, quick);

    header("Summary");
    metric_row(
        "cached speedup (1 thread, repeated workload)",
        format!("{:.1}x", qps_on_1 / qps_off_1),
    );
    println!("{}", server.metrics().report());
}
