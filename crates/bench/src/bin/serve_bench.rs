//! Serving-layer load benchmark: closed-loop QPS and tail latency for the
//! `woc-serve` front end, at 1 vs N worker threads, cache off vs on.
//! Run: `cargo run -p woc-bench --bin serve_bench --release`
//!
//! `--quick` serves a tiny fixture with a smaller workload — the CI smoke
//! profile. The workload is deterministic (seeded skew over real record
//! names), so hit rates and result counts are reproducible run to run; only
//! timings move with the machine.

use std::time::Instant;

use woc_bench::{bench_pipeline_config, header, metric_row, pct};
use woc_core::build;
use woc_serve::{ConceptServer, Endpoint, Query, ServeConfig};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

/// Deterministic closed-loop workload: mixed endpoints over a skewed query
/// pool (a hot set takes ~3/4 of traffic, the tail the rest), so the cache
/// has something to earn.
fn build_workload(pool: &[String], ops: usize) -> Vec<Query> {
    let hot = (pool.len() / 16).max(1);
    (0..ops)
        .map(|i| {
            let name = if i % 4 != 3 {
                &pool[(i * 31) % hot]
            } else {
                &pool[(i * 7919) % pool.len()]
            };
            match i % 5 {
                0 | 1 => Query::Search(name.clone(), 5),
                2 => Query::Search(format!("{name} is:restaurant"), 8),
                3 => Query::ConceptBox(name.clone()),
                _ => Query::Recommend(name.clone(), 3),
            }
        })
        .collect()
}

/// One benchmark phase: drain the workload through the server and report
/// QPS, hit rate and latency percentiles from the server's own metrics.
fn run_phase(server: &ConceptServer, workload: &[Query], threads: usize, cache: bool) -> f64 {
    server.set_cache_enabled(cache);
    server.metrics().reset();
    if cache {
        // Warm pass: fill the cache so the measured pass shows steady state.
        server.run_batch(workload, threads);
        server.metrics().reset();
    }
    let t0 = Instant::now();
    let answers = server.run_batch(workload, threads);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(answers.len(), workload.len());
    let qps = workload.len() as f64 / secs;

    let (mut hits, mut consulted) = (0u64, 0u64);
    for e in Endpoint::ALL {
        let s = server.metrics().endpoint(e).summary();
        hits += s.cache_hits;
        consulted += s.cache_hits + s.cache_misses;
    }
    let hit_rate = if consulted == 0 {
        0.0
    } else {
        hits as f64 / consulted as f64
    };
    let s = server.metrics().endpoint(Endpoint::Search).summary();
    println!(
        "  threads {threads}  cache {}   {qps:>9.0} qps   hit-rate {:>6}   \
         search p50 {:>5}µs  p95 {:>5}µs  p99 {:>5}µs",
        if cache { "on " } else { "off" },
        pct(hit_rate),
        s.p50_micros,
        s.p95_micros,
        s.p99_micros,
    );
    qps
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (world, corpus) = if quick {
        let world = World::generate(WorldConfig::tiny(83));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(83));
        (world, corpus)
    } else {
        let world = World::generate(WorldConfig::default());
        let corpus = generate_corpus(&world, &CorpusConfig::default());
        (world, corpus)
    };
    let _ = &world;
    header("Serve bench: build + publish");
    let t0 = Instant::now();
    let woc = build(&corpus, &bench_pipeline_config());
    metric_row(
        "pipeline build",
        format!("{:.2}s", t0.elapsed().as_secs_f64()),
    );
    metric_row("records live", woc.store.live_count());

    // Query pool: real record names from the built web (deterministic order).
    let mut pool: Vec<String> = woc
        .store
        .live_ids()
        .into_iter()
        .filter_map(|id| woc.store.latest(id)?.best_string("name"))
        .take(if quick { 64 } else { 512 })
        .collect();
    pool.sort();
    pool.dedup();
    let server = ConceptServer::new(woc, ServeConfig::default());
    let ops = if quick { 2_000 } else { 20_000 };
    let workload = build_workload(&pool, ops);
    metric_row("query pool", pool.len());
    metric_row("workload ops", workload.len());

    header("Closed-loop phases (QPS, cache hit rate, tail latency)");
    let mut qps_off_1 = 0.0;
    let mut qps_on_1 = 0.0;
    for threads in [1usize, 8] {
        for cache in [false, true] {
            let qps = run_phase(&server, &workload, threads, cache);
            if threads == 1 && !cache {
                qps_off_1 = qps;
            }
            if threads == 1 && cache {
                qps_on_1 = qps;
            }
        }
    }

    header("Summary");
    metric_row(
        "cached speedup (1 thread, repeated workload)",
        format!("{:.1}x", qps_on_1 / qps_off_1),
    );
    println!("{}", server.metrics().report());
}
