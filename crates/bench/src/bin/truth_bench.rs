//! Experiment R3: truth recovery under adversarial content.
//!
//! Sweeps the spam-site ratio (0/10/30/50%) over one fixed world and
//! measures, per ratio:
//!
//! * **value-level truth recovery** — precision/recall of served attribute
//!   values against the ground-truth world, over canonical restaurant
//!   records mapped back to world entities;
//! * **spam-site detection** — precision/recall of the reliability model's
//!   quarantine set against the planted adversarial hosts;
//! * the **trust-fixpoint convergence curve** at 30% spam.
//!
//! `--quick` runs the CI gate instead: at 30% spam, seeds 11 and 17 (plus
//! `WOC_ADV_SEED` when set), served answers must be byte-identical to the
//! clean-corpus build and the audit — including W016 — must pass.
//!
//! Run: `cargo run -p woc-bench --bin truth_bench --release [-- --quick]`

use std::collections::{BTreeMap, HashSet};

use woc_audit::{audit, AuditConfig};
use woc_bench::{bench_pipeline_config, header, metric_row, pct};
use woc_core::{build, AssocKind, WebOfConcepts};
use woc_lrec::LrecId;
use woc_serve::{ConceptServer, Query, ServeConfig};
use woc_textkit::metrics::name_similarity;
use woc_webgen::sites::adversarial::plan_sites;
use woc_webgen::{generate_corpus, AdversarialConfig, CorpusConfig, WebCorpus, World, WorldConfig};

/// Attributes scored for value-level truth recovery.
const ATTRS: [&str; 5] = ["street", "zip", "phone", "cuisine", "hours"];

/// Spam-site ratios of the sweep.
const RATIOS: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

/// Map canonical restaurant records to world entities by name-matched
/// source-page votes (same method as `ablation_eval`, made deterministic:
/// sorted maps, ties broken by lowest entity id). Scrubbed spam pages carry
/// no record associations, so the spam cannot vote.
fn map_records(world: &World, corpus: &WebCorpus, woc: &WebOfConcepts) -> BTreeMap<LrecId, LrecId> {
    let restaurant = woc.registry.id_of("restaurant").unwrap();
    let mut votes: BTreeMap<LrecId, BTreeMap<LrecId, f64>> = BTreeMap::new();
    for page in corpus.pages() {
        for tr in &page.truth.records {
            if tr.concept != world.concepts.restaurant {
                continue;
            }
            let truth_name = tr.field("name").unwrap_or_default();
            for (rec, kind) in woc.web.records_of(&page.url) {
                if *kind != AssocKind::ExtractedFrom {
                    continue;
                }
                let Some(canon) = woc.store.resolve(*rec) else {
                    continue;
                };
                let Some(r) = woc.store.latest(canon) else {
                    continue;
                };
                if r.concept() != restaurant {
                    continue;
                }
                let rec_name = r.best_string("name").unwrap_or_default();
                let sim = name_similarity(&rec_name, truth_name);
                if sim < 0.6 {
                    continue;
                }
                // Votes are similarity-weighted: a page whose truth name
                // matches the canonical name exactly outvotes a page that
                // matched a noisy variant, so near-duplicate entities do
                // not tie.
                *votes
                    .entry(canon)
                    .or_default()
                    .entry(tr.entity)
                    .or_insert(0.0) += sim;
            }
        }
    }
    votes
        .into_iter()
        .map(|(c, v)| {
            // Highest vote weight wins; the first (lowest-id) entity of an
            // exact tie, so the mapping is identical across runs.
            let best = v
                .into_iter()
                .fold(None::<(LrecId, f64)>, |acc, (e, n)| match acc {
                    Some((_, m)) if m >= n => acc,
                    _ => Some((e, n)),
                })
                .unwrap()
                .0;
            (c, best)
        })
        .collect()
}

/// Value-level truth recovery: for every mapped record and scored
/// attribute, the *served* value (the reconciled winner, first live entry)
/// is correct when it shares a denotation with any ground-truth value.
/// Precision is over served values, recall over the truth facts of the
/// mapped entities.
fn value_prf(world: &World, mapping: &BTreeMap<LrecId, LrecId>, woc: &WebOfConcepts) -> (f64, f64) {
    let mut truth_total = 0usize;
    let mut served = 0usize;
    let mut correct = 0usize;
    for (&canon, &entity) in mapping {
        let Some(rec) = woc.store.latest(canon) else {
            continue;
        };
        let truth = world.rec(entity);
        for attr in ATTRS {
            let truth_entries = truth.get(attr);
            if truth_entries.is_empty() {
                continue;
            }
            truth_total += 1;
            let Some(winner) = rec.get(attr).first() else {
                continue;
            };
            served += 1;
            if truth_entries
                .iter()
                .any(|t| t.value.same_denotation(&winner.value))
            {
                correct += 1;
            }
        }
    }
    let p = if served == 0 {
        0.0
    } else {
        correct as f64 / served as f64
    };
    let r = if truth_total == 0 {
        0.0
    } else {
        correct as f64 / truth_total as f64
    };
    (p, r)
}

/// Spam-site detection P/R: the model's quarantine set vs the planted
/// adversarial hosts.
fn detection_prf(planted: &HashSet<String>, quarantined: &HashSet<String>) -> (f64, f64) {
    let hit = planted.intersection(quarantined).count();
    let p = if quarantined.is_empty() {
        1.0
    } else {
        hit as f64 / quarantined.len() as f64
    };
    let r = if planted.is_empty() {
        1.0
    } else {
        hit as f64 / planted.len() as f64
    };
    (p, r)
}

fn corpus_at(world: &World, base: &CorpusConfig, ratio: f64, seed: u64) -> WebCorpus {
    let mut cfg = base.clone();
    if ratio > 0.0 {
        cfg.adversarial = Some(AdversarialConfig::at_ratio(ratio, seed));
    }
    generate_corpus(world, &cfg)
}

fn fixed_queries() -> Vec<Query> {
    vec![
        Query::Search("pizza".to_string(), 5),
        Query::Search("thai noodles".to_string(), 5),
        Query::Search("sushi downtown".to_string(), 5),
        Query::ConceptBox("sushi".to_string()),
        Query::ConceptBox("pizza".to_string()),
        Query::Recommend("burger".to_string(), 3),
    ]
}

fn answer_bytes(woc: WebOfConcepts, queries: &[Query]) -> String {
    let server = ConceptServer::new(woc, ServeConfig::default());
    queries
        .iter()
        .map(|q| format!("{:?}\n", server.execute(q).value))
        .collect()
}

/// The CI gate: at 30% spam, served answers byte-identical to the clean
/// build, audit (including W016) clean, at every gate seed.
fn quick_gate() {
    let world = World::generate(WorldConfig::tiny(700));
    let base = CorpusConfig::tiny(70);
    let clean = generate_corpus(&world, &base);
    let honest_sites = clean.sites().len();
    let config = bench_pipeline_config();
    let queries = fixed_queries();
    let baseline = answer_bytes(build(&clean, &config), &queries);

    let mut seeds = vec![11u64, 17];
    if let Ok(extra) = std::env::var("WOC_ADV_SEED") {
        if let Ok(s) = extra.parse() {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    for seed in seeds {
        let adv = AdversarialConfig::at_ratio(0.3, seed);
        let truth = corpus_at(&world, &base, 0.3, seed);
        let woc = build(&truth, &config);
        let planted = plan_sites(&world, honest_sites, &adv).len();
        assert_eq!(
            woc.report.sites_distrusted, planted,
            "[seed {seed}] every planted spam site must be quarantined"
        );
        let report = audit(&woc, &AuditConfig::default());
        assert!(
            report.passed(),
            "[seed {seed}] audit failed at 30% spam:\n{}",
            report.render()
        );
        assert_eq!(
            answer_bytes(woc, &queries),
            baseline,
            "[seed {seed}] served answers diverged from the clean build at 30% spam"
        );
        println!("  seed {seed:>2}: {planted} spam sites quarantined, audit clean, answers byte-identical");
    }
    println!("truth_bench --quick: PASS");
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        header("R3  CI gate — 30% spam, byte-identical serving");
        quick_gate();
        return;
    }

    let world = World::generate(WorldConfig::default());
    let base = CorpusConfig::default();
    let clean_sites = generate_corpus(&world, &base).sites().len();
    let config = bench_pipeline_config();
    metric_row("world restaurants", world.restaurants.len());
    metric_row("honest sites", clean_sites);

    header("R3  Truth recovery vs spam ratio (seed 11)");
    println!(
        "  {:<8} {:>7} {:>12} {:>9} {:>9} {:>11} {:>11} {:>6}",
        "spam", "sites", "distrusted", "value P", "value R", "detect P", "detect R", "iters"
    );
    let mut curve_at_30 = Vec::new();
    for ratio in RATIOS {
        let adv = AdversarialConfig::at_ratio(ratio, 11);
        let corpus = corpus_at(&world, &base, ratio, 11);
        let woc = build(&corpus, &config);
        let planted: HashSet<String> = if ratio > 0.0 {
            plan_sites(&world, clean_sites, &adv)
                .into_iter()
                .map(|s| s.host)
                .collect()
        } else {
            HashSet::new()
        };
        let quarantined: HashSet<String> = woc
            .trust
            .quarantined
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        let (dp, dr) = detection_prf(&planted, &quarantined);
        let mapping = map_records(&world, &corpus, &woc);
        let (vp, vr) = value_prf(&world, &mapping, &woc);
        if (ratio - 0.3).abs() < 1e-9 {
            curve_at_30 = woc.trust.curve.clone();
        }
        println!(
            "  {:<8} {:>7} {:>12} {:>9.3} {:>9.3} {:>11.3} {:>11.3} {:>6}",
            pct(ratio),
            planted.len(),
            woc.report.sites_distrusted,
            vp,
            vr,
            dp,
            dr,
            woc.trust.iterations
        );
    }

    header("R3b Trust-fixpoint convergence at 30% spam (max |Δtrust| per iteration)");
    for (i, delta) in curve_at_30.iter().enumerate() {
        println!("  iter {:>2}  {delta:.6}", i + 1);
    }
    println!("  (expected shape: geometric decay — damped fixpoint contraction)");
}
