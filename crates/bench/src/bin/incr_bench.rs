//! Incremental maintenance vs full rebuild: update latency and speedup at
//! 1%, 10% and 50% world churn, single-threaded, on the full corpus
//! profile. After every timed pass the maintained web is checked
//! **outside the timing window** for byte-identity with a from-scratch
//! rebuild and for a clean integrity audit — speed only counts if the
//! answer is exactly right.
//!
//! Exits non-zero if any equivalence or audit check fails, or if the 1%
//! churn speedup falls below the 5× acceptance floor (skipped under
//! `--quick`, whose tiny corpus is too small for stable timing).
//!
//! Run: `cargo run -p woc-bench --bin incr_bench --release [-- --quick]`

use std::time::Instant;

use woc_audit::{audit, AuditConfig};
use woc_bench::{header, metric_row, pct};
use woc_core::{build, PipelineConfig};
use woc_incr::{canonical_bytes, IncrEngine};
use woc_lrec::Tick;
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

/// Acceptance floor: incremental maintenance at 1% churn must beat a full
/// rebuild by at least this factor.
const MIN_SPEEDUP_AT_1PCT: f64 = 5.0;

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("invariant: timings are finite"));
    times[times.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (world_cfg, corpus_cfg) = if quick {
        (WorldConfig::tiny(500), CorpusConfig::tiny(50))
    } else {
        (WorldConfig::default(), CorpusConfig::default())
    };
    let config = PipelineConfig {
        threads: 1,
        ..PipelineConfig::default()
    };

    header("Incremental maintenance vs full rebuild (single-threaded)");
    println!(
        "  {:>6} {:>8} {:>7} {:>12} {:>12} {:>9} {:>11} {:>10}",
        "churn", "events", "dirty", "incr ms", "rebuild ms", "speedup", "reextract", "rescored"
    );

    let trials = if quick { 1 } else { 3 };
    let mut failed = false;
    let mut speedup_at_1pct = None;
    for &rate in &[0.01, 0.10, 0.50] {
        let mut world = World::generate(world_cfg.clone());
        let corpus_v1 = generate_corpus(&world, &corpus_cfg);

        // Tiny worlds can roll zero events at 1%; retry seeds (a zero-event
        // churn call leaves the world untouched).
        let mut seed = 1;
        let mut events = churn_restaurants(&mut world, rate, Tick(10), seed);
        while events.is_empty() && seed < 1000 {
            seed += 1;
            events = churn_restaurants(&mut world, rate, Tick(10), seed);
        }
        let corpus_v2 = generate_corpus(&world, &corpus_cfg);

        // Median over independent trials: each one maintains a freshly
        // warmed engine, so no trial benefits from a previous one's pass.
        let mut incr_times = Vec::with_capacity(trials);
        let mut rebuild_times = Vec::with_capacity(trials);
        let mut last = None;
        for _ in 0..trials {
            let mut engine = IncrEngine::new(&corpus_v1, config.clone());
            let t = Instant::now();
            let report = engine
                .maintain(&corpus_v2)
                .expect("invariant: a fault-free maintain pass succeeds");
            incr_times.push(t.elapsed().as_secs_f64() * 1e3);

            let t = Instant::now();
            let fresh = build(&corpus_v2, &config);
            rebuild_times.push(t.elapsed().as_secs_f64() * 1e3);

            // Verification — outside the timing windows.
            if canonical_bytes(engine.web()) != canonical_bytes(&fresh) {
                eprintln!("FAIL: maintained web differs from rebuild at churn {rate}");
                failed = true;
            }
            let integrity = audit(engine.web(), &AuditConfig::default());
            if !integrity.passed() {
                eprintln!(
                    "FAIL: audit violations at churn {rate}:\n{}",
                    integrity.render()
                );
                failed = true;
            }
            last = Some(report);
        }
        let report = last.expect("at least one trial ran");
        let incr_ms = median(&mut incr_times);
        let rebuild_ms = median(&mut rebuild_times);

        let speedup = rebuild_ms / incr_ms.max(1e-9);
        if rate == 0.01 {
            speedup_at_1pct = Some(speedup);
        }
        println!(
            "  {:>6} {:>8} {:>7} {:>12.1} {:>12.1} {:>8.1}x {:>11} {:>10}",
            pct(rate),
            events.len(),
            report.pages_dirty,
            incr_ms,
            rebuild_ms,
            speedup,
            report.pages_reextracted,
            report.pairs_rescored
        );
    }

    header("Verdict");
    metric_row(
        "equivalence + audit",
        if failed {
            "FAILED"
        } else {
            "clean at every churn rate"
        },
    );
    if let Some(s) = speedup_at_1pct {
        metric_row(
            "speedup @ 1% churn",
            format!("{s:.1}x (floor {MIN_SPEEDUP_AT_1PCT}x)"),
        );
        if !quick && s < MIN_SPEEDUP_AT_1PCT {
            eprintln!("FAIL: speedup {s:.1}x below the {MIN_SPEEDUP_AT_1PCT}x floor");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
