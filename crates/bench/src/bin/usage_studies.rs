//! Experiments E1–E4: reproduce every statistic of the paper's §3 usage
//! studies over simulated logs. Run: `cargo run -p woc-bench --bin usage_studies --release`
//!
//! `--quick` runs a smoke profile (tiny world, 2k events per study) that
//! finishes in well under a minute and also builds the web of concepts once
//! to print its pipeline report — the CI-friendly end-to-end check.

use woc_bench::{bench_pipeline_config, compare_row, header, metric_row};
use woc_usage::{analyze, simulate, UsageConfig, AGGREGATOR_HOST};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (world, corpus) = if quick {
        let world = World::generate(WorldConfig::tiny(79));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(79));
        (world, corpus)
    } else {
        let world = World::generate(WorldConfig::default());
        let corpus = generate_corpus(&world, &CorpusConfig::default());
        (world, corpus)
    };
    if quick {
        header("Quick smoke: pipeline build");
        let woc = woc_core::build(&corpus, &bench_pipeline_config());
        println!("{}", woc.report);
    }
    let events = if quick { 2_000 } else { 20_000 };
    let config = UsageConfig {
        aggregator_queries: events,
        homepage_queries: events,
        trails: events,
        ..UsageConfig::default()
    };
    let log = simulate(&world, &corpus, &config);
    metric_row("pages in corpus", corpus.len());
    metric_row("search events simulated", log.num_searches());
    metric_row("toolbar trails simulated", log.num_trails());

    // --- E1 -------------------------------------------------------------
    header("E1  Concepts vs. Search — clicked aggregator URL categories");
    let e1 = analyze::click_categories(&log, AGGREGATOR_HOST);
    metric_row("aggregator clicks analyzed", e1.total);
    compare_row("biz URLs (individual business)", 0.59, e1.biz);
    compare_row("search URLs (result pages)", 0.19, e1.search);
    compare_row("c URLs (pre-defined categories)", 0.11, e1.category);

    // --- E2 -------------------------------------------------------------
    header("E2  Searching for Attributes of a Concept");
    let (homepages, host_map) = analyze::homepage_inventory(&world);
    let names = analyze::name_location_tokens(&world);
    let tally = analyze::attribute_queries(&log, &homepages, &names);
    let rate = |tok: &str| {
        tally
            .iter()
            .find(|(t, _)| t == tok)
            .map(|(_, r)| *r)
            .unwrap_or(0.0)
    };
    compare_row("menu", 0.030, rate("menu"));
    compare_row("coupons", 0.018, rate("coupons"));
    compare_row("locations", 0.015, rate("locations"));
    compare_row("online", 0.015, rate("online"));
    compare_row("specials (weekly specials)", 0.015, rate("specials"));
    println!("  (long tail, paper: nutrition / to go / delivery / careers)");
    for (tok, r) in tally.iter().take(12) {
        metric_row(&format!("  token {tok:?}"), format!("{:.2}%", 100.0 * r));
    }

    // --- E3 -------------------------------------------------------------
    header("E3  Value in Aggregation — same-query co-clicks");
    let e3 = analyze::co_clicks(&log, AGGREGATOR_HOST);
    metric_row("biz-click queries analyzed", e3.total);
    compare_row("clicked ≥1 other URL", 0.59, e3.at_least_one_other);
    compare_row("clicked ≥2 other URLs", 0.35, e3.at_least_two_others);

    // --- E4 -------------------------------------------------------------
    header("E4  Concepts vs. Browsing — toolbar trails");
    let host_of = move |url: &str| -> Option<String> {
        let host = woc_webgen::page::url_host(url).to_string();
        host_map.contains_key(&host).then_some(host)
    };
    let cls = analyze::TrailClassifier {
        homepages: &homepages,
        host_of: &host_of,
    };
    let e4 = analyze::trails(&log, &cls);
    metric_row("homepage visits analyzed", e4.homepage_visits);
    compare_row("visit preceded by search query", 0.42, e4.search_preceded);
    compare_row("next page = location/address", 0.115, e4.next_location);
    compare_row("next page = menu", 0.09, e4.next_menu);
    compare_row("next page = coupons", 0.01, e4.next_coupons);
    compare_row(
        "trails with >1 restaurant instance",
        0.105,
        e4.multi_instance_trails,
    );

    println!();
    println!("All four §3 analyses re-run over raw simulated logs (analyzers see");
    println!("only queries, clicks, trails and public URL inventories).");
}
