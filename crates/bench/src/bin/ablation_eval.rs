//! Ablation study over the design choices DESIGN.md §5–6 calls out:
//! which pipeline stage buys what, and what the fielded-index representation
//! buys over flat bag-of-words retrieval (§2.2's core design decision).
//!
//! Run: `cargo run -p woc-bench --bin ablation_eval --release`

use std::collections::{HashMap, HashSet};

use woc_bench::{header, metric_row, pct};
use woc_core::{build, AssocKind, PipelineConfig, WebOfConcepts};
use woc_index::FieldQuery;
use woc_lrec::LrecId;
use woc_textkit::metrics::name_similarity;
use woc_webgen::{generate_corpus, CorpusConfig, WebCorpus, World, WorldConfig};

/// Map canonical restaurant records to world entities by name-matched
/// source-page votes (same method as the integration suite).
fn coverage_stats(world: &World, corpus: &WebCorpus, woc: &WebOfConcepts) -> (f64, usize, f64) {
    let restaurant = woc.registry.id_of("restaurant").unwrap();
    let mut votes: HashMap<LrecId, HashMap<LrecId, usize>> = HashMap::new();
    for page in corpus.pages() {
        for tr in &page.truth.records {
            if tr.concept != world.concepts.restaurant {
                continue;
            }
            let truth_name = tr.field("name").unwrap_or_default();
            for (rec, kind) in woc.web.records_of(&page.url) {
                if *kind != AssocKind::ExtractedFrom {
                    continue;
                }
                let Some(canon) = woc.store.resolve(*rec) else {
                    continue;
                };
                let Some(r) = woc.store.latest(canon) else {
                    continue;
                };
                if r.concept() != restaurant {
                    continue;
                }
                let rec_name = r.best_string("name").unwrap_or_default();
                if name_similarity(&rec_name, truth_name) < 0.6 {
                    continue;
                }
                *votes
                    .entry(canon)
                    .or_default()
                    .entry(tr.entity)
                    .or_insert(0) += 1;
            }
        }
    }
    let covered: HashSet<LrecId> = votes
        .values()
        .map(|v| *v.iter().max_by_key(|&(_, n)| n).unwrap().0)
        .collect();
    let coverage = covered.len() as f64 / world.restaurants.len() as f64;
    let canonical = woc.store.by_concept(restaurant).len();

    // Zip accuracy over the mapped records.
    let mapping: HashMap<LrecId, LrecId> = votes
        .into_iter()
        .map(|(c, v)| (c, v.into_iter().max_by_key(|&(_, n)| n).unwrap().0))
        .collect();
    let mut checked = 0usize;
    let mut correct = 0usize;
    // woc-lint: allow(map-iter-order) — counter accumulation only; commutative.
    for (&canon, &entity) in &mapping {
        if let Some(z) = woc.store.latest(canon).and_then(|r| r.best_string("zip")) {
            checked += 1;
            if world.rec(entity).best_string("zip").as_deref() == Some(z.as_str()) {
                correct += 1;
            }
        }
    }
    let zip_acc = if checked == 0 {
        0.0
    } else {
        correct as f64 / checked as f64
    };
    (coverage, canonical, zip_acc)
}

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    metric_row("world restaurants", world.restaurants.len());
    metric_row("corpus pages", corpus.len());

    header("A1  Pipeline-stage ablation (restaurant concept)");
    println!(
        "  {:<26} {:>10} {:>12} {:>10}",
        "variant", "coverage", "canonical", "zip acc"
    );
    let variants: Vec<(&str, PipelineConfig)> = vec![
        ("full", PipelineConfig::default()),
        (
            "no list extraction",
            PipelineConfig {
                use_lists: false,
                ..PipelineConfig::default()
            },
        ),
        (
            "no detail extraction",
            PipelineConfig {
                use_detail: false,
                ..PipelineConfig::default()
            },
        ),
        (
            "no entity resolution",
            PipelineConfig {
                resolve_entities: false,
                ..PipelineConfig::default()
            },
        ),
        (
            "no reconciliation",
            PipelineConfig {
                reconcile_values: false,
                ..PipelineConfig::default()
            },
        ),
        (
            "pairwise (no collective)",
            PipelineConfig {
                collective: false,
                ..PipelineConfig::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let woc = build(&corpus, &cfg);
        let (coverage, canonical, zip_acc) = coverage_stats(&world, &corpus, &woc);
        println!(
            "  {:<26} {:>10} {:>12} {:>10}",
            name,
            pct(coverage),
            canonical,
            pct(zip_acc)
        );
    }
    println!("  (readings: dropping resolution multiplies canonical records ~8x;");
    println!("   dropping detail extraction costs a third of coverage. Dropping");
    println!("   LIST extraction *helps* the restaurant concept — partial listing");
    println!("   rows add merge noise — but it is what builds menu_item,");
    println!("   publication and event records at all; see S2.)");

    header("A2  Fielded vs flat retrieval (§2.2 representation choice)");
    // Precision@1 of name+city queries under three query treatments.
    let woc = build(&corpus, &PipelineConfig::default());
    println!("{}", woc.report);
    let mut flat_ok = 0usize;
    let mut fielded_ok = 0usize;
    let mut interpreted_ok = 0usize;
    let mut total = 0usize;
    for &r in &world.restaurants {
        let name = world.attr(r, "name");
        let city = world.attr(r, "city");
        total += 1;
        let check = |hits: &[woc_index::RecordHit]| -> bool {
            hits.first().is_some_and(|h| {
                woc.store
                    .latest(h.id)
                    .and_then(|rec| rec.best_string("name"))
                    .is_some_and(|n| name_similarity(&n, &name) > 0.7)
            })
        };
        // Flat: free-text terms only.
        let flat = woc.record_index.search(
            &FieldQuery {
                terms: woc_textkit::tokenize::tokenize_words(&format!("{name} {city}")),
                ..FieldQuery::default()
            },
            1,
            |n| woc.registry.id_of(n),
        );
        // Fielded: name scoped to the name field, city to the city field.
        let mut fq = FieldQuery::default();
        for w in woc_textkit::tokenize::tokenize_words(&name) {
            fq.scoped.push(("name".into(), w));
        }
        for w in woc_textkit::tokenize::tokenize_words(&city) {
            fq.scoped.push(("city".into(), w));
        }
        let fielded = woc.record_index.search(&fq, 1, |n| woc.registry.id_of(n));
        // Interpreted: the concept-search query parser (geo promotion).
        let interpreted = woc_apps::concept_search(&woc, &format!("{name} {city}"), 1);
        if check(&flat) {
            flat_ok += 1;
        }
        if check(&fielded) {
            fielded_ok += 1;
        }
        if interpreted
            .first()
            .is_some_and(|h| name_similarity(&h.name, &name) > 0.7)
        {
            interpreted_ok += 1;
        }
    }
    metric_row("queries", total);
    metric_row("flat bag-of-words P@1", pct(flat_ok as f64 / total as f64));
    metric_row("fully fielded P@1", pct(fielded_ok as f64 / total as f64));
    metric_row(
        "interpreted (geo-promoted) P@1",
        pct(interpreted_ok as f64 / total as f64),
    );
    println!("  (expected shape: field scoping prunes cross-attribute false matches)");

    header("A3  Curated vs data-driven taxonomy (§2.3)");
    let products: Vec<&woc_lrec::Lrec> = world
        .products
        .iter()
        .map(|&p| world.store.latest(p).unwrap())
        .collect();
    let taxonomy = woc_core::Taxonomy::curated_shopping();
    // Gold: the top-level curated bucket of each product.
    let gold: Vec<String> = products
        .iter()
        .map(|r| {
            let cat = r.best_string("category").unwrap_or_default();
            taxonomy
                .ancestors(&cat)
                .first()
                .map(|s| s.to_string())
                .unwrap_or(cat)
        })
        .collect();
    let k = gold.iter().collect::<HashSet<_>>().len();
    let clusters = woc_core::data_driven_taxonomy(&products, k);
    metric_row("products", products.len());
    metric_row("curated top-level buckets", k);
    metric_row(
        "data-driven cluster purity vs curated",
        pct(woc_core::cluster_purity(&clusters, &gold)),
    );
    println!("  (the paper's open question: how well does bottom-up clustering");
    println!("   recover a curator's taxonomy from attribute data alone?)");
}
