//! Streaming-ingest benchmark: sustained churn flows through the
//! `woc-stream` dataflow while query threads hammer the server the stream
//! publishes into. Reports ingest throughput, micro-epoch publish cadence,
//! and read latency percentiles split into answers served *during* a
//! maintain-and-publish pass vs *between* passes — the read-while-write
//! cost, measured.
//! Run: `cargo run -p woc-bench --bin stream_bench --release`
//!
//! `--quick` streams a tiny fixture for the CI smoke profile and asserts
//! the headline invariants: the streamed web is byte-identical to a batch
//! build of the final crawl, the audit (including W015) is clean, and the
//! during-publish read p99 stays under a generous bound — serving a
//! publish must degrade reads, boundedly, not block them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use woc_bench::{
    bench_pipeline_config, during_publish, header, metric_row, pct, percentile, recrawl_events,
};
use woc_incr::canonical_bytes;
use woc_lrec::Tick;
use woc_serve::{ConceptServer, ServeConfig};
use woc_stream::{PageEvent, StreamConfig, StreamEngine};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

/// One latency sample: when it completed (offset from stream start),
/// how long it took, and whether the cache served it.
struct Sample {
    at: Duration,
    micros: u64,
    cached: bool,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (mut world, corpus_cfg, rounds, churn) = if quick {
        (
            World::generate(WorldConfig::tiny(97)),
            CorpusConfig::tiny(97),
            3usize,
            0.10f64,
        )
    } else {
        (
            World::generate(WorldConfig::default()),
            CorpusConfig::default(),
            5usize,
            0.05f64,
        )
    };

    header("Stream bench: seed build");
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let t0 = Instant::now();
    let config = StreamConfig {
        pipeline: bench_pipeline_config(),
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::new(corpus_v1.clone(), config.clone());
    metric_row("seed build", format!("{:.2}s", t0.elapsed().as_secs_f64()));
    metric_row("seed pages", corpus_v1.len());
    let server = Arc::new(ConceptServer::new(
        engine.web().clone(),
        ServeConfig::default(),
    ));

    // Query pool from the built web; mixed search workload.
    let pool: Vec<String> = {
        let woc = engine.web();
        let mut names: Vec<String> = woc
            .store
            .live_ids()
            .into_iter()
            .filter_map(|id| woc.store.latest(id)?.best_string("name"))
            .take(if quick { 48 } else { 256 })
            .collect();
        names.sort();
        names.dedup();
        names
    };
    metric_row("query pool", pool.len());

    // Sustained churn: `rounds` recrawls, each a separate event burst, all
    // concatenated into one continuous stream.
    let mut events: Vec<PageEvent> = Vec::new();
    let mut prev = corpus_v1.clone();
    let mut seed = 1u64;
    for round in 0..rounds {
        let tick = Tick(10 + round as u64);
        while churn_restaurants(&mut world, churn, tick, seed).is_empty() {
            seed += 1;
        }
        seed += 1;
        let next = generate_corpus(&world, &corpus_cfg);
        events.extend(recrawl_events(&prev, &next));
        prev = next;
    }
    metric_row("event stream", format!("{} events", events.len()));

    header("Sustained ingest + concurrent query load");
    server.set_cache_enabled(true);
    // Warm the cache so "cached" samples mean something from the start.
    for name in &pool {
        server.search(name, 5);
    }
    let query_threads = if quick { 2usize } else { 4 };
    let running = Arc::new(AtomicBool::new(true));
    let run_t0 = Instant::now();
    let (engine, report, samples) = {
        let stream_server = Arc::clone(&server);
        let streamer = std::thread::spawn(move || {
            let report = engine.run(events, &stream_server);
            (engine, report)
        });
        let readers: Vec<_> = (0..query_threads)
            .map(|t| {
                let server = Arc::clone(&server);
                let running = Arc::clone(&running);
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let mut out: Vec<Sample> = Vec::new();
                    let mut i = t;
                    while running.load(Ordering::Relaxed) {
                        let name = &pool[i % pool.len()];
                        let answer = if i % 3 == 0 {
                            // Uncached path: bypass-style unique query.
                            server.search(&format!("{name} is:restaurant"), 7)
                        } else {
                            server.search(name, 5)
                        };
                        out.push(Sample {
                            at: run_t0.elapsed(),
                            micros: answer.micros,
                            cached: answer.cached,
                        });
                        i += 1;
                    }
                    out
                })
            })
            .collect();
        let (engine, report) = streamer.join().expect("stream thread must not panic");
        running.store(false, Ordering::Relaxed);
        let mut samples: Vec<Sample> = Vec::new();
        for r in readers {
            samples.extend(r.join().expect("reader thread must not panic"));
        }
        (engine, report, samples)
    };
    let wall = run_t0.elapsed().as_secs_f64();

    metric_row("wall time", format!("{wall:.2}s"));
    metric_row(
        "ingest throughput",
        format!("{:.0} events/s", report.events_in as f64 / wall),
    );
    metric_row(
        "events deduped at fingerprint stage",
        format!(
            "{}/{} ({})",
            report.deduped,
            report.events_in,
            pct(report.deduped as f64 / report.events_in.max(1) as f64)
        ),
    );
    metric_row("pages extracted", report.pages_extracted);
    metric_row(
        "micro-epochs published",
        format!(
            "{} ({} effective, {} failed passes)",
            report.micro_epochs, report.effective_epochs, report.publish_failures
        ),
    );
    let cadence = if report.publish_at.len() > 1 {
        let first = report.publish_at[0];
        let last = *report.publish_at.last().expect("non-empty");
        (last - first).as_secs_f64() / (report.publish_at.len() - 1) as f64
    } else {
        0.0
    };
    metric_row("publish cadence", format!("{:.1}ms", cadence * 1000.0));
    let took: Vec<u64> = report
        .publish_took
        .iter()
        .map(|d| d.as_micros() as u64)
        .collect();
    metric_row(
        "publish pass p50/p99",
        format!(
            "{}µs / {}µs",
            percentile(&took, 50.0),
            percentile(&took, 99.0)
        ),
    );

    header("Read latency while publishing");
    let windows: Vec<(Duration, Duration)> = report
        .publish_at
        .iter()
        .copied()
        .zip(report.publish_took.iter().copied())
        .collect();
    let mut groups: [(&str, Vec<u64>); 4] = [
        ("cached, between publishes", Vec::new()),
        ("cached, during a publish", Vec::new()),
        ("uncached, between publishes", Vec::new()),
        ("uncached, during a publish", Vec::new()),
    ];
    for s in &samples {
        let during = during_publish(s.at, &windows);
        let idx = usize::from(!s.cached) * 2 + usize::from(during);
        groups[idx].1.push(s.micros);
    }
    for (label, micros) in &groups {
        metric_row(
            label,
            format!(
                "{} answers, p50 {}µs, p99 {}µs",
                micros.len(),
                percentile(micros, 50.0),
                percentile(micros, 99.0)
            ),
        );
    }

    header("Quiesced equivalence");
    let t0 = Instant::now();
    let fresh = woc_core::build(engine.corpus(), &config.pipeline);
    let batch_secs = t0.elapsed().as_secs_f64();
    let identical = canonical_bytes(engine.web()) == canonical_bytes(&fresh);
    metric_row(
        "byte-identical to batch build",
        if identical { "yes" } else { "NO — BROKEN" },
    );
    metric_row("batch rebuild for comparison", format!("{batch_secs:.2}s"));
    let audit = engine.audit(&woc_audit::AuditConfig::default());
    metric_row("audit", if audit.passed() { "clean" } else { "FAILED" });
    metric_row(
        "final watermark",
        format!(
            "({}, {:016x})",
            report.final_watermark.events, report.final_watermark.digest
        ),
    );

    if quick {
        assert!(identical, "streamed web must equal the batch build");
        assert!(audit.passed(), "{}", audit.render());
        assert_eq!(report.publish_failures, 0, "{:?}", report.failure_messages);
        assert!(
            report.micro_epochs >= 2,
            "sustained churn must publish repeatedly"
        );
        // The read-while-write gate: answers served while a publish was in
        // flight must complete within a generous absolute bound — readers
        // degrade boundedly during a swap, they never block on it.
        let during: Vec<u64> = samples
            .iter()
            .filter(|s| during_publish(s.at, &windows))
            .map(|s| s.micros)
            .collect();
        if !during.is_empty() {
            let p99 = percentile(&during, 99.0);
            assert!(
                p99 < 250_000,
                "during-publish read p99 {p99}µs exceeds the 250ms bound"
            );
        }
    }
}
