//! Property tests for the source-reliability fixpoint (`woc_core::trust`):
//! order independence, bounded convergence, monotonicity under added
//! corroboration, and stability of honestly-corroborated winners under
//! spam perturbation.

use proptest::prelude::*;
use woc_core::{Claim, TrustConfig, TrustModel};
use woc_lrec::AttrValue;

fn claim(site: &str, pool: &str, attr: &str, value: &str, confidence: f64) -> Claim {
    Claim {
        site: site.to_string(),
        pool: pool.to_string(),
        attr: attr.to_string(),
        value: AttrValue::Text(value.to_string()),
        confidence,
    }
}

/// A structured adversarial scenario: `honest` sites corroborate the truth
/// value `t{f}` of every fact, `spam` sites each assert a decorrelated lie.
fn scenario(honest: usize, spam: usize, facts: usize, hconf: f64, sconf: f64) -> Vec<Claim> {
    let mut claims = Vec::new();
    for f in 0..facts {
        let pool = format!("restaurant|r{f}|springfield");
        for h in 0..honest {
            claims.push(claim(
                &format!("honest-{h}.example.com"),
                &pool,
                "phone",
                &format!("t{f}"),
                hconf,
            ));
        }
        for s in 0..spam {
            claims.push(claim(
                &format!("spam-{s}.example.net"),
                &pool,
                "phone",
                &format!("lie-{s}-{f}"),
                sconf,
            ));
        }
    }
    claims
}

/// The winning denotation of a fact under a converged model: the group
/// with the strictly largest noisy-or of confidence × trust. The
/// best-rival normalization the fixpoint applies is monotone in the group
/// score, so the argmax is the same. Returns `None` on a tie.
fn winner(model: &TrustModel, pool: &str, attr: &str) -> Option<String> {
    let mut groups: Vec<(String, f64)> = Vec::new();
    for c in model
        .claims
        .iter()
        .filter(|c| c.pool == pool && c.attr == attr)
    {
        let v = c.value.display_string();
        let not = 1.0 - (c.confidence * model.trust_of(&c.site)).clamp(0.0, 1.0);
        match groups.iter_mut().find(|(g, _)| *g == v) {
            Some((_, s)) => *s = 1.0 - (1.0 - *s) * not,
            None => groups.push((v, 1.0 - not)),
        }
    }
    let best = groups
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())?
        .clone();
    if groups.iter().any(|(g, s)| *g != best.0 && *s >= best.1) {
        return None;
    }
    Some(best.0)
}

/// Random claims over small site/pool/attr/value alphabets: the shape the
/// order- and convergence-laws must hold for unconditionally.
fn arb_claims() -> impl Strategy<Value = Vec<Claim>> {
    prop::collection::vec(
        (
            (0usize..6, 0usize..4),
            (0usize..3, 0usize..5, 0.05f64..0.95),
        ),
        1..60,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|((s, p), (a, v, conf))| {
                claim(
                    &format!("site-{s}.example.com"),
                    &format!("restaurant|r{p}|springfield"),
                    &format!("attr{a}"),
                    &format!("v{v}"),
                    conf,
                )
            })
            .collect()
    })
}

proptest! {
    /// The fixpoint never depends on the order claims arrive in: reversing
    /// or rotating the claim stream yields a bitwise-identical model.
    #[test]
    fn fixpoint_is_claim_order_independent(claims in arb_claims(), rot in 0usize..60) {
        let cfg = TrustConfig::default();
        let base = TrustModel::compute(claims.clone(), &cfg);

        let mut reversed = claims.clone();
        reversed.reverse();
        let rev = TrustModel::compute(reversed, &cfg);
        prop_assert_eq!(&base.site_trust, &rev.site_trust);
        prop_assert_eq!(&base.quarantined, &rev.quarantined);
        prop_assert_eq!(&base.curve, &rev.curve);
        prop_assert_eq!(base.digest(), rev.digest());

        let mut rotated = claims.clone();
        rotated.rotate_left(rot % claims.len().max(1));
        let rotd = TrustModel::compute(rotated, &cfg);
        prop_assert_eq!(&base.site_trust, &rotd.site_trust);
        prop_assert_eq!(base.digest(), rotd.digest());
    }

    /// Duplicated claims are canonicalized away: feeding every claim twice
    /// changes nothing.
    #[test]
    fn fixpoint_ignores_duplicate_claims(claims in arb_claims()) {
        let cfg = TrustConfig::default();
        let base = TrustModel::compute(claims.clone(), &cfg);
        let mut doubled = claims.clone();
        doubled.extend(claims);
        let dbl = TrustModel::compute(doubled, &cfg);
        prop_assert_eq!(&base.site_trust, &dbl.site_trust);
        prop_assert_eq!(base.digest(), dbl.digest());
    }

    /// The fixpoint converges within a bounded iteration count — the
    /// damped update contracts, so a 512-iteration budget always reaches
    /// epsilon even on adversarial random claim sets (the pipeline's
    /// default 128 covers its real, less contrived, claim pools) — and
    /// keeps every trust score inside [0, 1].
    #[test]
    fn fixpoint_converges_within_bounds(claims in arb_claims()) {
        let cfg = TrustConfig { max_iters: 512, ..TrustConfig::default() };
        let m = TrustModel::compute(claims, &cfg);
        prop_assert!(m.converged, "no convergence in {} iterations (curve {:?})", m.iterations, m.curve);
        prop_assert!(m.iterations <= cfg.max_iters);
        prop_assert_eq!(m.curve.len(), m.iterations);
        prop_assert!(m.curve.last().copied().unwrap_or(0.0) < cfg.epsilon);
        // Contraction, not oscillation: the tail of the curve keeps
        // shrinking relative to its start.
        if m.curve.len() >= 8 {
            let head = m.curve[..4].iter().cloned().fold(0.0f64, f64::max);
            let tail = m.curve[m.curve.len() - 4..].iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(tail <= head, "curve not contracting: head {head} tail {tail}");
        }
        for (site, t) in &m.site_trust {
            prop_assert!((0.0..=1.0).contains(t), "trust of {site} out of range: {t}");
        }
    }

    /// Adding one more honest site that corroborates the existing
    /// consensus never lowers any honest site's trust and never raises a
    /// lying site's trust.
    #[test]
    fn corroborating_site_is_monotone(
        honest in 2usize..5,
        spam in 1usize..4,
        facts in 2usize..6,
        hconf in 0.6f64..0.95,
        sconf in 0.5f64..0.95,
    ) {
        let cfg = TrustConfig::default();
        let base_claims = scenario(honest, spam, facts, hconf, sconf);
        let before = TrustModel::compute(base_claims.clone(), &cfg);

        let mut more = base_claims;
        for f in 0..facts {
            more.push(claim(
                "honest-new.example.com",
                &format!("restaurant|r{f}|springfield"),
                "phone",
                &format!("t{f}"),
                hconf,
            ));
        }
        let after = TrustModel::compute(more, &cfg);

        for h in 0..honest {
            let site = format!("honest-{h}.example.com");
            prop_assert!(
                after.trust_of(&site) >= before.trust_of(&site) - 1e-9,
                "corroboration lowered honest trust of {site}: {} -> {}",
                before.trust_of(&site),
                after.trust_of(&site)
            );
        }
        for s in 0..spam {
            let site = format!("spam-{s}.example.net");
            prop_assert!(
                after.trust_of(&site) <= before.trust_of(&site) + 1e-9,
                "corroboration raised spam trust of {site}: {} -> {}",
                before.trust_of(&site),
                after.trust_of(&site)
            );
        }
    }

    /// Perturbing a single value on a spam site — to anything, including
    /// the truth, another site's lie, or a fresh fabrication — never flips
    /// an honestly-corroborated winner.
    #[test]
    fn spam_perturbation_never_flips_corroborated_winner(
        honest in 2usize..5,
        spam in 1usize..4,
        facts in 2usize..6,
        hconf in 0.6f64..0.95,
        sconf in 0.5f64..0.95,
        which_site in 0usize..4,
        which_fact in 0usize..6,
        new_value in prop_oneof!["t0", "lie-0-0", "lie-1-1", "fresh-lie", "t1"],
    ) {
        let cfg = TrustConfig::default();
        let base_claims = scenario(honest, spam, facts, hconf, sconf);
        let before = TrustModel::compute(base_claims.clone(), &cfg);
        for f in 0..facts {
            let pool = format!("restaurant|r{f}|springfield");
            prop_assert_eq!(
                winner(&before, &pool, "phone").as_deref(),
                Some(format!("t{f}").as_str()),
                "corroborated truth must win before perturbation"
            );
        }

        let target_site = format!("spam-{}.example.net", which_site % spam);
        let target_pool = format!("restaurant|r{}|springfield", which_fact % facts);
        let mut perturbed = base_claims;
        let c = perturbed
            .iter_mut()
            .find(|c| c.site == target_site && c.pool == target_pool)
            .expect("scenario has a claim per (spam site, fact)");
        c.value = AttrValue::Text(new_value.to_string());

        let after = TrustModel::compute(perturbed, &cfg);
        for f in 0..facts {
            let pool = format!("restaurant|r{f}|springfield");
            prop_assert_eq!(
                winner(&after, &pool, "phone").as_deref(),
                Some(format!("t{f}").as_str()),
                "spam perturbation flipped the winner of fact {}",
                f
            );
        }
    }
}
