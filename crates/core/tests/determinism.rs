//! The pipeline's central parallelism guarantee: the web of concepts built
//! with N worker threads is identical to the one built serially — same
//! record ids, same canonical mapping, same values, same associations, same
//! index postings. Timings are the only thing allowed to differ.

use woc_core::{build, AssocKind, PipelineConfig, WebOfConcepts};
use woc_lrec::LrecId;
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn build_with(threads: usize) -> WebOfConcepts {
    let world = World::generate(WorldConfig::tiny(303));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(33));
    build(
        &corpus,
        &PipelineConfig {
            threads,
            ..PipelineConfig::default()
        },
    )
}

#[test]
fn parallel_build_is_byte_identical_to_serial() {
    let serial = build_with(1);
    let parallel = build_with(8);

    // Same records created, same survivors.
    assert_eq!(serial.store.total_created(), parallel.store.total_created());
    let mut live_s = serial.store.live_ids();
    let mut live_p = parallel.store.live_ids();
    live_s.sort_unstable();
    live_p.sort_unstable();
    assert_eq!(live_s, live_p);
    assert!(!live_s.is_empty(), "fixture must produce records");

    // Same canonical mapping for every id ever created, and identical
    // record contents (values, provenance, confidences) for the survivors.
    for i in 0..serial.store.total_created() as u64 {
        let id = LrecId(i);
        assert_eq!(
            serial.store.resolve(id),
            parallel.store.resolve(id),
            "id {id}"
        );
    }
    for &id in &live_s {
        assert_eq!(
            serial.store.latest(id),
            parallel.store.latest(id),
            "record {id}"
        );
        assert_eq!(
            serial.web.docs_of(id),
            parallel.web.docs_of(id),
            "assocs of {id}"
        );
    }

    // Same document→record associations (covers Mentions added in stage E).
    for url in &serial.doc_urls {
        assert_eq!(
            serial.web.records_of(url),
            parallel.web.records_of(url),
            "{url}"
        );
    }
    let mentions = live_s
        .iter()
        .flat_map(|&id| serial.web.docs_of(id))
        .filter(|(_, k)| *k == AssocKind::Mentions)
        .count();
    assert!(mentions > 0, "fixture must exercise the mention scan");

    // Same index postings, byte for byte.
    assert_eq!(serial.record_index.digest(), parallel.record_index.digest());
    assert_eq!(serial.doc_index.digest(), parallel.doc_index.digest());
    assert_eq!(serial.doc_urls, parallel.doc_urls);
    assert_eq!(serial.doc_titles, parallel.doc_titles);

    // Deterministic report counts; only stage durations may differ.
    assert_eq!(serial.report.pages_scanned, parallel.report.pages_scanned);
    assert_eq!(
        serial.report.lrecs_extracted,
        parallel.report.lrecs_extracted
    );
    assert_eq!(
        serial.report.match_pairs_scored,
        parallel.report.match_pairs_scored
    );
    assert_eq!(
        serial.report.clusters_formed,
        parallel.report.clusters_formed
    );
    assert_eq!(serial.report.mention_links, parallel.report.mention_links);
    let names = |w: &WebOfConcepts| -> Vec<&'static str> {
        w.report.stages.iter().map(|s| s.name).collect()
    };
    assert_eq!(names(&serial), names(&parallel));
}
