//! Property tests for core invariants: lineage DAG laws, uncertainty
//! algebra, taxonomy laws.

use proptest::prelude::*;
use woc_core::lineage::{Lineage, NodeId};
use woc_core::{cluster_purity, group_by_denotation, Taxonomy};
use woc_lrec::{AttrValue, LrecId, Provenance, Tick, ValueEntry};

proptest! {
    /// Lineage stays acyclic and ancestor/descendant views agree, for any
    /// random construction sequence (inputs always drawn from existing
    /// nodes, as the API enforces).
    #[test]
    fn lineage_dag_laws(ops in prop::collection::vec((0u8..3, prop::collection::vec(0usize..64, 0..3)), 1..40)) {
        let mut l = Lineage::new();
        l.document("seed");
        for (kind, inputs) in ops {
            let n = l.len();
            let inputs: Vec<NodeId> = inputs
                .into_iter()
                .map(|i| NodeId((i % n) as u32))
                .collect();
            match kind {
                0 => {
                    l.operator("op", inputs);
                }
                1 => {
                    let producer = inputs.first().copied().unwrap_or(NodeId(0));
                    l.record(LrecId(n as u64), producer);
                }
                _ => {
                    l.document(&format!("doc-{n}"));
                }
            }
        }
        for i in 0..l.len() as u32 {
            let id = NodeId(i);
            let ancestors = l.ancestors(id);
            // Acyclic: a node is never its own ancestor.
            prop_assert!(!ancestors.contains(&id));
            // Ancestors have smaller ids (append-only construction).
            for a in &ancestors {
                prop_assert!(a.0 < id.0);
                prop_assert!(l.descendants(*a).contains(&id));
            }
        }
    }

    /// Noisy-or grouping: combined confidence ≥ max member confidence,
    /// groups are ordered by combined confidence, and support sums to the
    /// number of entries.
    #[test]
    fn denotation_grouping_laws(confs in prop::collection::vec(0.01f64..0.99, 1..12),
                                vals in prop::collection::vec(0u8..4, 1..12)) {
        let n = confs.len().min(vals.len());
        let entries: Vec<ValueEntry> = (0..n)
            .map(|i| ValueEntry {
                value: AttrValue::Text(format!("v{}", vals[i])),
                provenance: Provenance::derived("p", confs[i], Tick(0)),
            })
            .collect();
        let groups = group_by_denotation(&entries);
        let support: usize = groups.iter().map(|g| g.support).sum();
        prop_assert_eq!(support, n);
        for g in &groups {
            prop_assert!(g.combined_confidence <= 1.0 + 1e-9);
            prop_assert!(g.combined_confidence + 1e-9 >= g.entry.provenance.confidence);
        }
        for w in groups.windows(2) {
            prop_assert!(w[0].combined_confidence >= w[1].combined_confidence - 1e-9);
        }
    }

    /// Taxonomy: is_a is reflexive and transitive along declared chains.
    #[test]
    fn taxonomy_laws(chain in prop::collection::vec("[a-h]", 2..8)) {
        let mut t = Taxonomy::new();
        // Build a chain with unique names to avoid accidental cycles.
        let names: Vec<String> = chain.iter().enumerate().map(|(i, c)| format!("{c}{i}")).collect();
        for w in names.windows(2) {
            t.declare(&w[0], &w[1]);
        }
        for (i, n) in names.iter().enumerate() {
            prop_assert!(t.is_a(n, n));
            for ancestor in &names[i + 1..] {
                prop_assert!(t.is_a(n, ancestor), "{n} is_a {ancestor}");
                prop_assert!(!t.is_a(ancestor, n), "no inverse subsumption");
            }
        }
        prop_assert_eq!(t.ancestors(&names[0]).len(), names.len() - 1);
    }

    /// Purity is 1.0 exactly when every cluster is label-pure.
    #[test]
    fn purity_laws(labels in prop::collection::vec(0u8..3, 1..12)) {
        // Singleton clustering is always pure.
        let singletons: Vec<Vec<usize>> = (0..labels.len()).map(|i| vec![i]).collect();
        prop_assert!((cluster_purity(&singletons, &labels) - 1.0).abs() < 1e-12);
        // One big cluster: purity = majority fraction.
        let big = vec![(0..labels.len()).collect::<Vec<_>>()];
        let mut counts = [0usize; 3];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let expected = *counts.iter().max().unwrap() as f64 / labels.len() as f64;
        prop_assert!((cluster_purity(&big, &labels) - expected).abs() < 1e-12);
    }
}
