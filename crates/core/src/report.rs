//! Stage-level instrumentation of a pipeline build.

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-clock time and item count of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// Stage name (stable identifiers, e.g. `"extract"`).
    pub name: &'static str,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
    /// Items the stage processed (pages, records, pairs — per stage).
    pub items: usize,
}

/// Per-site crawl coverage under faults: how many pages the crawl expected
/// from the site, how many arrived, and where the rest went. A healthy
/// crawl has `expected == delivered` everywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteCoverage {
    /// Site hostname.
    pub site: String,
    /// Pages the crawl frontier held for this site.
    pub expected: usize,
    /// Pages fetched cleanly (or with tolerable damage) and built over.
    pub delivered: usize,
    /// Pages quarantined for poisoned content (truncated, garbled).
    pub quarantined: usize,
    /// Pages never delivered (timeouts, errors, open circuit breaker).
    pub failed: usize,
}

impl SiteCoverage {
    /// Delivered fraction of expected pages (1.0 for an empty site).
    pub fn ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }
}

/// What a [`crate::build`] run did and how long each stage took.
///
/// Timings are wall-clock and vary run to run; the counts are deterministic
/// for a given corpus and configuration (at any thread count).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Worker threads the run actually used.
    pub threads: usize,
    /// Corpus pages scanned in extraction.
    pub pages_scanned: usize,
    /// Typed records created from extractions.
    pub lrecs_extracted: usize,
    /// Candidate pairs scored during entity resolution.
    pub match_pairs_scored: usize,
    /// Multi-record clusters merged during entity resolution.
    pub clusters_formed: usize,
    /// Mention associations added by semantic linking.
    pub mention_links: usize,
    /// Pages quarantined for poisoned content during the crawl (0 when the
    /// web was built from a fully delivered corpus).
    pub pages_quarantined: usize,
    /// Pages the crawl could not deliver at all (0 without faults).
    pub pages_failed: usize,
    /// Sites quarantined by the source-reliability model (0 on an honest
    /// web: trust never quarantines without systematic disagreement).
    pub sites_distrusted: usize,
    /// Per-site crawl coverage (empty when the build had no crawl report).
    pub coverage: Vec<SiteCoverage>,
    /// Per-stage timings in execution order.
    pub stages: Vec<StageStat>,
}

impl PipelineReport {
    /// A fresh report for a run with `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Record a finished stage: elapsed time since `*t0`, which is reset to
    /// now so consecutive calls time consecutive stages.
    pub fn stage_done(&mut self, name: &'static str, items: usize, t0: &mut Instant) {
        let now = Instant::now();
        self.stages.push(StageStat {
            name,
            duration: now.duration_since(*t0),
            items,
        });
        *t0 = now;
    }

    /// Total wall-clock across stages.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// True when some site delivered fewer pages than expected — the web
    /// was published over a partial crawl and serves degraded coverage.
    pub fn degraded(&self) -> bool {
        self.coverage.iter().any(|c| c.delivered < c.expected)
    }

    /// Sites with incomplete delivery, worst coverage ratio first.
    pub fn degraded_sites(&self) -> Vec<&SiteCoverage> {
        let mut out: Vec<&SiteCoverage> = self
            .coverage
            .iter()
            .filter(|c| c.delivered < c.expected)
            .collect();
        out.sort_by(|a, b| {
            a.ratio()
                .partial_cmp(&b.ratio())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.site.cmp(&b.site))
        });
        out
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline report: {} threads, {} total",
            self.threads,
            fmt_ms(self.total())
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<12} {:>10}  {:>7} items",
                s.name,
                fmt_ms(s.duration),
                s.items
            )?;
        }
        write!(
            f,
            "  {} pages scanned, {} lrecs extracted, {} pairs scored, {} clusters formed, {} mentions linked",
            self.pages_scanned,
            self.lrecs_extracted,
            self.match_pairs_scored,
            self.clusters_formed,
            self.mention_links
        )?;
        if self.sites_distrusted > 0 {
            write!(
                f,
                "\n  adversarial web: {} sites distrusted by the reliability model",
                self.sites_distrusted
            )?;
        }
        if self.pages_quarantined > 0 || self.pages_failed > 0 {
            write!(
                f,
                "\n  degraded crawl: {} pages quarantined, {} pages failed, {} of {} sites incomplete",
                self.pages_quarantined,
                self.pages_failed,
                self.degraded_sites().len(),
                self.coverage.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_done_times_consecutive_stages() {
        let mut r = PipelineReport::new(2);
        let mut t0 = Instant::now();
        r.stage_done("a", 10, &mut t0);
        r.stage_done("b", 20, &mut t0);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stage("a").unwrap().items, 10);
        assert_eq!(r.stage("b").unwrap().items, 20);
        assert!(r.stage("zzz").is_none());
        assert!(r.total() >= r.stages[0].duration);
    }

    #[test]
    fn coverage_marks_degraded_sites() {
        let mut r = PipelineReport::new(1);
        assert!(!r.degraded(), "empty coverage is healthy");
        r.coverage = vec![
            SiteCoverage {
                site: "a.example.com".into(),
                expected: 10,
                delivered: 10,
                ..SiteCoverage::default()
            },
            SiteCoverage {
                site: "b.example.com".into(),
                expected: 10,
                delivered: 4,
                quarantined: 2,
                failed: 4,
            },
            SiteCoverage {
                site: "c.example.com".into(),
                expected: 10,
                delivered: 9,
                quarantined: 0,
                failed: 1,
            },
        ];
        assert!(r.degraded());
        let worst = r.degraded_sites();
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].site, "b.example.com", "worst ratio first");
        assert!((worst[0].ratio() - 0.4).abs() < 1e-12);
        r.pages_quarantined = 2;
        r.pages_failed = 5;
        let s = r.to_string();
        assert!(s.contains("2 pages quarantined"));
        assert!(s.contains("2 of 3 sites incomplete"));
    }

    #[test]
    fn display_contains_counts() {
        let mut r = PipelineReport::new(4);
        r.pages_scanned = 7;
        r.lrecs_extracted = 3;
        let mut t0 = Instant::now();
        r.stage_done("extract", 7, &mut t0);
        let s = r.to_string();
        assert!(s.contains("4 threads"));
        assert!(s.contains("extract"));
        assert!(s.contains("7 pages scanned"));
        assert!(s.contains("3 lrecs extracted"));
    }
}
