//! Corpus quality assessment (paper §7.3).
//!
//! "For quality assessment, we need to track the uncertainty in the
//! extracted records as data flows through various operators." This module
//! rolls per-record reconciliation quality, schema conformance and sourcing
//! up into a corpus-level [`QualityReport`] — the dashboard an operator of a
//! web of concepts would watch across recrawls.

use std::collections::BTreeMap;

use crate::pipeline::WebOfConcepts;
use crate::uncertainty::{quality_score, reconcile};

/// Quality roll-up for one concept.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConceptQuality {
    /// Live records of the concept.
    pub records: usize,
    /// Mean record quality score (confidence × conflict damping).
    pub mean_quality: f64,
    /// Records with at least one schema violation.
    pub records_with_violations: usize,
    /// Records with at least one unresolved value conflict.
    pub records_with_conflicts: usize,
    /// Records corroborated by ≥2 distinct source documents.
    pub multi_source_records: usize,
}

/// Corpus-wide quality report.
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    /// Per-concept roll-ups, keyed by concept name.
    pub concepts: BTreeMap<String, ConceptQuality>,
}

impl QualityReport {
    /// Total live records covered.
    pub fn total_records(&self) -> usize {
        self.concepts.values().map(|c| c.records).sum()
    }

    /// Corpus-wide mean quality (record-weighted).
    pub fn overall_quality(&self) -> f64 {
        let total = self.total_records();
        if total == 0 {
            return 0.0;
        }
        self.concepts
            .values()
            .map(|c| c.mean_quality * c.records as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Render as a fixed-width table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>8} {:>9} {:>11} {:>10} {:>12}\n",
            "concept", "records", "quality", "violations", "conflicts", "multi-source"
        );
        for (name, q) in &self.concepts {
            out.push_str(&format!(
                "{:<14} {:>8} {:>9.3} {:>11} {:>10} {:>12}\n",
                name,
                q.records,
                q.mean_quality,
                q.records_with_violations,
                q.records_with_conflicts,
                q.multi_source_records
            ));
        }
        out
    }
}

/// Assess the whole corpus.
pub fn assess(woc: &WebOfConcepts) -> QualityReport {
    let mut report = QualityReport::default();
    for id in woc.store.live_ids() {
        let Some(rec) = woc.store.latest(id) else {
            continue;
        };
        let Some(schema) = woc.registry.schema(rec.concept()) else {
            continue;
        };
        let entry = report
            .concepts
            .entry(schema.name().to_string())
            .or_default();
        entry.records += 1;
        let recon = reconcile(rec, schema);
        entry.mean_quality += quality_score(&recon);
        if !schema.check(rec).is_empty() {
            entry.records_with_violations += 1;
        }
        if !recon.conflicts.is_empty() {
            entry.records_with_conflicts += 1;
        }
        if woc.lineage.source_documents(id).len() >= 2 {
            entry.multi_source_records += 1;
        }
    }
    for q in report.concepts.values_mut() {
        if q.records > 0 {
            q.mean_quality /= q.records as f64;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    #[test]
    fn report_covers_all_concepts_with_sane_numbers() {
        let world = World::generate(WorldConfig::tiny(901));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(81));
        let woc = build(&corpus, &PipelineConfig::default());
        let report = assess(&woc);
        assert_eq!(report.total_records(), woc.store.live_count());
        assert!(report.concepts.contains_key("restaurant"));
        for (name, q) in &report.concepts {
            assert!(q.records > 0, "{name} empty");
            assert!(
                (0.0..=1.0).contains(&q.mean_quality),
                "{name} quality {}",
                q.mean_quality
            );
            assert!(q.records_with_violations <= q.records);
            assert!(q.multi_source_records <= q.records);
        }
        // Restaurants appear on several sources, so corroboration shows up.
        let r = &report.concepts["restaurant"];
        assert!(
            r.multi_source_records > 0,
            "merged restaurants are multi-source"
        );
        let rendered = report.render();
        assert!(rendered.contains("restaurant"));
        assert!(report.overall_quality() > 0.3);
    }

    #[test]
    fn empty_web_empty_report() {
        let woc = build(&woc_webgen::WebCorpus::new(), &PipelineConfig::default());
        let report = assess(&woc);
        assert_eq!(report.total_records(), 0);
        assert_eq!(report.overall_quality(), 0.0);
    }
}
