//! Deterministic sharded execution for the construction pipeline.
//!
//! Work is split into contiguous shards, one per worker, and results are
//! re-assembled in shard order — so as long as the per-item function is
//! pure, the output is *identical* to a serial run regardless of the worker
//! count. All pipeline parallelism routes through here to keep that
//! guarantee in one place.

use std::num::NonZeroUsize;

/// Resolve a configured thread count: `0` means all available parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Map `f` over `items` on up to `threads` workers, preserving input order.
///
/// Items are split into contiguous chunks; each worker maps its chunk and
/// the chunk results are concatenated in order, so the output equals
/// `items.iter().map(f).collect()` exactly (for pure `f`) at any thread
/// count.
pub fn shard_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let shards = threads.min(items.len());
    let chunk = items.len().div_ceil(shards);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| {
                let f = &f;
                scope.spawn(move |_| shard.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("pipeline shard worker panicked"));
        }
        out
    })
    .expect("pipeline shard scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_available() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn order_preserved_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 7, 16, 1000, 2000] {
            assert_eq!(shard_map(&items, threads, |x| x * x), serial);
        }
    }

    #[test]
    fn small_and_empty_inputs() {
        assert_eq!(shard_map(&[] as &[u8], 4, |x| *x), Vec::<u8>::new());
        assert_eq!(shard_map(&[5u8], 4, |x| *x + 1), vec![6]);
    }
}
