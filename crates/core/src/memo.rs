//! Content-keyed memo caches for incremental rebuilds (paper §7.3,
//! "managing change").
//!
//! [`BuildCaches`] lets [`crate::pipeline::build_with_caches`] replay the
//! full deterministic pipeline while skipping its expensive pure stages:
//! page extraction, pair scoring, the mention scan, and index
//! construction. Every cache is a *pure-function memo* — keyed only on the
//! content the cached computation reads — so a cached build is
//! byte-identical to a from-scratch build by construction: each stage
//! either recomputes a value or returns exactly what recomputation would
//! have produced.
//!
//! Lookup and insertion are serial; only cache *misses* fan out through
//! [`crate::parallel::shard_map`], so no cache is ever mutated
//! concurrently and results are independent of thread count.
//!
//! Entries untouched by a pass are evicted at its end (generation
//! tagging), so memory tracks the live corpus rather than its history.

// woc-lint: allow-file(slice-index) — every index here comes from
// enumerate() over the very slice being indexed (hit/miss bookkeeping), so
// bounds hold locally by construction.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use woc_extract::ExtractedRecord;
use woc_index::{DocId, InvertedIndex, LrecIndex};
use woc_lrec::{ConceptId, Lrec, LrecId};
use woc_textkit::tokenize::tokenize_words;
use woc_webgen::Page;

use crate::parallel::shard_map;

/// FNV-1a over arbitrary bytes (same constants as the index digests).
#[derive(Debug)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    pub(crate) fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }
    pub(crate) fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }
}

/// Id-free content digest of a record: its concept plus every attribute's
/// entries (values and provenance), excluding the record id itself. Keyed
/// this way, pair-score memos survive id renumbering across epochs — a
/// closed restaurant shifts every later id, but surviving records keep
/// their content digest. Valid only pre-merge (pipeline stage C), where
/// records carry no `Ref` values that would embed ids. A 64-bit digest
/// collision would silently reuse a score; with ~10³ records per pass the
/// collision probability is ~10⁻¹³ — accepted.
pub(crate) fn content_digest(rec: &Lrec) -> u64 {
    let mut h = Fnv::new();
    h.word(u64::from(rec.concept().0));
    for (key, entries) in rec.iter() {
        // Lrec::iter() yields attributes in BTreeMap (sorted) order.
        h.bytes(key.as_bytes());
        h.byte(0xff);
        h.bytes(format!("{entries:?}").as_bytes());
        h.byte(0xfe);
    }
    h.0
}

/// Digest of a sorted, deduplicated name list — the mention-scan memo's
/// target-set key.
pub(crate) fn digest_strs(items: &[&str]) -> u64 {
    let mut h = Fnv::new();
    for s in items {
        h.word(s.len() as u64);
        h.bytes(s.as_bytes());
    }
    h.0
}

/// The tokens [`crate::pipeline::build`] indexes for a page: title plus
/// visible text (must match the fresh-build `add_text` call exactly).
/// Public so shard-local document indexes (`woc-cluster`) can index the
/// exact token sequence the single-node pipeline would.
pub fn doc_tokens(page: &Page) -> Vec<String> {
    tokenize_words(&format!("{} {}", page.title, page.text()))
}

/// One record-index mutation observed by a maintenance pass: the token
/// list a record was indexed under before and after. `None` on one side
/// marks an insertion (`old_tokens`) or a removal (`new_tokens`). These
/// are exactly the changes a segmented index (`woc-index::segment`) must
/// absorb as a delta segment to stay equal to a flat rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordIndexChange {
    /// The record that changed.
    pub id: LrecId,
    /// The concept owning the record (the new owner for upserts, the old
    /// one for removals).
    pub concept: ConceptId,
    /// Tokens the record was indexed under before the pass, if it existed.
    pub old_tokens: Option<Vec<String>>,
    /// Tokens the record is indexed under after the pass, if it survives.
    pub new_tokens: Option<Vec<String>>,
}

/// Diff two record-index entry sequences by record id, in ascending-id
/// order: removals (`old` only), insertions (`new` only), and records
/// whose concept or token list changed.
fn diff_record_entries(
    old: &[(LrecId, ConceptId, Vec<String>)],
    new: &[(LrecId, ConceptId, Vec<String>)],
) -> Vec<RecordIndexChange> {
    let old_by_id: BTreeMap<LrecId, (&ConceptId, &Vec<String>)> =
        old.iter().map(|(id, c, t)| (*id, (c, t))).collect();
    let new_by_id: BTreeMap<LrecId, (&ConceptId, &Vec<String>)> =
        new.iter().map(|(id, c, t)| (*id, (c, t))).collect();
    let mut changes = Vec::new();
    for (id, (concept, tokens)) in &old_by_id {
        if !new_by_id.contains_key(id) {
            changes.push(RecordIndexChange {
                id: *id,
                concept: **concept,
                old_tokens: Some((*tokens).clone()),
                new_tokens: None,
            });
        }
    }
    for (id, (concept, tokens)) in &new_by_id {
        match old_by_id.get(id) {
            None => changes.push(RecordIndexChange {
                id: *id,
                concept: **concept,
                old_tokens: None,
                new_tokens: Some((*tokens).clone()),
            }),
            Some((old_concept, old_tokens)) => {
                if old_concept != concept || old_tokens != tokens {
                    changes.push(RecordIndexChange {
                        id: *id,
                        concept: **concept,
                        old_tokens: Some((*old_tokens).clone()),
                        new_tokens: Some((*tokens).clone()),
                    });
                }
            }
        }
    }
    changes.sort_by_key(|c| c.id);
    changes
}

/// Counters describing what one maintenance pass recomputed vs reused.
/// Reset at the start of each [`crate::pipeline::build_with_caches`] call.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Pages whose extraction was recomputed (fingerprint cache miss).
    pub pages_reextracted: usize,
    /// Pages whose extraction came from the cache.
    pub extract_hits: usize,
    /// Candidate pairs whose match score was recomputed.
    pub pairs_rescored: usize,
    /// Pairs whose score came from the memo.
    pub score_hits: usize,
    /// Pages re-scanned for record mentions.
    pub mention_pages_rescanned: usize,
    /// Pages whose mention scan came from the cache.
    pub mention_hits: usize,
    /// `(term, doc)` postings removed or inserted by index patching.
    pub postings_patched: usize,
    /// Records whose index tokens changed and were patched in place.
    pub records_repatched: usize,
    /// True when the record index could not be patched (record set or
    /// order changed) and was rebuilt from token lists.
    pub record_index_rebuilt: bool,
    /// True when the document index could not be patched (URL sequence
    /// changed) and was rebuilt.
    pub doc_index_rebuilt: bool,
    /// Per-record index mutations this pass, diffed against the previous
    /// pass regardless of whether the index was patched or rebuilt. Empty
    /// on a cold build (no previous pass to diff against).
    pub record_changes: Vec<RecordIndexChange>,
}

#[derive(Debug)]
struct Entry<T> {
    generation: u64,
    value: T,
}

#[derive(Debug)]
struct RecordIndexCache {
    index: LrecIndex,
    /// `(id, concept, tokens)` in internal doc-id order — the exact
    /// sequence the cached index was built from.
    entries: Vec<(LrecId, ConceptId, Vec<String>)>,
}

#[derive(Debug)]
struct DocIndexCache {
    index: InvertedIndex,
    urls: Vec<String>,
    fps: Vec<u64>,
    tokens: Vec<Vec<String>>,
}

/// Memo caches carried across [`crate::pipeline::build_with_caches`] runs
/// by an incremental-maintenance engine.
#[derive(Debug, Default)]
pub struct BuildCaches {
    generation: u64,
    /// page fingerprint → extraction output (shared, not re-cloned, on hits).
    extract: HashMap<u64, Entry<Arc<Vec<ExtractedRecord>>>>,
    /// (concept, left content digest, right content digest) → match score.
    scores: HashMap<(u32, u64, u64), Entry<f64>>,
    /// (page fingerprint, target-name-set digest) → matched names.
    mentions: HashMap<(u64, u64), Entry<Arc<Vec<String>>>>,
    /// page fingerprint → normalized "also bought" anchor names.
    also: HashMap<u64, Entry<Arc<Vec<String>>>>,
    record_index: Option<RecordIndexCache>,
    doc_index: Option<DocIndexCache>,
    stats: CacheStats,
}

impl BuildCaches {
    /// Empty caches: the first build through them is a full (cold) build
    /// that warms every memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters of the most recent pass through these caches.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Start a pass: bump the generation (entries reused during the pass
    /// are re-tagged with it) and reset the per-pass counters.
    pub(crate) fn begin_pass(&mut self) {
        self.generation += 1;
        self.stats = CacheStats::default();
    }

    /// End a pass: evict every memo entry the pass did not touch, so
    /// content that vanished from the corpus does not accumulate forever.
    pub(crate) fn end_pass(&mut self) {
        let generation = self.generation;
        self.extract.retain(|_, e| e.generation == generation);
        self.scores.retain(|_, e| e.generation == generation);
        self.mentions.retain(|_, e| e.generation == generation);
        self.also.retain(|_, e| e.generation == generation);
    }

    /// Pre-seed the extraction memo with an externally computed result for
    /// the page whose fingerprint is `fp`. The streaming ingest dataflow
    /// (`woc-stream`) extracts pages in its own pipelined workers as they
    /// arrive; seeding the memo lets the micro-epoch replay hit instead of
    /// re-extracting. The caller certifies the purity contract every memo
    /// relies on: `records` is exactly what [`Self::memo_extract`]'s `f`
    /// would produce for a page with this fingerprint. The entry is tagged
    /// with the *current* generation; if the next pass never reads it, the
    /// end-of-pass eviction drops it like any other stale entry.
    pub fn seed_extract(&mut self, fp: u64, records: Arc<Vec<ExtractedRecord>>) {
        self.extract.insert(
            fp,
            Entry {
                generation: self.generation,
                value: records,
            },
        );
    }

    /// Memoized page extraction: pages whose fingerprint is cached reuse
    /// the cached records; only misses run `f` (sharded).
    pub(crate) fn memo_extract(
        &mut self,
        fps: &[u64],
        pages: &[&Page],
        threads: usize,
        f: impl Fn(&Page) -> Vec<ExtractedRecord> + Sync,
    ) -> Vec<Arc<Vec<ExtractedRecord>>> {
        let generation = self.generation;
        let mut out: Vec<Option<Arc<Vec<ExtractedRecord>>>> = Vec::with_capacity(pages.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, &fp) in fps.iter().enumerate() {
            match self.extract.get_mut(&fp) {
                Some(e) => {
                    e.generation = generation;
                    self.stats.extract_hits += 1;
                    out.push(Some(Arc::clone(&e.value)));
                }
                None => {
                    miss_idx.push(i);
                    out.push(None);
                }
            }
        }
        let miss_pages: Vec<&Page> = miss_idx.iter().map(|&i| pages[i]).collect();
        let computed = shard_map(&miss_pages, threads, |p| f(p));
        for (&i, recs) in miss_idx.iter().zip(computed) {
            let recs = Arc::new(recs);
            self.extract.insert(
                fps[i],
                Entry {
                    generation,
                    value: Arc::clone(&recs),
                },
            );
            out[i] = Some(recs);
            self.stats.pages_reextracted += 1;
        }
        out.into_iter()
            .map(|v| v.expect("invariant: every page is either a hit or a filled miss"))
            .collect()
    }

    /// Memoized "also bought" anchor scan: the normalized anchor names in a
    /// page's also-bought sections, a pure function of page content alone.
    /// Resolution of those names against the current product records
    /// replays outside the memo.
    pub(crate) fn memo_also(
        &mut self,
        fps: &[u64],
        pages: &[&Page],
        threads: usize,
        scan: impl Fn(&Page) -> Vec<String> + Sync,
    ) -> Vec<Arc<Vec<String>>> {
        let generation = self.generation;
        let mut out: Vec<Option<Arc<Vec<String>>>> = Vec::with_capacity(pages.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, &fp) in fps.iter().enumerate() {
            match self.also.get_mut(&fp) {
                Some(e) => {
                    e.generation = generation;
                    out.push(Some(Arc::clone(&e.value)));
                }
                None => {
                    miss_idx.push(i);
                    out.push(None);
                }
            }
        }
        let miss_pages: Vec<&Page> = miss_idx.iter().map(|&i| pages[i]).collect();
        let computed = shard_map(&miss_pages, threads, |p| scan(p));
        for (&i, names) in miss_idx.iter().zip(computed) {
            let names = Arc::new(names);
            self.also.insert(
                fps[i],
                Entry {
                    generation,
                    value: Arc::clone(&names),
                },
            );
            out[i] = Some(names);
        }
        out.into_iter()
            .map(|v| v.expect("invariant: every page is either a hit or a filled miss"))
            .collect()
    }

    /// Memoized pair scoring for one concept. `digests[i]` is the id-free
    /// content digest of record `i`; `score(i, j)` computes a miss.
    pub(crate) fn memo_scores(
        &mut self,
        concept: u32,
        digests: &[u64],
        pairs: &[(usize, usize)],
        threads: usize,
        score: impl Fn(usize, usize) -> f64 + Sync,
    ) -> Vec<(usize, usize, f64)> {
        let generation = self.generation;
        let mut out: Vec<(usize, usize, f64)> = Vec::with_capacity(pairs.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (n, &(i, j)) in pairs.iter().enumerate() {
            match self.scores.get_mut(&(concept, digests[i], digests[j])) {
                Some(e) => {
                    e.generation = generation;
                    self.stats.score_hits += 1;
                    out.push((i, j, e.value));
                }
                None => {
                    miss_idx.push(n);
                    out.push((i, j, 0.0)); // placeholder, overwritten below
                }
            }
        }
        let computed = shard_map(&miss_idx, threads, |&n| {
            let (i, j) = pairs[n];
            score(i, j)
        });
        for (&n, s) in miss_idx.iter().zip(computed) {
            let (i, j) = pairs[n];
            self.scores.insert(
                (concept, digests[i], digests[j]),
                Entry {
                    generation,
                    value: s,
                },
            );
            out[n].2 = s;
            self.stats.pairs_rescored += 1;
        }
        out
    }

    /// Memoized mention scan: for each page, the subset of `names` (the
    /// sorted, deduplicated target names whose digest is `names_digest`)
    /// whose normalized form occurs in the page text. The id-dependent
    /// filtering that build applies on top replays outside the memo.
    pub(crate) fn memo_mentions(
        &mut self,
        fps: &[u64],
        pages: &[&Page],
        names_digest: u64,
        threads: usize,
        scan: impl Fn(&Page) -> Vec<String> + Sync,
    ) -> Vec<Arc<Vec<String>>> {
        let generation = self.generation;
        let mut out: Vec<Option<Arc<Vec<String>>>> = Vec::with_capacity(pages.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, &fp) in fps.iter().enumerate() {
            match self.mentions.get_mut(&(fp, names_digest)) {
                Some(e) => {
                    e.generation = generation;
                    self.stats.mention_hits += 1;
                    out.push(Some(Arc::clone(&e.value)));
                }
                None => {
                    miss_idx.push(i);
                    out.push(None);
                }
            }
        }
        let miss_pages: Vec<&Page> = miss_idx.iter().map(|&i| pages[i]).collect();
        let computed = shard_map(&miss_pages, threads, |p| scan(p));
        for (&i, names) in miss_idx.iter().zip(computed) {
            let names = Arc::new(names);
            self.mentions.insert(
                (fps[i], names_digest),
                Entry {
                    generation,
                    value: Arc::clone(&names),
                },
            );
            out[i] = Some(names);
            self.stats.mention_pages_rescanned += 1;
        }
        out.into_iter()
            .map(|v| v.expect("invariant: every page is either a hit or a filled miss"))
            .collect()
    }

    /// Build — or patch — the record index for the live-record sequence
    /// `entries` (in the order a fresh build would add them). Patching
    /// requires the `(id, concept)` sequence to be unchanged: a record
    /// insertion or removal renumbers every later internal doc id, in
    /// which case the index is rebuilt from the token lists.
    pub(crate) fn record_index_with(
        &mut self,
        entries: Vec<(LrecId, ConceptId, Vec<String>)>,
    ) -> LrecIndex {
        if let Some(cache) = self.record_index.as_mut() {
            let same_sequence = cache.entries.len() == entries.len()
                && cache
                    .entries
                    .iter()
                    .zip(&entries)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1);
            if same_sequence {
                for (old, new) in cache.entries.iter().zip(&entries) {
                    if old.2 != new.2 {
                        self.stats.postings_patched += cache.index.replace(new.0, &old.2, &new.2);
                        self.stats.records_repatched += 1;
                        self.stats.record_changes.push(RecordIndexChange {
                            id: new.0,
                            concept: new.1,
                            old_tokens: Some(old.2.clone()),
                            new_tokens: Some(new.2.clone()),
                        });
                    }
                }
                cache.entries = entries;
                return cache.index.clone();
            }
        }
        if let Some(cache) = self.record_index.as_ref() {
            self.stats.record_changes = diff_record_entries(&cache.entries, &entries);
        }
        self.stats.record_index_rebuilt = true;
        let mut index = LrecIndex::new();
        for (id, concept, tokens) in &entries {
            index.add_record_tokens(*id, *concept, tokens);
        }
        self.record_index = Some(RecordIndexCache {
            index: index.clone(),
            entries,
        });
        index
    }

    /// Build — or patch — the document index for `pages` (whose
    /// fingerprints are `fps`). Patching requires the URL sequence to be
    /// unchanged; only pages with a changed fingerprint are re-tokenized
    /// and patched in place.
    pub(crate) fn doc_index_with(
        &mut self,
        pages: &[&Page],
        fps: &[u64],
        threads: usize,
    ) -> InvertedIndex {
        let same_urls = self.doc_index.as_ref().is_some_and(|c| {
            c.urls.len() == pages.len() && c.urls.iter().zip(pages).all(|(u, p)| *u == p.url)
        });
        if same_urls {
            let cache = self
                .doc_index
                .as_mut()
                .expect("invariant: same_urls implies a cached doc index");
            for (i, page) in pages.iter().enumerate() {
                if cache.fps[i] != fps[i] {
                    let new_tokens = doc_tokens(page);
                    // A changed fingerprint does not imply changed *text*: a
                    // cosmetic DOM edit (attribute churn, invisible markup)
                    // re-fingerprints the page while tokenizing identically.
                    // Skipping the no-op patch keeps `postings_patched` an
                    // honest signal of real index change.
                    if new_tokens != cache.tokens[i] {
                        self.stats.postings_patched +=
                            cache
                                .index
                                .replace_doc(DocId(i as u32), &cache.tokens[i], &new_tokens);
                        cache.tokens[i] = new_tokens;
                    }
                    cache.fps[i] = fps[i];
                }
            }
            return cache.index.clone();
        }
        self.stats.doc_index_rebuilt = true;
        let tokens: Vec<Vec<String>> = shard_map(pages, threads, |p| doc_tokens(p));
        let mut index = InvertedIndex::new();
        for t in &tokens {
            index.add_tokens(t);
        }
        self.doc_index = Some(DocIndexCache {
            index: index.clone(),
            urls: pages.iter().map(|p| p.url.clone()).collect(),
            fps: fps.to_vec(),
            tokens,
        });
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_drops_untouched_entries() {
        let mut c = BuildCaches::new();
        c.begin_pass();
        let _ = c.memo_scores(0, &[10, 20], &[(0, 1)], 1, |_, _| 1.5);
        assert_eq!(c.stats().pairs_rescored, 1);
        // Next pass touches a different pair: the old entry must be evicted.
        c.begin_pass();
        let _ = c.memo_scores(0, &[30, 40], &[(0, 1)], 1, |_, _| 2.5);
        c.end_pass();
        assert_eq!(c.scores.len(), 1);
        // The surviving key is the touched one.
        assert!(c.scores.contains_key(&(0, 30, 40)));
    }

    #[test]
    fn score_memo_hits_are_returned_verbatim() {
        let mut c = BuildCaches::new();
        c.begin_pass();
        let first = c.memo_scores(7, &[1, 2, 3], &[(0, 1), (1, 2)], 1, |i, j| (i + j) as f64);
        c.begin_pass();
        // Same digests: the scorer must not be consulted at all.
        let second = c.memo_scores(7, &[1, 2, 3], &[(0, 1), (1, 2)], 1, |_, _| f64::NAN);
        assert_eq!(first, second);
        assert_eq!(c.stats().score_hits, 2);
        assert_eq!(c.stats().pairs_rescored, 0);
    }
}
