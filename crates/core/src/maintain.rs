//! Incremental maintenance under change (paper §7.3).
//!
//! "There is an obvious efficiency challenge in processing the same web
//! pages repeatedly without re-incurring the full cost of extraction when
//! the page is not modified in a material way. … When we process new or
//! updated documents, we need to link them to the existing records to
//! correctly update existing records rather than create new ones."
//!
//! [`recrawl`] diffs the old and new corpus, re-extracts only changed pages,
//! and routes new values onto *existing* records through the
//! record↔document associations (instead of creating duplicates), recording
//! everything in lineage. The returned [`MaintenanceReport`] carries the
//! cost accounting that experiment S6 compares against a full rebuild.

use std::collections::HashMap;

use woc_extract::lists::ConceptProfile;
use woc_lrec::{AttrValue, Provenance, Tick};
use woc_webgen::WebCorpus;

use crate::graph::AssocKind;
use crate::pipeline::{extract_page, type_value, WebOfConcepts};

/// What a maintenance pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintenanceReport {
    /// Pages in the new crawl.
    pub pages_total: usize,
    /// Pages whose DOM changed (or are new) and were re-extracted.
    pub pages_reprocessed: usize,
    /// Existing records that received updated values.
    pub records_updated: usize,
    /// Records newly created (content with no existing record).
    pub records_created: usize,
    /// Records tombstoned because every page they were extracted from
    /// vanished from the crawl.
    pub records_retracted: usize,
}

impl MaintenanceReport {
    /// Fraction of full-rebuild extraction work spent.
    pub fn cost_ratio(&self) -> f64 {
        if self.pages_total == 0 {
            0.0
        } else {
            self.pages_reprocessed as f64 / self.pages_total as f64
        }
    }
}

/// Incrementally maintain `woc` given the previous and the freshly crawled
/// corpus. Only pages whose DOM differs are re-extracted; their values are
/// applied to the records already associated with those pages.
pub fn recrawl(
    woc: &mut WebOfConcepts,
    old: &WebCorpus,
    new: &WebCorpus,
    tick: Tick,
) -> MaintenanceReport {
    let profiles = ConceptProfile::standard();
    // Strictly-increasing clock starting after both the requested tick and
    // everything already in the store.
    let mut clock = tick.max(woc.store.max_tick());
    let mut next_tick = move || {
        clock = clock.next();
        clock
    };
    let mut report = MaintenanceReport {
        pages_total: new.len(),
        ..Default::default()
    };

    for page in new.pages() {
        let changed = match old.get(&page.url) {
            Some(old_page) => old_page.dom != page.dom,
            None => true,
        };
        if !changed {
            continue;
        }
        report.pages_reprocessed += 1;

        let doc_node = woc.lineage.document(&page.url);
        let op = woc
            .lineage
            .operator("incremental-extractor", vec![doc_node]);

        // Existing records extracted from this page, resolved through merges.
        let existing: Vec<woc_lrec::LrecId> = woc
            .web
            .records_of(&page.url)
            .iter()
            .filter(|(_, k)| *k == AssocKind::ExtractedFrom)
            .filter_map(|(r, _)| woc.store.resolve(*r))
            .collect();

        let extractions = extract_page(page, &profiles);
        for rec in &extractions {
            let Some(concept_name) = rec.concept.as_deref() else {
                continue;
            };
            let Some(cid) = woc.registry.id_of(concept_name) else {
                continue;
            };
            // Route onto an existing record of the same concept from this
            // page when one exists; otherwise create.
            let target = existing
                .iter()
                .copied()
                .find(|&id| woc.store.latest(id).is_some_and(|r| r.concept() == cid));
            match target {
                Some(id) => {
                    let mut touched = false;
                    let fields: HashMap<&str, Vec<&str>> = {
                        let mut m: HashMap<&str, Vec<&str>> = HashMap::new();
                        for (k, v) in &rec.fields {
                            m.entry(k.as_str()).or_default().push(v.as_str());
                        }
                        m
                    };
                    let current = woc
                        .store
                        .latest(id)
                        .expect("invariant: live_ids() yields ids with a latest version")
                        .clone();
                    let mut updates: Vec<(String, Vec<AttrValue>)> = Vec::new();
                    for (field, raws) in fields {
                        let new_vals: Vec<AttrValue> =
                            raws.iter().map(|r| type_value(field, r)).collect();
                        let old_vals = current.get(field);
                        let same = old_vals.len() == new_vals.len()
                            && new_vals
                                .iter()
                                .all(|nv| old_vals.iter().any(|ov| ov.value.same_denotation(nv)));
                        if !same {
                            updates.push((field.to_string(), new_vals));
                            touched = true;
                        }
                    }
                    if touched {
                        let t = next_tick();
                        woc.store
                            .update(id, t, |r| {
                                for (field, vals) in &updates {
                                    r.remove(field);
                                    for v in vals {
                                        r.add(
                                            field,
                                            v.clone(),
                                            Provenance::extracted(
                                                &page.url,
                                                "incremental-extractor",
                                                rec.confidence,
                                                t,
                                            ),
                                        );
                                    }
                                }
                            })
                            .expect("incremental update");
                        woc.lineage.record(id, op);
                        report.records_updated += 1;
                    }
                }
                None => {
                    let t = next_tick();
                    let id = woc.store.insert(cid, t, |r| {
                        for (field, raw) in &rec.fields {
                            r.add(
                                field,
                                type_value(field, raw),
                                Provenance::extracted(
                                    &page.url,
                                    "incremental-extractor",
                                    rec.confidence,
                                    t,
                                ),
                            );
                        }
                    });
                    woc.lineage.record(id, op);
                    woc.web.associate(id, &page.url, AssocKind::ExtractedFrom);
                    report.records_created += 1;
                }
            }
        }
    }

    // Tombstone records whose every source page vanished from the crawl:
    // content that no longer exists anywhere must not stay live (audit
    // check W011). Records with at least one surviving source — or none at
    // all (feed-ingested) — are kept.
    let removed: std::collections::HashSet<&str> = old
        .pages()
        .iter()
        .filter(|p| new.get(&p.url).is_none())
        .map(|p| p.url.as_str())
        .collect();
    if !removed.is_empty() {
        let victims: Vec<woc_lrec::LrecId> = woc
            .store
            .live_ids()
            .into_iter()
            .filter(|&id| {
                let docs = woc.web.docs_of_kind(id, AssocKind::ExtractedFrom);
                !docs.is_empty() && docs.iter().all(|d| removed.contains(d))
            })
            .collect();
        for id in victims {
            woc.store
                .retract(id)
                .expect("invariant: live_ids() yields retractable records");
            woc.web.remove_record(id);
            report.records_retracted += 1;
        }
    }

    // Rebuild the record index (segment-rebuild model).
    let mut index = woc_index::LrecIndex::new();
    for id in woc.store.live_ids() {
        index.add(
            woc.store
                .latest(id)
                .expect("invariant: live_ids() yields ids with a latest version"),
        );
    }
    woc.record_index = index;

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build, PipelineConfig};
    use woc_lrec::AttrValue;
    use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

    #[test]
    fn unchanged_corpus_is_free() {
        let world = World::generate(WorldConfig::tiny(211));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(13));
        let mut woc = build(&corpus, &PipelineConfig::default());
        let report = recrawl(&mut woc, &corpus, &corpus, Tick(50));
        assert_eq!(report.pages_reprocessed, 0);
        assert_eq!(report.records_updated, 0);
        assert_eq!(report.cost_ratio(), 0.0);
    }

    #[test]
    fn churn_triggers_partial_reprocessing_and_updates() {
        let cfg = CorpusConfig::tiny(14);
        let mut world = World::generate(WorldConfig::tiny(212));
        let corpus_v1 = generate_corpus(&world, &cfg);
        let mut woc = build(&corpus_v1, &PipelineConfig::default());
        let before_live = woc.store.live_count();

        // Change some phone numbers/hours in the world and recrawl.
        let events = churn_restaurants(&mut world, 0.4, Tick(10), 99);
        assert!(!events.is_empty());
        let corpus_v2 = generate_corpus(&world, &cfg);
        let report = recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(60));

        assert!(report.pages_reprocessed > 0, "changed pages reprocessed");
        assert!(
            report.pages_reprocessed < report.pages_total,
            "incremental: {} of {} pages",
            report.pages_reprocessed,
            report.pages_total
        );
        assert!(
            report.records_updated > 0,
            "existing records updated in place"
        );
        // No duplicate explosion: new records only for genuinely new content.
        assert!(
            woc.store.live_count() <= before_live + report.records_created,
            "maintenance must not duplicate records"
        );
    }

    #[test]
    fn vanished_pages_tombstone_their_records() {
        let cfg = CorpusConfig::tiny(16);
        let world = World::generate(WorldConfig::tiny(214));
        let corpus_v1 = generate_corpus(&world, &cfg);
        let mut woc = build(&corpus_v1, &PipelineConfig::default());

        // Pick a live extracted record and delete every page it came from.
        let victim = woc
            .store
            .live_ids()
            .into_iter()
            .find(|&id| {
                !woc.web
                    .docs_of_kind(id, AssocKind::ExtractedFrom)
                    .is_empty()
            })
            .expect("fixture has extracted records");
        let doomed: std::collections::HashSet<String> = woc
            .web
            .docs_of_kind(victim, AssocKind::ExtractedFrom)
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut corpus_v2 = WebCorpus::new();
        for p in corpus_v1.pages() {
            if !doomed.contains(&p.url) {
                corpus_v2.add(p.clone());
            }
        }
        let report = recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(60));

        assert!(report.records_retracted >= 1);
        assert!(
            woc.store.resolve(victim).is_none(),
            "record without surviving sources must be retracted"
        );
        assert!(!woc.store.live_ids().contains(&victim));
        assert!(
            woc.web.docs_of(victim).is_empty(),
            "its associations must be scrubbed"
        );
        assert!(
            !woc.record_index.indexed_ids().contains(&victim),
            "its postings must be gone"
        );
    }

    #[test]
    fn updated_phone_lands_on_existing_record() {
        let cfg = CorpusConfig::tiny(15);
        let mut world = World::generate(WorldConfig::tiny(213));
        let corpus_v1 = generate_corpus(&world, &cfg);
        let mut woc = build(&corpus_v1, &PipelineConfig::default());

        // Find a restaurant whose phone churns.
        let events = churn_restaurants(&mut world, 0.8, Tick(10), 7);
        let phone_change = events.iter().find_map(|e| match e {
            woc_webgen::ChurnEvent::PhoneChanged(id, p) => Some((*id, p.clone())),
            _ => None,
        });
        let Some((world_id, new_phone)) = phone_change else {
            panic!("no phone churn at rate 0.8");
        };
        let name = world.attr(world_id, "name");
        let corpus_v2 = generate_corpus(&world, &cfg);
        recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(60));

        // Some live record with that name now carries the new phone, and it
        // is a pre-existing record (updated in place, not a duplicate).
        let carriers: Vec<_> = woc
            .store
            .by_concept(woc.concepts.restaurant)
            .into_iter()
            .filter_map(|id| woc.store.latest(id))
            .filter(|r| {
                r.best_string("name").unwrap_or_default().contains(&name)
                    && r.get("phone").iter().any(|e| match &e.value {
                        AttrValue::Phone(p) => *p == new_phone,
                        _ => false,
                    })
            })
            .collect();
        assert!(
            !carriers.is_empty(),
            "some record named {name} should carry churned phone {new_phone}"
        );
        assert!(
            carriers.iter().any(|r| woc.store.num_versions(r.id()) > 1),
            "the carrier should be an updated pre-existing record"
        );
    }
}
