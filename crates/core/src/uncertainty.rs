//! Uncertainty propagation and value reconciliation (paper §7.3).
//!
//! "Building a web of concepts will be an inherently noisy process since
//! several operators … produce probabilistic/uncertain output. … the
//! extracted information will often be inconsistent and will need to be
//! reconciled to meet integrity constraints."
//!
//! Values asserted by several independent sources are grouped by denotation
//! and their confidences combined by noisy-or (corroboration raises
//! confidence); the per-attribute cardinality from the concept schema then
//! selects the top value groups, and losers are reported as
//! [`Conflict`]s so applications can explain disagreements.

use woc_lrec::provenance::noisy_or;
use woc_lrec::{Cardinality, ConceptSchema, Lrec, ValueEntry};

/// A reconciled attribute value with its combined confidence and supports.
#[derive(Debug, Clone)]
pub struct ReconciledValue {
    /// The representative entry (highest-confidence member of the group).
    pub entry: ValueEntry,
    /// Combined (noisy-or) confidence over all corroborating sources.
    pub combined_confidence: f64,
    /// Number of corroborating assertions.
    pub support: usize,
}

/// A conflict: a value group that lost reconciliation under the cardinality
/// constraint.
#[derive(Debug, Clone)]
pub struct Conflict {
    /// The attribute.
    pub attr: String,
    /// Display of the losing value.
    pub losing_value: String,
    /// Its combined confidence.
    pub confidence: f64,
    /// Display of the winning value it conflicts with.
    pub winning_value: String,
}

/// Result of reconciling one record.
#[derive(Debug, Clone, Default)]
pub struct Reconciliation {
    /// Kept values per attribute (attribute, reconciled values).
    pub kept: Vec<(String, Vec<ReconciledValue>)>,
    /// Dropped conflicting values.
    pub conflicts: Vec<Conflict>,
}

/// Group an attribute's entries by denotation and combine confidences.
pub fn group_by_denotation(entries: &[ValueEntry]) -> Vec<ReconciledValue> {
    let mut groups: Vec<Vec<&ValueEntry>> = Vec::new();
    for e in entries {
        match groups
            .iter_mut()
            .find(|g| g[0].value.same_denotation(&e.value))
        {
            Some(g) => g.push(e),
            None => groups.push(vec![e]),
        }
    }
    let mut out: Vec<ReconciledValue> = groups
        .into_iter()
        .map(|g| {
            let combined = noisy_or(g.iter().map(|e| e.provenance.confidence));
            let best = g
                .iter()
                .max_by(|a, b| {
                    a.provenance
                        .confidence
                        .partial_cmp(&b.provenance.confidence)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("invariant: denotation groups are non-empty");
            ReconciledValue {
                entry: (*best).clone(),
                combined_confidence: combined,
                support: g.len(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.combined_confidence
            .partial_cmp(&a.combined_confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Reconcile a record against its schema: per attribute, keep the top
/// groups allowed by the cardinality and report the rest as conflicts.
/// Attributes not in the schema are treated as `Many` (loose model).
pub fn reconcile(rec: &Lrec, schema: &ConceptSchema) -> Reconciliation {
    let mut result = Reconciliation::default();
    for (attr, entries) in rec.iter() {
        let groups = group_by_denotation(entries);
        let cardinality = schema
            .attr(attr)
            .map(|s| s.cardinality)
            .unwrap_or(Cardinality::Many);
        let limit = match cardinality {
            Cardinality::One => 1,
            Cardinality::AtMost(k) => k as usize,
            Cardinality::Many => usize::MAX,
        };
        let (kept, dropped) = if groups.len() > limit {
            let (a, b) = groups.split_at(limit);
            (a.to_vec(), b.to_vec())
        } else {
            (groups, Vec::new())
        };
        let winner = kept
            .first()
            .map(|v| v.entry.value.display_string())
            .unwrap_or_default();
        for d in dropped {
            result.conflicts.push(Conflict {
                attr: attr.to_string(),
                losing_value: d.entry.value.display_string(),
                confidence: d.combined_confidence,
                winning_value: winner.clone(),
            });
        }
        result.kept.push((attr.to_string(), kept));
    }
    result
}

/// Apply a reconciliation back onto a record: replace each attribute's
/// entries with the kept representatives, stamping the combined confidence.
pub fn apply_reconciliation(rec: &mut Lrec, recon: &Reconciliation, operator: &str) {
    for (attr, values) in &recon.kept {
        rec.remove(attr);
        for v in values {
            let mut prov = v.entry.provenance.clone();
            prov.confidence = v.combined_confidence;
            prov.operator = operator.to_string();
            rec.add(attr, v.entry.value.clone(), prov);
        }
    }
}

/// Overall record quality: mean combined confidence of kept values, damped
/// by the fraction of conflicting attributes.
pub fn quality_score(recon: &Reconciliation) -> f64 {
    let values: Vec<f64> = recon
        .kept
        .iter()
        .flat_map(|(_, vs)| vs.iter().map(|v| v.combined_confidence))
        .collect();
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let conflict_attrs: std::collections::HashSet<&str> =
        recon.conflicts.iter().map(|c| c.attr.as_str()).collect();
    let damp = 1.0 - 0.5 * (conflict_attrs.len() as f64 / recon.kept.len().max(1) as f64);
    mean * damp
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{AttrKind, AttrSpec, AttrValue, ConceptId, LrecId, Provenance, Tick};

    fn schema() -> ConceptSchema {
        ConceptSchema::new(
            ConceptId(0),
            "restaurant",
            vec![
                AttrSpec::new("zip", AttrKind::Zip, Cardinality::One),
                AttrSpec::new("phone", AttrKind::Phone, Cardinality::AtMost(2)),
                AttrSpec::new("name", AttrKind::Text, Cardinality::One),
            ],
        )
    }

    fn entry(v: AttrValue, c: f64) -> ValueEntry {
        ValueEntry {
            value: v,
            provenance: Provenance::derived("test", c, Tick(0)),
        }
    }

    #[test]
    fn corroboration_raises_confidence() {
        let groups = group_by_denotation(&[
            entry(AttrValue::Zip("95014".into()), 0.6),
            entry(AttrValue::Zip("95014".into()), 0.6),
            entry(AttrValue::Zip("99999".into()), 0.7),
        ]);
        assert_eq!(groups.len(), 2);
        // Two 0.6 assertions beat one 0.7 assertion: 1-(0.4)² = 0.84.
        assert!((groups[0].combined_confidence - 0.84).abs() < 1e-9);
        assert_eq!(groups[0].support, 2);
        assert_eq!(groups[0].entry.value, AttrValue::Zip("95014".into()));
    }

    #[test]
    fn denotation_groups_cross_formats() {
        let groups = group_by_denotation(&[
            entry(AttrValue::Phone("4085550134".into()), 0.5),
            entry(AttrValue::Text("(408) 555-0134".into()), 0.5),
        ]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].support, 2);
    }

    #[test]
    fn reconcile_enforces_cardinality_and_reports_conflicts() {
        let mut r = Lrec::new(LrecId(1), ConceptId(0));
        r.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("a", 0.9, Tick(0)),
        );
        r.add(
            "zip",
            AttrValue::Zip("60601".into()),
            Provenance::derived("b", 0.4, Tick(0)),
        );
        let recon = reconcile(&r, &schema());
        let zips = &recon.kept.iter().find(|(k, _)| k == "zip").unwrap().1;
        assert_eq!(zips.len(), 1);
        assert_eq!(zips[0].entry.value, AttrValue::Zip("95014".into()));
        assert_eq!(recon.conflicts.len(), 1);
        assert_eq!(recon.conflicts[0].losing_value, "60601");
        assert_eq!(recon.conflicts[0].winning_value, "95014");
    }

    #[test]
    fn unknown_attrs_kept_loosely() {
        let mut r = Lrec::new(LrecId(1), ConceptId(0));
        r.add(
            "parking",
            AttrValue::Text("street".into()),
            Provenance::derived("a", 0.5, Tick(0)),
        );
        r.add(
            "parking",
            AttrValue::Text("valet".into()),
            Provenance::derived("b", 0.5, Tick(0)),
        );
        let recon = reconcile(&r, &schema());
        let parking = &recon.kept.iter().find(|(k, _)| k == "parking").unwrap().1;
        assert_eq!(parking.len(), 2, "Many cardinality keeps all groups");
        assert!(recon.conflicts.is_empty());
    }

    #[test]
    fn apply_reconciliation_rewrites_record() {
        let mut r = Lrec::new(LrecId(1), ConceptId(0));
        r.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("a", 0.6, Tick(0)),
        );
        r.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("b", 0.6, Tick(0)),
        );
        r.add(
            "zip",
            AttrValue::Zip("60601".into()),
            Provenance::derived("c", 0.3, Tick(0)),
        );
        let recon = reconcile(&r, &schema());
        apply_reconciliation(&mut r, &recon, "reconciler");
        assert_eq!(r.get("zip").len(), 1);
        let e = &r.get("zip")[0];
        assert!((e.provenance.confidence - 0.84).abs() < 1e-9);
        assert_eq!(e.provenance.operator, "reconciler");
    }

    #[test]
    fn quality_reflects_conflicts() {
        let mut clean = Lrec::new(LrecId(1), ConceptId(0));
        clean.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("a", 0.9, Tick(0)),
        );
        let mut dirty = clean.clone();
        dirty.add(
            "zip",
            AttrValue::Zip("60601".into()),
            Provenance::derived("b", 0.8, Tick(0)),
        );
        let q_clean = quality_score(&reconcile(&clean, &schema()));
        let q_dirty = quality_score(&reconcile(&dirty, &schema()));
        assert!(q_clean > q_dirty, "{q_clean} vs {q_dirty}");
    }

    #[test]
    fn empty_record_zero_quality() {
        let r = Lrec::new(LrecId(1), ConceptId(0));
        assert_eq!(quality_score(&reconcile(&r, &schema())), 0.0);
    }
}
