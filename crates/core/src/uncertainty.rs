//! Uncertainty propagation and value reconciliation (paper §7.3).
//!
//! "Building a web of concepts will be an inherently noisy process since
//! several operators … produce probabilistic/uncertain output. … the
//! extracted information will often be inconsistent and will need to be
//! reconciled to meet integrity constraints."
//!
//! Values asserted by several independent sources are grouped by denotation
//! and their confidences combined by noisy-or (corroboration raises
//! confidence); the per-attribute cardinality from the concept schema then
//! selects the top value groups, and losers are reported as
//! [`Conflict`]s so applications can explain disagreements.

use woc_lrec::provenance::noisy_or;
use woc_lrec::{Cardinality, ConceptSchema, Lrec, SiteSupport, ValueEntry};
use woc_webgen::page::url_host;

use crate::trust::TrustModel;

/// A reconciled attribute value with its combined confidence and supports.
#[derive(Debug, Clone)]
pub struct ReconciledValue {
    /// The representative entry (highest-confidence member of the group).
    pub entry: ValueEntry,
    /// Combined (noisy-or) confidence over all corroborating sources.
    pub combined_confidence: f64,
    /// Number of corroborating assertions.
    pub support: usize,
}

/// A conflict: a value group that lost reconciliation under the cardinality
/// constraint.
#[derive(Debug, Clone)]
pub struct Conflict {
    /// The attribute.
    pub attr: String,
    /// Display of the losing value.
    pub losing_value: String,
    /// Its combined confidence.
    pub confidence: f64,
    /// Display of the winning value it conflicts with.
    pub winning_value: String,
}

/// Result of reconciling one record.
#[derive(Debug, Clone, Default)]
pub struct Reconciliation {
    /// Kept values per attribute (attribute, reconciled values).
    pub kept: Vec<(String, Vec<ReconciledValue>)>,
    /// Dropped conflicting values.
    pub conflicts: Vec<Conflict>,
}

/// Group an attribute's entries by denotation and combine confidences.
pub fn group_by_denotation(entries: &[ValueEntry]) -> Vec<ReconciledValue> {
    let mut groups: Vec<Vec<&ValueEntry>> = Vec::new();
    for e in entries {
        match groups
            .iter_mut()
            .find(|g| g[0].value.same_denotation(&e.value))
        {
            Some(g) => g.push(e),
            None => groups.push(vec![e]),
        }
    }
    let mut out: Vec<ReconciledValue> = groups
        .into_iter()
        .map(|g| {
            let combined = noisy_or(g.iter().map(|e| e.provenance.confidence));
            let best = g
                .iter()
                .max_by(|a, b| {
                    a.provenance
                        .confidence
                        .partial_cmp(&b.provenance.confidence)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("invariant: denotation groups are non-empty");
            ReconciledValue {
                entry: (*best).clone(),
                combined_confidence: combined,
                support: g.len(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.combined_confidence
            .partial_cmp(&a.combined_confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Reconcile a record against its schema: per attribute, keep the top
/// groups allowed by the cardinality and report the rest as conflicts.
/// Attributes not in the schema are treated as `Many` (loose model).
pub fn reconcile(rec: &Lrec, schema: &ConceptSchema) -> Reconciliation {
    let mut result = Reconciliation::default();
    for (attr, entries) in rec.iter() {
        let groups = group_by_denotation(entries);
        let cardinality = schema
            .attr(attr)
            .map(|s| s.cardinality)
            .unwrap_or(Cardinality::Many);
        let limit = match cardinality {
            Cardinality::One => 1,
            Cardinality::AtMost(k) => k as usize,
            Cardinality::Many => usize::MAX,
        };
        let (kept, dropped) = if groups.len() > limit {
            let (a, b) = groups.split_at(limit);
            (a.to_vec(), b.to_vec())
        } else {
            (groups, Vec::new())
        };
        let winner = kept
            .first()
            .map(|v| v.entry.value.display_string())
            .unwrap_or_default();
        for d in dropped {
            result.conflicts.push(Conflict {
                attr: attr.to_string(),
                losing_value: d.entry.value.display_string(),
                confidence: d.combined_confidence,
                winning_value: winner.clone(),
            });
        }
        result.kept.push((attr.to_string(), kept));
    }
    result
}

/// A contested-attribute winner chosen by [`reconcile_with_trust`]: which
/// value won and who supported it. The pipeline wraps these into
/// [`crate::trust::Selection`]s for the audit trail.
#[derive(Debug, Clone)]
pub struct TrustedWinner {
    /// The attribute.
    pub attr: String,
    /// Display string of the winning value.
    pub value: String,
    /// Supporting sites with their trust at selection time.
    pub support: Vec<SiteSupport>,
}

/// A value group suppressed because every site asserting it was
/// content-quarantined.
#[derive(Debug, Clone)]
pub struct TrustedExclusion {
    /// The attribute.
    pub attr: String,
    /// Display string of the excluded value.
    pub value: String,
    /// The quarantined sites that asserted it.
    pub sites: Vec<String>,
}

/// Result of trust-aware reconciliation.
#[derive(Debug, Clone, Default)]
pub struct TrustedReconciliation {
    /// The reconciliation to apply (same shape as [`reconcile`]'s).
    pub recon: Reconciliation,
    /// Winners of contested attributes (≥ 2 denotation groups), for the
    /// selection log.
    pub winners: Vec<TrustedWinner>,
    /// Groups excluded for quarantined-only support.
    pub excluded: Vec<TrustedExclusion>,
}

/// Reconcile a record under a source-reliability model: value groups are
/// ranked by *reliability-weighted* corroboration — each assertion weighs
/// `confidence × selection_weight(site)`, so a quarantined site's assertions
/// count zero however many pages repeat them — instead of raw majority.
/// Groups supported *only* by quarantined sites are excluded outright and
/// reported, the explicit "below-trust-threshold exclusion" the serving
/// byte-identity gate accepts as explanation. Winners are stamped with
/// [`SiteSupport`] (site + trust at selection time) in their provenance.
///
/// With no quarantined sites every weight is 1, the weighted key equals the
/// unweighted key, and the result is identical to [`reconcile`] — trust
/// changes nothing on a clean web.
pub fn reconcile_with_trust(
    rec: &Lrec,
    schema: &ConceptSchema,
    trust: &TrustModel,
) -> TrustedReconciliation {
    let mut out = TrustedReconciliation::default();
    for (attr, entries) in rec.iter() {
        // Group by denotation, first-seen order (same as group_by_denotation,
        // but keeping the members: support stamping needs every asserter).
        let mut groups: Vec<Vec<&ValueEntry>> = Vec::new();
        for e in entries {
            match groups
                .iter_mut()
                .find(|g| g[0].value.same_denotation(&e.value))
            {
                Some(g) => g.push(e),
                None => groups.push(vec![e]),
            }
        }
        let contested = groups.len() >= 2;
        struct Scored<'a> {
            members: Vec<&'a ValueEntry>,
            combined: f64,
            weighted: f64,
            sites: Vec<String>,
            all_quarantined: bool,
        }
        let mut scored: Vec<Scored> = groups
            .into_iter()
            .map(|g| {
                let combined = noisy_or(g.iter().map(|e| e.provenance.confidence));
                let weighted = noisy_or(g.iter().map(|e| {
                    let w = e
                        .provenance
                        .document_url()
                        .map(|u| trust.selection_weight(url_host(u)))
                        .unwrap_or(1.0);
                    e.provenance.confidence * w
                }));
                let mut sites: Vec<String> = g
                    .iter()
                    .filter_map(|e| e.provenance.document_url())
                    .map(|u| url_host(u).to_string())
                    .collect();
                sites.sort();
                sites.dedup();
                let all_quarantined =
                    !sites.is_empty() && sites.iter().all(|s| trust.is_quarantined(s));
                Scored {
                    members: g,
                    combined,
                    weighted,
                    sites,
                    all_quarantined,
                }
            })
            .collect();
        // Two stable sorts: by combined desc (reconcile's order), then by
        // weighted desc. With no quarantine weighted == combined and the
        // second pass is the identity permutation.
        scored.sort_by(|a, b| {
            b.combined
                .partial_cmp(&a.combined)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        scored.sort_by(|a, b| {
            b.weighted
                .partial_cmp(&a.weighted)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Quarantined-only groups are never selectable, whatever the
        // cardinality budget.
        let (eligible, excluded): (Vec<Scored>, Vec<Scored>) =
            scored.into_iter().partition(|s| !s.all_quarantined);
        for ex in &excluded {
            out.excluded.push(TrustedExclusion {
                attr: attr.to_string(),
                value: ex.members[0].value.display_string(),
                sites: ex.sites.clone(),
            });
        }
        let cardinality = schema
            .attr(attr)
            .map(|s| s.cardinality)
            .unwrap_or(Cardinality::Many);
        let limit = match cardinality {
            Cardinality::One => 1,
            Cardinality::AtMost(k) => k as usize,
            Cardinality::Many => usize::MAX,
        };
        let keep_n = limit.min(eligible.len());
        let (kept_s, dropped_s) = eligible.split_at(keep_n);
        let winner_display = kept_s
            .first()
            .map(|s| s.members[0].value.display_string())
            .unwrap_or_default();
        let to_reconciled = |s: &Scored| {
            let best = s
                .members
                .iter()
                .max_by(|a, b| {
                    a.provenance
                        .confidence
                        .partial_cmp(&b.provenance.confidence)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("invariant: denotation groups are non-empty");
            let mut entry = (*best).clone();
            entry.provenance.support = s
                .sites
                .iter()
                .map(|site| SiteSupport {
                    site: site.clone(),
                    trust: trust.trust_of(site),
                })
                .collect();
            ReconciledValue {
                entry,
                combined_confidence: s.combined,
                support: s.members.len(),
            }
        };
        let kept: Vec<ReconciledValue> = kept_s.iter().map(to_reconciled).collect();
        for d in dropped_s.iter().chain(&excluded) {
            out.recon.conflicts.push(Conflict {
                attr: attr.to_string(),
                losing_value: d.members[0].value.display_string(),
                confidence: d.combined,
                winning_value: winner_display.clone(),
            });
        }
        if contested {
            if let Some(w) = kept.first() {
                out.winners.push(TrustedWinner {
                    attr: attr.to_string(),
                    value: w.entry.value.display_string(),
                    support: w.entry.provenance.support.clone(),
                });
            }
        }
        out.recon.kept.push((attr.to_string(), kept));
    }
    out
}

/// Apply a reconciliation back onto a record: replace each attribute's
/// entries with the kept representatives, stamping the combined confidence.
pub fn apply_reconciliation(rec: &mut Lrec, recon: &Reconciliation, operator: &str) {
    for (attr, values) in &recon.kept {
        rec.remove(attr);
        for v in values {
            let mut prov = v.entry.provenance.clone();
            prov.confidence = v.combined_confidence;
            prov.operator = operator.to_string();
            rec.add(attr, v.entry.value.clone(), prov);
        }
    }
}

/// Overall record quality: mean combined confidence of kept values, damped
/// by the fraction of conflicting attributes.
pub fn quality_score(recon: &Reconciliation) -> f64 {
    let values: Vec<f64> = recon
        .kept
        .iter()
        .flat_map(|(_, vs)| vs.iter().map(|v| v.combined_confidence))
        .collect();
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let conflict_attrs: std::collections::HashSet<&str> =
        recon.conflicts.iter().map(|c| c.attr.as_str()).collect();
    let damp = 1.0 - 0.5 * (conflict_attrs.len() as f64 / recon.kept.len().max(1) as f64);
    mean * damp
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{AttrKind, AttrSpec, AttrValue, ConceptId, LrecId, Provenance, Tick};

    fn schema() -> ConceptSchema {
        ConceptSchema::new(
            ConceptId(0),
            "restaurant",
            vec![
                AttrSpec::new("zip", AttrKind::Zip, Cardinality::One),
                AttrSpec::new("phone", AttrKind::Phone, Cardinality::AtMost(2)),
                AttrSpec::new("name", AttrKind::Text, Cardinality::One),
            ],
        )
    }

    fn entry(v: AttrValue, c: f64) -> ValueEntry {
        ValueEntry {
            value: v,
            provenance: Provenance::derived("test", c, Tick(0)),
        }
    }

    #[test]
    fn corroboration_raises_confidence() {
        let groups = group_by_denotation(&[
            entry(AttrValue::Zip("95014".into()), 0.6),
            entry(AttrValue::Zip("95014".into()), 0.6),
            entry(AttrValue::Zip("99999".into()), 0.7),
        ]);
        assert_eq!(groups.len(), 2);
        // Two 0.6 assertions beat one 0.7 assertion: 1-(0.4)² = 0.84.
        assert!((groups[0].combined_confidence - 0.84).abs() < 1e-9);
        assert_eq!(groups[0].support, 2);
        assert_eq!(groups[0].entry.value, AttrValue::Zip("95014".into()));
    }

    #[test]
    fn denotation_groups_cross_formats() {
        let groups = group_by_denotation(&[
            entry(AttrValue::Phone("4085550134".into()), 0.5),
            entry(AttrValue::Text("(408) 555-0134".into()), 0.5),
        ]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].support, 2);
    }

    #[test]
    fn reconcile_enforces_cardinality_and_reports_conflicts() {
        let mut r = Lrec::new(LrecId(1), ConceptId(0));
        r.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("a", 0.9, Tick(0)),
        );
        r.add(
            "zip",
            AttrValue::Zip("60601".into()),
            Provenance::derived("b", 0.4, Tick(0)),
        );
        let recon = reconcile(&r, &schema());
        let zips = &recon.kept.iter().find(|(k, _)| k == "zip").unwrap().1;
        assert_eq!(zips.len(), 1);
        assert_eq!(zips[0].entry.value, AttrValue::Zip("95014".into()));
        assert_eq!(recon.conflicts.len(), 1);
        assert_eq!(recon.conflicts[0].losing_value, "60601");
        assert_eq!(recon.conflicts[0].winning_value, "95014");
    }

    #[test]
    fn unknown_attrs_kept_loosely() {
        let mut r = Lrec::new(LrecId(1), ConceptId(0));
        r.add(
            "parking",
            AttrValue::Text("street".into()),
            Provenance::derived("a", 0.5, Tick(0)),
        );
        r.add(
            "parking",
            AttrValue::Text("valet".into()),
            Provenance::derived("b", 0.5, Tick(0)),
        );
        let recon = reconcile(&r, &schema());
        let parking = &recon.kept.iter().find(|(k, _)| k == "parking").unwrap().1;
        assert_eq!(parking.len(), 2, "Many cardinality keeps all groups");
        assert!(recon.conflicts.is_empty());
    }

    #[test]
    fn apply_reconciliation_rewrites_record() {
        let mut r = Lrec::new(LrecId(1), ConceptId(0));
        r.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("a", 0.6, Tick(0)),
        );
        r.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("b", 0.6, Tick(0)),
        );
        r.add(
            "zip",
            AttrValue::Zip("60601".into()),
            Provenance::derived("c", 0.3, Tick(0)),
        );
        let recon = reconcile(&r, &schema());
        apply_reconciliation(&mut r, &recon, "reconciler");
        assert_eq!(r.get("zip").len(), 1);
        let e = &r.get("zip")[0];
        assert!((e.provenance.confidence - 0.84).abs() < 1e-9);
        assert_eq!(e.provenance.operator, "reconciler");
    }

    #[test]
    fn quality_reflects_conflicts() {
        let mut clean = Lrec::new(LrecId(1), ConceptId(0));
        clean.add(
            "zip",
            AttrValue::Zip("95014".into()),
            Provenance::derived("a", 0.9, Tick(0)),
        );
        let mut dirty = clean.clone();
        dirty.add(
            "zip",
            AttrValue::Zip("60601".into()),
            Provenance::derived("b", 0.8, Tick(0)),
        );
        let q_clean = quality_score(&reconcile(&clean, &schema()));
        let q_dirty = quality_score(&reconcile(&dirty, &schema()));
        assert!(q_clean > q_dirty, "{q_clean} vs {q_dirty}");
    }

    #[test]
    fn empty_record_zero_quality() {
        let r = Lrec::new(LrecId(1), ConceptId(0));
        assert_eq!(quality_score(&reconcile(&r, &schema())), 0.0);
    }
}
