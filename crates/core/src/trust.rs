//! Source reliability: a TruthFinder-style trust fixpoint over site claims.
//!
//! The web of concepts is built from exactly the long-tail sources Dalvi et
//! al. document as noisy — and nothing stops a spam farm from asserting
//! wrong attribute values with perfect markup. Majority vote fails as soon
//! as coordinated sites outnumber honest ones, so reconciliation needs a
//! *source reliability* signal: sites that assert facts corroborated by
//! reliable sites are reliable, and facts asserted by reliable sites are
//! probably true. That circular definition is resolved as an iterative
//! fixpoint (Yin, Han & Yu's TruthFinder, adapted to the claim structure
//! here):
//!
//! 1. every site starts at a prior trust;
//! 2. claims about the same entity pool by `(concept, name, city)`; within a
//!    pool and attribute, claims group by denotation;
//! 3. a group's score is a noisy-or of `confidence × trust` over its
//!    claimants, turned into a probability against the *strongest rival*
//!    group of the same fact (squared, winner-take-most). Best-rival
//!    normalization matters: a corroborated honest group must not see its
//!    win diluted by however many independent lies are in the race;
//! 4. a site's new trust is the damped mean group-probability of its claims
//!    over **judgeable** facts only: facts that are contested, or
//!    corroborated by at least two sites (an unrivaled corroborated group
//!    wins outright). A value asserted by a single site and disputed by
//!    nobody carries no reliability information, and excluding those keeps
//!    innocent sites with unique content (blogs, niche pages) at prior
//!    trust instead of free-riding — while a noisy-but-honest aggregator
//!    still gets credit for everything it corroborates;
//! 5. iterate until the max trust delta is below epsilon.
//!
//! Sites whose converged trust falls below the quarantine threshold (and
//! that asserted enough contested claims to be judged at all) are
//! content-quarantined: their records are scrubbed before entity resolution,
//! which is how reliability feeds *merge* decisions, and their claims weigh
//! zero in reconciliation, which is how it feeds *value selection*. The
//! continuous scores are recorded in [`woc_lrec::SiteSupport`] stamps so
//! every live value can explain who supported it and how trusted they were.
//!
//! Everything iterates over sorted structures (`BTreeMap`, canonically
//! sorted claim lists), so the fixpoint is bitwise deterministic and
//! independent of thread count and site visit order by construction.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use woc_lrec::{AttrValue, LrecId, SiteSupport};

/// Trust-model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustConfig {
    /// Run the trust stage at all (ablation flag).
    pub enabled: bool,
    /// Prior trust assigned to every site before iteration.
    pub prior: f64,
    /// Weight of the evidence term in the trust update; `1 - damping` stays
    /// on the prior, which keeps single-iteration swings bounded.
    pub damping: f64,
    /// Convergence threshold on the max per-site trust delta.
    pub epsilon: f64,
    /// Iteration cap (the fixpoint must converge within this bound).
    pub max_iters: usize,
    /// Sites with converged trust below this are content-quarantined.
    pub quarantine_threshold: f64,
    /// Minimum judgeable claims before a site can be quarantined — a site
    /// judged on one or two facts stays at whatever trust it earned but is
    /// never scrubbed on that little evidence.
    pub min_claims: usize,
    /// Concepts whose records contribute claims. Restricted to concepts
    /// whose records carry a usable `(name, city)` identity; reviews and
    /// menu items pool badly (shared names, no identity) and would only add
    /// noise.
    pub concepts: Vec<String>,
}

impl Default for TrustConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            prior: 0.5,
            damping: 0.8,
            epsilon: 1e-9,
            max_iters: 128,
            quarantine_threshold: 0.5,
            min_claims: 3,
            concepts: vec!["restaurant".to_string()],
        }
    }
}

/// One claim: `site` asserts that the entity pooled under `pool` has
/// `attr = value`, with the extractor's confidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// Asserting site (hostname).
    pub site: String,
    /// Entity pool key: `concept|normalized name|normalized city`.
    pub pool: String,
    /// Attribute key.
    pub attr: String,
    /// The asserted value.
    pub value: AttrValue,
    /// Extraction confidence of the assertion.
    pub confidence: f64,
}

/// One reconciliation decision made under the trust model: which value won
/// an attribute of a live record, and which sites supported it at what
/// trust. Audit check W016 replays these against the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The record reconciled.
    pub record: LrecId,
    /// The attribute.
    pub attr: String,
    /// Pool key of the record at selection time (audit must not re-derive
    /// it from the post-reconcile record, whose name may have changed).
    pub pool: String,
    /// Display string of the winning value.
    pub value: String,
    /// Sites supporting the winner, with their trust at selection time.
    pub support: Vec<SiteSupport>,
}

/// A value group suppressed because every site supporting it was
/// content-quarantined — the explicit "below-trust-threshold exclusion"
/// that explains any divergence from a clean-corpus build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exclusion {
    /// The record reconciled.
    pub record: LrecId,
    /// The attribute.
    pub attr: String,
    /// Display string of the excluded value.
    pub value: String,
    /// The quarantined sites that asserted it.
    pub sites: Vec<String>,
}

/// The converged source-reliability model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrustModel {
    /// Configuration the fixpoint ran with.
    pub config: TrustConfig,
    /// Converged per-site trust.
    pub site_trust: BTreeMap<String, f64>,
    /// Judgeable claims per site — claims on facts with at least two
    /// claimants (the denominator of the trust update, and the evidence
    /// floor for quarantine).
    pub claim_counts: BTreeMap<String, usize>,
    /// The deduplicated claims the fixpoint ran over, in canonical order —
    /// kept so the fixpoint is recomputable (audit W016) and incremental
    /// maintenance can replay it.
    pub claims: Vec<Claim>,
    /// Sites quarantined for low trust, as `(site, reason)`, sorted.
    pub quarantined: Vec<(String, String)>,
    /// Max per-site trust delta per iteration — the convergence curve.
    pub curve: Vec<f64>,
    /// Iterations run.
    pub iterations: usize,
    /// Whether the fixpoint converged within `max_iters`.
    pub converged: bool,
    /// Reconciliation decisions made under this model (filled during the
    /// reconcile stage, not by [`TrustModel::compute`]).
    pub selections: Vec<Selection>,
    /// Value groups excluded for quarantined-only support.
    pub exclusions: Vec<Exclusion>,
}

impl TrustModel {
    /// Run the fixpoint over a claim set.
    pub fn compute(claims: Vec<Claim>, config: &TrustConfig) -> TrustModel {
        let claims = canonicalize(claims);
        // Facts: claims grouped per (pool, attr), then by denotation within.
        // `facts[f]` holds claim indices per denotation group of fact `f`.
        let mut facts: Vec<Vec<Vec<usize>>> = Vec::new();
        {
            let mut i = 0;
            while i < claims.len() {
                let j = claims[i..]
                    .iter()
                    .position(|c| (c.pool.as_str(), c.attr.as_str()) != key(&claims[i]))
                    .map(|p| i + p)
                    .unwrap_or(claims.len());
                let mut groups: Vec<Vec<usize>> = Vec::new();
                for k in i..j {
                    match groups
                        .iter_mut()
                        .find(|g| claims[g[0]].value.same_denotation(&claims[k].value))
                    {
                        Some(g) => g.push(k),
                        None => groups.push(vec![k]),
                    }
                }
                facts.push(groups);
                i = j;
            }
        }

        // A fact is judgeable when at least two sites weighed in: contested
        // (≥ 2 denotation groups) or corroborated (one group, ≥ 2 sites).
        // Sole-claimant facts carry no reliability signal either way.
        let judgeable = |f: &&Vec<Vec<usize>>| f.len() >= 2 || f[0].len() >= 2;

        // Judgeable claims per site; sites with any claim at all get a row.
        let mut site_trust: BTreeMap<String, f64> = BTreeMap::new();
        let mut claim_counts: BTreeMap<String, usize> = BTreeMap::new();
        for c in &claims {
            site_trust.entry(c.site.clone()).or_insert(config.prior);
            claim_counts.entry(c.site.clone()).or_insert(0);
        }
        for fact in facts.iter().filter(judgeable) {
            for g in fact {
                for &ci in g {
                    *claim_counts
                        .get_mut(&claims[ci].site)
                        .expect("invariant: every claim's site has a count row") += 1;
                }
            }
        }

        let mut curve = Vec::new();
        let mut converged = false;
        let mut iterations = 0;
        // Per-site accumulators, keyed in site_trust's (sorted) order.
        let sites: Vec<String> = site_trust.keys().cloned().collect();
        let site_pos: BTreeMap<&str, usize> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i))
            .collect();
        let mut trust: Vec<f64> = sites.iter().map(|_| config.prior).collect();
        for _ in 0..config.max_iters {
            iterations += 1;
            let mut sum = vec![0.0f64; trust.len()];
            let mut cnt = vec![0usize; trust.len()];
            for fact in facts.iter().filter(judgeable) {
                // Group score: noisy-or of confidence × trust.
                let scores: Vec<f64> = fact
                    .iter()
                    .map(|g| {
                        let mut not = 1.0f64;
                        for &ci in g {
                            let t = trust[site_pos[claims[ci].site.as_str()]];
                            not *= 1.0 - (claims[ci].confidence * t).clamp(0.0, 1.0);
                        }
                        1.0 - not
                    })
                    .collect();
                // Best-rival, winner-take-most normalization: each group is
                // scored against the strongest competing group only, and
                // squaring sharpens the gap. Summing over all rivals instead
                // would dilute a corroborated honest win in proportion to how
                // many independent lies happen to be in the race.
                for (gi, (g, s)) in fact.iter().zip(&scores).enumerate() {
                    let rival = scores
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != gi)
                        .map(|(_, r)| *r)
                        .fold(0.0f64, f64::max);
                    let denom = s * s + rival * rival;
                    let p = if denom > 0.0 { s * s / denom } else { 0.0 };
                    for &ci in g {
                        let pos = site_pos[claims[ci].site.as_str()];
                        sum[pos] += p;
                        cnt[pos] += 1;
                    }
                }
            }
            let mut delta = 0.0f64;
            for i in 0..trust.len() {
                let evidence = if cnt[i] > 0 {
                    sum[i] / cnt[i] as f64
                } else {
                    config.prior
                };
                let next = config.damping * evidence + (1.0 - config.damping) * config.prior;
                delta = delta.max((next - trust[i]).abs());
                trust[i] = next;
            }
            curve.push(delta);
            if delta < config.epsilon {
                converged = true;
                break;
            }
        }
        for (i, s) in sites.iter().enumerate() {
            *site_trust
                .get_mut(s)
                .expect("invariant: sites enumerate site_trust keys") = trust[i];
        }

        let quarantined: Vec<(String, String)> = site_trust
            .iter()
            .filter(|(site, t)| {
                **t < config.quarantine_threshold && claim_counts[*site] >= config.min_claims
            })
            .map(|(site, t)| {
                (
                    site.clone(),
                    format!("trust {:.2} < {:.2}", t, config.quarantine_threshold),
                )
            })
            .collect();

        TrustModel {
            config: config.clone(),
            site_trust,
            claim_counts,
            claims,
            quarantined,
            curve,
            iterations,
            converged,
            selections: Vec::new(),
            exclusions: Vec::new(),
        }
    }

    /// Trust of a site (prior for sites the model never saw).
    pub fn trust_of(&self, site: &str) -> f64 {
        self.site_trust
            .get(site)
            .copied()
            .unwrap_or(self.config.prior)
    }

    /// True when the model content-quarantined the site.
    pub fn is_quarantined(&self, site: &str) -> bool {
        self.quarantined.iter().any(|(s, _)| s == site)
    }

    /// Selection weight of a site: its confidence multiplier in
    /// reconciliation. Thresholded, not continuous — a quarantined site's
    /// assertions weigh zero, everyone else weighs their extraction
    /// confidence — so serving output is bitwise stable under spam-ratio
    /// changes (small trust drifts must not flip honest-vs-honest ties).
    pub fn selection_weight(&self, site: &str) -> f64 {
        if self.is_quarantined(site) {
            0.0
        } else {
            1.0
        }
    }

    /// Digest of the model state that canonical snapshots hash: converged
    /// trust, quarantine set and claim set. FNV-1a over a length-prefixed
    /// encoding, same constants as the index digests.
    pub fn digest(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x100000001b3);
            }
        }
        fn eat_str(h: &mut u64, s: &str) {
            eat(h, &(s.len() as u64).to_le_bytes());
            eat(h, s.as_bytes());
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for (site, t) in &self.site_trust {
            eat_str(&mut h, site);
            eat_str(&mut h, &format!("{t:.12}"));
        }
        for (site, reason) in &self.quarantined {
            eat_str(&mut h, site);
            eat_str(&mut h, reason);
        }
        for c in &self.claims {
            eat_str(&mut h, &c.site);
            eat_str(&mut h, &c.pool);
            eat_str(&mut h, &c.attr);
            eat_str(&mut h, &c.value.display_string());
            eat_str(&mut h, &format!("{:.12}", c.confidence));
        }
        eat(&mut h, &(self.selections.len() as u64).to_le_bytes());
        h
    }
}

fn key(c: &Claim) -> (&str, &str) {
    (c.pool.as_str(), c.attr.as_str())
}

/// Sort claims canonically and deduplicate: one claim per
/// `(pool, attr, site, denotation)`, keeping the highest confidence — a site
/// repeating itself across its own pages is self-citation, not
/// corroboration.
fn canonicalize(mut claims: Vec<Claim>) -> Vec<Claim> {
    claims.sort_by(|a, b| {
        (&a.pool, &a.attr, &a.site, a.value.display_string(), &a.site).cmp(&(
            &b.pool,
            &b.attr,
            &b.site,
            b.value.display_string(),
            &b.site,
        ))
    });
    let mut out: Vec<Claim> = Vec::with_capacity(claims.len());
    for c in claims {
        if let Some(prev) = out.iter_mut().find(|p| {
            p.pool == c.pool
                && p.attr == c.attr
                && p.site == c.site
                && p.value.same_denotation(&c.value)
        }) {
            if c.confidence > prev.confidence {
                prev.confidence = c.confidence;
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Pool key for a record identity: `concept|normalized name|normalized
/// city`. Shared by claim collection (pipeline), reconciliation and audit so
/// all three agree on what "the same fact" means.
pub fn pool_key(concept: &str, name: &str, city: &str) -> String {
    use woc_textkit::tokenize::normalize;
    format!("{concept}|{}|{}", normalize(name), normalize(city))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(site: &str, pool: &str, attr: &str, value: &str, conf: f64) -> Claim {
        Claim {
            site: site.to_string(),
            pool: pool.to_string(),
            attr: attr.to_string(),
            value: AttrValue::Text(value.to_string()),
            confidence: conf,
        }
    }

    /// Three honest sites corroborate; one liar contradicts on every fact.
    fn contested_claims() -> Vec<Claim> {
        let mut cs = Vec::new();
        for pool in ["r|gochi|cupertino", "r|zeni|san jose", "r|sino|san jose"] {
            for site in ["a.example.com", "b.example.com", "c.example.com"] {
                cs.push(claim(site, pool, "phone", "4085550134", 0.75));
            }
            cs.push(claim("liar.example.net", pool, "phone", "9995550000", 0.75));
        }
        cs
    }

    #[test]
    fn fixpoint_separates_honest_from_liar() {
        let m = TrustModel::compute(contested_claims(), &TrustConfig::default());
        assert!(m.converged, "must converge: curve {:?}", m.curve);
        let honest = m.trust_of("a.example.com");
        let liar = m.trust_of("liar.example.net");
        assert!(
            honest > liar + 0.2,
            "honest {honest} must clearly beat liar {liar}"
        );
        assert!(m.is_quarantined("liar.example.net"), "liar trust {liar}");
        assert!(!m.is_quarantined("a.example.com"));
        assert_eq!(m.selection_weight("liar.example.net"), 0.0);
        assert_eq!(m.selection_weight("a.example.com"), 1.0);
        assert_eq!(m.selection_weight("never-seen.example.com"), 1.0);
    }

    #[test]
    fn uncontested_claims_carry_no_signal() {
        // A site asserting facts nobody disputes stays at prior trust and
        // can never be quarantined, however few or many claims it has.
        let mut cs = contested_claims();
        for i in 0..5 {
            cs.push(claim(
                "blog.example.com",
                &format!("r|unique-{i}|nowhere"),
                "phone",
                "1112223333",
                0.75,
            ));
        }
        let cfg = TrustConfig::default();
        let m = TrustModel::compute(cs, &cfg);
        assert!((m.trust_of("blog.example.com") - cfg.prior).abs() < 1e-9);
        assert_eq!(m.claim_counts["blog.example.com"], 0, "contested only");
        assert!(!m.is_quarantined("blog.example.com"));
    }

    #[test]
    fn min_claims_floor_blocks_thin_quarantine() {
        // A liar on a single contested fact earns low trust but is not
        // quarantined: one fact is not enough evidence to scrub a site.
        let mut cs = Vec::new();
        for site in ["a.example.com", "b.example.com", "c.example.com"] {
            cs.push(claim(
                site,
                "r|gochi|cupertino",
                "phone",
                "4085550134",
                0.75,
            ));
        }
        cs.push(claim(
            "thin.example.net",
            "r|gochi|cupertino",
            "phone",
            "9995550000",
            0.75,
        ));
        let m = TrustModel::compute(cs, &TrustConfig::default());
        assert!(m.trust_of("thin.example.net") < m.trust_of("a.example.com"));
        assert_eq!(m.claim_counts["thin.example.net"], 1);
        assert!(
            !m.is_quarantined("thin.example.net"),
            "below min_claims floor"
        );
    }

    #[test]
    fn deterministic_under_claim_permutation() {
        let cs = contested_claims();
        let a = TrustModel::compute(cs.clone(), &TrustConfig::default());
        let mut rev = cs;
        rev.reverse();
        let b = TrustModel::compute(rev, &TrustConfig::default());
        assert_eq!(a.site_trust, b.site_trust, "bitwise equal trust");
        assert_eq!(a.claims, b.claims, "canonical claim order");
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn self_citation_deduplicated() {
        // One site repeating a claim on 10 pages counts once.
        let mut cs = contested_claims();
        for _ in 0..10 {
            cs.push(claim(
                "liar.example.net",
                "r|gochi|cupertino",
                "phone",
                "9995550000",
                0.6,
            ));
        }
        let m = TrustModel::compute(cs.clone(), &TrustConfig::default());
        let liar_claims = m
            .claims
            .iter()
            .filter(|c| c.site == "liar.example.net" && c.pool == "r|gochi|cupertino")
            .count();
        assert_eq!(liar_claims, 1, "deduped to one claim per denotation");
        // The kept claim carries the max confidence seen.
        let kept = m
            .claims
            .iter()
            .find(|c| c.site == "liar.example.net" && c.pool == "r|gochi|cupertino")
            .unwrap();
        assert!((kept.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn convergence_curve_is_monotonically_informative() {
        let m = TrustModel::compute(contested_claims(), &TrustConfig::default());
        assert_eq!(m.curve.len(), m.iterations);
        assert!(m.iterations <= TrustConfig::default().max_iters);
        assert!(
            m.curve.last().copied().unwrap_or(1.0) < TrustConfig::default().epsilon,
            "last delta below epsilon: {:?}",
            m.curve
        );
    }

    #[test]
    fn pool_key_normalizes() {
        assert_eq!(
            pool_key("restaurant", "Gochi", "Cupertino"),
            "restaurant|gochi|cupertino"
        );
    }
}
