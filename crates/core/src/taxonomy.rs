//! Taxonomies and containment (paper §2.3).
//!
//! The paper asks how far to "extend support for organizing lrecs into …
//! hierarchical relationships": the D40 *is a* digital camera *is a* camera;
//! the D40 *is part of* a special camera package; and — for concepts that
//! resist curation — whether "data-driven taxonomy construction" can stand
//! in for curator-developed taxonomies. This module implements both sides
//! of that question:
//!
//! * [`Taxonomy`] — a curated category DAG with `is_a` chains and
//!   subsumption queries, populated from records' `is_a` attributes;
//! * [`part_of_components`] / [`bundles_containing`] — containment via
//!   typed `part_of` references;
//! * [`data_driven_taxonomy`] — agglomerative (average-link) clustering of
//!   records by attribute-token overlap, with [`cluster_purity`] to compare
//!   the two approaches (the §2.3 ablation).

use std::collections::{HashMap, HashSet};

use woc_lrec::{Lrec, LrecId, Store};
use woc_textkit::tokenize::tokenize_words;

/// A curated taxonomy: category → parent category.
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    parents: HashMap<String, String>,
}

impl Taxonomy {
    /// Empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare `child is_a parent`.
    pub fn declare(&mut self, child: &str, parent: &str) {
        assert_ne!(child, parent, "a category cannot be its own parent");
        self.parents.insert(child.to_string(), parent.to_string());
        // Reject cycles eagerly: walking up from `child` must terminate.
        let mut seen = HashSet::new();
        let mut cur = child.to_string();
        while let Some(p) = self.parents.get(&cur) {
            assert!(
                seen.insert(cur.clone()),
                "taxonomy cycle through {child:?} -> {parent:?}"
            );
            cur = p.clone();
        }
    }

    /// The curated camera taxonomy of the shopping domain (the paper's
    /// "Nikon D40 … is a particular kind of digital camera, which in turn is
    /// a particular kind of camera").
    pub fn curated_shopping() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.declare("Digital Camera", "Camera");
        t.declare("DSLR Camera", "Camera");
        t.declare("Camera", "Product");
        t.declare("Camera Lens", "Camera Accessory");
        t.declare("Camera Battery", "Camera Accessory");
        t.declare("Tripod", "Camera Accessory");
        t.declare("Memory Card", "Camera Accessory");
        t.declare("Camera Bag", "Camera Accessory");
        t.declare("Flash Unit", "Camera Accessory");
        t.declare("Camera Accessory", "Product");
        t.declare("Camera Bundle", "Product");
        t
    }

    /// Direct parent of a category.
    pub fn parent(&self, category: &str) -> Option<&str> {
        self.parents.get(category).map(String::as_str)
    }

    /// All ancestors, nearest first.
    pub fn ancestors(&self, category: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = category;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Is `category` equal to or a descendant of `ancestor`?
    pub fn is_a(&self, category: &str, ancestor: &str) -> bool {
        category == ancestor || self.ancestors(category).contains(&ancestor)
    }

    /// The full `is_a` chain for a record: its own category attribute plus
    /// all curated ancestors (the "D40 → digital camera → camera" walk).
    pub fn chain_for(&self, rec: &Lrec) -> Vec<String> {
        let Some(cat) = rec
            .best_string("category")
            .or_else(|| rec.best_string("is_a"))
        else {
            return Vec::new();
        };
        let mut out = vec![cat.clone()];
        out.extend(self.ancestors(&cat).iter().map(|s| s.to_string()));
        out
    }

    /// All records of `ids` whose category falls under `ancestor`.
    pub fn instances_under(&self, store: &Store, ids: &[LrecId], ancestor: &str) -> Vec<LrecId> {
        ids.iter()
            .copied()
            .filter(|&id| {
                store
                    .latest(id)
                    .and_then(|r| r.best_string("category"))
                    .is_some_and(|c| self.is_a(&c, ancestor))
            })
            .collect()
    }
}

/// Components of a bundle: records whose `part_of` references resolve to
/// `bundle`.
pub fn part_of_components(store: &Store, candidates: &[LrecId], bundle: LrecId) -> Vec<LrecId> {
    let target = store.resolve(bundle).unwrap_or(bundle);
    candidates
        .iter()
        .copied()
        .filter(|&id| {
            store.latest(id).is_some_and(|r| {
                r.get("part_of")
                    .iter()
                    .filter_map(|e| e.value.as_ref_id())
                    .any(|t| store.resolve(t) == Some(target))
            })
        })
        .collect()
}

/// Bundles containing a record (the reverse containment walk).
pub fn bundles_containing(store: &Store, id: LrecId) -> Vec<LrecId> {
    store
        .latest(id)
        .map(|r| {
            r.get("part_of")
                .iter()
                .filter_map(|e| e.value.as_ref_id())
                .filter_map(|t| store.resolve(t))
                .collect()
        })
        .unwrap_or_default()
}

/// Data-driven taxonomy construction: average-link agglomerative clustering
/// of records by Jaccard overlap of their attribute tokens, stopped at
/// `target_clusters`. Returns clusters of indices into `records`.
pub fn data_driven_taxonomy(records: &[&Lrec], target_clusters: usize) -> Vec<Vec<usize>> {
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    let token_sets: Vec<HashSet<String>> = records
        .iter()
        .map(|r| {
            let mut toks = HashSet::new();
            for (key, entries) in r.iter() {
                if key == "name" {
                    continue; // names are near-unique; cluster on descriptors
                }
                for e in entries {
                    if matches!(e.value, woc_lrec::AttrValue::Ref(_)) {
                        continue;
                    }
                    toks.extend(tokenize_words(&e.value.display_string()));
                }
            }
            toks
        })
        .collect();
    let sim = |a: &HashSet<String>, b: &HashSet<String>| -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count();
        inter as f64 / (a.len() + b.len() - inter).max(1) as f64
    };

    // Each cluster holds member indices; average-link similarity between
    // clusters is the mean pairwise member similarity.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > target_clusters.max(1) {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let mut total = 0.0;
                let mut pairs = 0usize;
                for &a in &clusters[i] {
                    for &b in &clusters[j] {
                        total += sim(&token_sets[a], &token_sets[b]);
                        pairs += 1;
                    }
                }
                let avg = total / pairs.max(1) as f64;
                if best.is_none_or(|(_, _, s)| avg > s) {
                    best = Some((i, j, avg));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let merged = clusters.remove(j);
        clusters[i].extend(merged);
    }
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
}

/// Purity of clusters against gold labels: the weighted fraction of members
/// belonging to each cluster's majority label.
pub fn cluster_purity<T: Eq + std::hash::Hash>(clusters: &[Vec<usize>], labels: &[T]) -> f64 {
    let total: usize = clusters.iter().map(Vec::len).sum();
    if total == 0 {
        return 1.0;
    }
    let mut correct = 0usize;
    for c in clusters {
        let mut counts: HashMap<&T, usize> = HashMap::new();
        for &i in c {
            *counts.entry(&labels[i]).or_insert(0) += 1;
        }
        correct += counts.values().copied().max().unwrap_or(0);
    }
    correct as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::{World, WorldConfig};

    #[test]
    fn curated_chains() {
        let t = Taxonomy::curated_shopping();
        assert_eq!(t.parent("DSLR Camera"), Some("Camera"));
        assert_eq!(t.ancestors("DSLR Camera"), vec!["Camera", "Product"]);
        assert!(t.is_a("DSLR Camera", "Camera"));
        assert!(t.is_a("DSLR Camera", "Product"));
        assert!(t.is_a("Camera", "Camera"));
        assert!(!t.is_a("Camera", "DSLR Camera"));
        assert!(!t.is_a("Tripod", "Camera"));
        assert!(t.is_a("Tripod", "Camera Accessory"));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_rejected() {
        let mut t = Taxonomy::new();
        t.declare("a", "b");
        t.declare("b", "c");
        t.declare("c", "a");
    }

    #[test]
    fn instances_under_ancestor() {
        let w = World::generate(WorldConfig::tiny(601));
        let t = Taxonomy::curated_shopping();
        let cameras = t.instances_under(&w.store, &w.products, "Camera");
        let accessories = t.instances_under(&w.store, &w.products, "Camera Accessory");
        let all = t.instances_under(&w.store, &w.products, "Product");
        assert_eq!(
            all.len(),
            w.products.len(),
            "every product is under Product"
        );
        assert!(!accessories.is_empty());
        for &c in &cameras {
            assert!(!accessories.contains(&c), "disjoint subtrees");
        }
    }

    #[test]
    fn bundle_containment_roundtrip() {
        let w = World::generate(WorldConfig::tiny(602));
        assert!(!w.bundles.is_empty());
        for &b in &w.bundles {
            let comps = part_of_components(&w.store, &w.products, b);
            assert!(comps.len() >= 3, "bundle has its components");
            for &c in &comps {
                assert!(bundles_containing(&w.store, c).contains(&b));
            }
        }
    }

    #[test]
    fn data_driven_clusters_separate_domains() {
        // Mixed restaurants and products: a 2-way data-driven taxonomy should
        // recover the domain split almost perfectly (they share no
        // descriptor vocabulary).
        let w = World::generate(WorldConfig::tiny(603));
        let mut records: Vec<&woc_lrec::Lrec> = Vec::new();
        let mut labels: Vec<&str> = Vec::new();
        for &r in w.restaurants.iter().take(8) {
            records.push(w.store.latest(r).unwrap());
            labels.push("restaurant");
        }
        for &p in w.products.iter().take(8) {
            records.push(w.store.latest(p).unwrap());
            labels.push("product");
        }
        let clusters = data_driven_taxonomy(&records, 2);
        assert_eq!(clusters.len(), 2);
        let purity = cluster_purity(&clusters, &labels);
        assert!(purity > 0.9, "domain split purity {purity}");
    }

    #[test]
    fn purity_edge_cases() {
        assert_eq!(cluster_purity::<u8>(&[], &[]), 1.0);
        let clusters = vec![vec![0, 1], vec![2]];
        let labels = ["a", "b", "b"];
        // Cluster 1 majority 1/2, cluster 2 majority 1/1 → 2/3.
        assert!((cluster_purity(&clusters, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(data_driven_taxonomy(&[], 3).is_empty());
        let t = Taxonomy::new();
        assert!(t.ancestors("x").is_empty());
        assert!(t.is_a("x", "x"));
    }
}
