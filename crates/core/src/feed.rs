//! Structured feed ingestion (paper §2.2 "contractual feeds", §5.1
//! "licensing arrangements with data providers").
//!
//! Not everything must be extracted: providers ship structured records
//! directly. A feed is a JSON array of `{concept, fields}` objects; ingestion
//! types the values, stamps [`woc_lrec::SourceRef::Feed`] provenance, and —
//! crucially — *resolves each feed record against the existing corpus* so a
//! licensed record corroborates (or corrects) extracted ones instead of
//! duplicating them.

use serde::{Deserialize, Serialize};

use woc_lrec::{Lrec, LrecId, Provenance, SourceRef, Tick};
use woc_matching::FellegiSunter;

use crate::graph::AssocKind;
use crate::pipeline::{scorer_for, type_value, WebOfConcepts};

/// One record in a feed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedRecord {
    /// Concept name (must be registered, e.g. `restaurant`).
    pub concept: String,
    /// Field values; repeated fields use multiple entries.
    pub fields: Vec<(String, String)>,
}

/// A parsed feed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Feed {
    /// Provider name (lands in provenance).
    pub provider: String,
    /// Provider-asserted confidence for its values.
    pub confidence: f64,
    /// The records.
    pub records: Vec<FeedRecord>,
}

/// Errors from feed parsing/ingestion.
#[derive(Debug)]
pub enum FeedError {
    /// Malformed JSON.
    Malformed(String),
    /// A record names an unregistered concept.
    UnknownConcept(String),
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::Malformed(e) => write!(f, "malformed feed: {e}"),
            FeedError::UnknownConcept(c) => write!(f, "unknown concept {c:?} in feed"),
        }
    }
}

impl std::error::Error for FeedError {}

/// Parse a feed from JSON.
pub fn parse_feed(json: &str) -> Result<Feed, FeedError> {
    serde_json::from_str(json).map_err(|e| FeedError::Malformed(e.to_string()))
}

/// Outcome of ingesting one feed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedReport {
    /// Feed records merged into existing records.
    pub merged: usize,
    /// Feed records that created new records.
    pub created: usize,
    /// Records skipped (unknown concept).
    pub skipped: usize,
}

/// Ingest a feed into a web of concepts. Each feed record is scored against
/// the existing records of its concept with the concept's Fellegi–Sunter
/// model; a confident match merges (feed values corroborate via
/// reconciliation), otherwise a new record is created.
pub fn ingest_feed(woc: &mut WebOfConcepts, feed: &Feed, tick: Tick) -> FeedReport {
    let mut report = FeedReport::default();
    let mut clock = tick.max(woc.store.max_tick());
    let mut next_tick = move || {
        clock = clock.next();
        clock
    };
    let source = format!("feed:{}", feed.provider);
    let doc_node = woc.lineage.document(&source);

    for fr in &feed.records {
        let Some(cid) = woc.registry.id_of(&fr.concept) else {
            report.skipped += 1;
            continue;
        };
        let prov = |t: Tick| Provenance {
            source: SourceRef::Feed(feed.provider.clone()),
            operator: "feed-ingest".to_string(),
            confidence: feed.confidence.clamp(0.0, 1.0),
            observed_at: t,
            support: Vec::new(),
        };
        // Build a staging record for matching.
        let mut staged = Lrec::new(LrecId(u64::MAX), cid);
        for (k, v) in &fr.fields {
            staged.add(k, type_value(k, v), prov(Tick(0)));
        }
        let fs: FellegiSunter = scorer_for(&fr.concept);
        let best: Option<(LrecId, f64)> = woc
            .store
            .by_concept(cid)
            .into_iter()
            .filter_map(|id| woc.store.latest(id).map(|r| (id, fs.score(&staged, r))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        match best {
            Some((target, score)) if score >= fs.upper => {
                let t = next_tick();
                woc.store
                    .update(target, t, |r| {
                        for (k, v) in &fr.fields {
                            let val = type_value(k, v);
                            // Corroborate: append unless the same denotation
                            // is already present from this feed.
                            let dup = r.get(k).iter().any(|e| {
                                e.value.same_denotation(&val)
                                    && matches!(e.provenance.source, SourceRef::Feed(_))
                            });
                            if !dup {
                                r.add(k, val, prov(t));
                            }
                        }
                    })
                    .expect("feed merge update");
                let op = woc.lineage.operator("feed-ingest", vec![doc_node]);
                woc.lineage.record(target, op);
                woc.web.associate(target, &source, AssocKind::ExtractedFrom);
                report.merged += 1;
            }
            _ => {
                let t = next_tick();
                let id = woc.store.insert(cid, t, |r| {
                    for (k, v) in &fr.fields {
                        r.add(k, type_value(k, v), prov(t));
                    }
                });
                let op = woc.lineage.operator("feed-ingest", vec![doc_node]);
                woc.lineage.record(id, op);
                woc.web.associate(id, &source, AssocKind::ExtractedFrom);
                report.created += 1;
            }
        }
    }

    // Feed data changes the corpus: rebuild the record index.
    let mut index = woc_index::LrecIndex::new();
    for id in woc.store.live_ids() {
        index.add(
            woc.store
                .latest(id)
                .expect("invariant: live_ids() yields ids with a latest version"),
        );
    }
    woc.record_index = index;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn setup() -> (World, WebOfConcepts) {
        let world = World::generate(WorldConfig::tiny(701));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(51));
        let woc = build(&corpus, &PipelineConfig::default());
        (world, woc)
    }

    fn gochi_feed(world: &World) -> Feed {
        let gochi = world.restaurants[0];
        Feed {
            provider: "licensed-local-data".into(),
            confidence: 0.95,
            records: vec![
                FeedRecord {
                    concept: "restaurant".into(),
                    fields: vec![
                        ("name".into(), world.attr(gochi, "name")),
                        ("city".into(), world.attr(gochi, "city")),
                        ("zip".into(), world.attr(gochi, "zip")),
                        ("phone".into(), world.attr(gochi, "phone")),
                        ("street".into(), world.attr(gochi, "street")),
                    ],
                },
                FeedRecord {
                    concept: "restaurant".into(),
                    fields: vec![
                        ("name".into(), "Brand New Bistro".into()),
                        ("city".into(), "Cupertino".into()),
                        ("zip".into(), "95099".into()),
                        ("phone".into(), "(408) 555-7777".into()),
                    ],
                },
                FeedRecord {
                    concept: "nonexistent".into(),
                    fields: vec![],
                },
            ],
        }
    }

    #[test]
    fn feed_merges_corroborates_and_creates() {
        let (world, mut woc) = setup();
        let before = woc.store.live_count();
        let report = ingest_feed(&mut woc, &gochi_feed(&world), Tick(200));
        assert_eq!(report.merged, 1, "gochi record matched and merged");
        assert_eq!(report.created, 1, "unknown bistro created");
        assert_eq!(report.skipped, 1, "unknown concept skipped");
        assert_eq!(woc.store.live_count(), before + 1);

        // The merged record now carries feed provenance alongside extraction.
        let hits = woc
            .record_index
            .query("gochi cupertino", 3, |n| woc.registry.id_of(n));
        let rec = woc.store.latest(hits[0].id).unwrap();
        let has_feed = rec.iter().any(|(_, es)| {
            es.iter()
                .any(|e| matches!(e.provenance.source, SourceRef::Feed(_)))
        });
        assert!(has_feed, "feed values present on the merged record");

        // The new bistro is findable.
        let hits = woc
            .record_index
            .query("brand new bistro", 3, |n| woc.registry.id_of(n));
        assert!(!hits.is_empty());
    }

    #[test]
    fn feed_json_round_trip() {
        let (world, _) = setup();
        let feed = gochi_feed(&world);
        let json = serde_json::to_string(&feed).unwrap();
        let parsed = parse_feed(&json).unwrap();
        assert_eq!(parsed.provider, feed.provider);
        assert_eq!(parsed.records.len(), 3);
        assert!(matches!(parse_feed("nope"), Err(FeedError::Malformed(_))));
    }

    #[test]
    fn feed_ingest_is_idempotent_for_values() {
        let (world, mut woc) = setup();
        let feed = gochi_feed(&world);
        ingest_feed(&mut woc, &feed, Tick(200));
        let hits = woc
            .record_index
            .query("gochi cupertino", 3, |n| woc.registry.id_of(n));
        let id = hits[0].id;
        let values_after_one = woc.store.latest(id).unwrap().num_values();
        // Re-ingesting the same feed adds no duplicate values to the merged
        // record (the second bistro copy may merge with the first).
        ingest_feed(&mut woc, &feed, Tick(300));
        let id2 = woc.store.resolve(id).unwrap();
        assert_eq!(
            woc.store.latest(id2).unwrap().num_values(),
            values_after_one,
            "same-feed values deduplicate"
        );
    }
}
