//! Lineage: the operator provenance DAG (paper §7.3).
//!
//! "Managing lineage, i.e., keeping track of the documents and the sequence
//! of operators that result in a given extracted record, is an important
//! problem … Lineage is important for two reasons": error attribution
//! ([`Lineage::attribute_error`]) and explanations
//! ([`Lineage::explain`] / [`Lineage::source_documents`]).
//!
//! The DAG is append-only and acyclic by construction: a node's inputs must
//! already exist when the node is added.

use std::collections::{HashMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use woc_lrec::LrecId;

/// Identifier of a lineage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// What a lineage node represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A crawled document (by URL).
    Document(String),
    /// An operator application (classifier, extractor, linker, merger).
    Operator {
        /// Operator name, e.g. `list-extractor`.
        name: String,
    },
    /// A record (creation or new version).
    Record(LrecId),
    /// A specific attribute value of a record.
    Value {
        /// Owning record.
        record: LrecId,
        /// Attribute key.
        attr: String,
    },
    /// A page that was quarantined or skipped during the crawl (poisoned
    /// content, exhausted retries, open circuit breaker …) and therefore
    /// contributed nothing to the web — with the reason, so every missing
    /// page is accounted for (audit check W012).
    Quarantined {
        /// The page URL.
        url: String,
        /// Why it was quarantined (e.g. `truncated`, `timeout`,
        /// `circuit-open`).
        reason: String,
    },
    /// A whole site whose *content* was quarantined — the source-reliability
    /// fixpoint converged its trust below threshold, so every record it
    /// asserted was scrubbed before resolution (audit check W016). Scoped to
    /// the site, not a page: the attack is the publisher, not the transport.
    QuarantinedSite {
        /// The site hostname.
        site: String,
        /// Why it was distrusted (e.g. `trust 0.33 < 0.60`).
        reason: String,
    },
}

/// What a quarantine entry covers. Transport-level damage (poison pages,
/// truncation, timeouts) quarantines a single [`QuarantineScope::Page`];
/// content-level damage (a distrusted source) quarantines the whole
/// [`QuarantineScope::Site`]. Both routes share [`Lineage::quarantine_scoped`]
/// so W012 (pages) and W016 (sites) audit one lineage story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineScope {
    /// One page, keyed by URL.
    Page,
    /// One site, keyed by hostname.
    Site,
}

/// One node of the DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageNode {
    /// The node id.
    pub id: NodeId,
    /// What it represents.
    pub kind: NodeKind,
    /// Upstream nodes this one was derived from.
    pub inputs: Vec<NodeId>,
}

/// The lineage DAG.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lineage {
    nodes: Vec<LineageNode>,
    by_record: HashMap<LrecId, Vec<NodeId>>,
    by_document: HashMap<String, NodeId>,
    by_quarantine: HashMap<String, NodeId>,
    by_site_quarantine: HashMap<String, NodeId>,
    downstream: HashMap<NodeId, Vec<NodeId>>,
}

impl Lineage {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn add(&mut self, kind: NodeKind, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for &i in &inputs {
            assert!(
                (i.0 as usize) < self.nodes.len(),
                "lineage input {i:?} must exist before {id:?} (acyclicity by construction)"
            );
            self.downstream.entry(i).or_default().push(id);
        }
        match &kind {
            NodeKind::Record(r) | NodeKind::Value { record: r, .. } => {
                self.by_record.entry(*r).or_default().push(id);
            }
            NodeKind::Document(url) => {
                self.by_document.insert(url.clone(), id);
            }
            NodeKind::Quarantined { url, .. } => {
                self.by_quarantine.insert(url.clone(), id);
            }
            NodeKind::QuarantinedSite { site, .. } => {
                self.by_site_quarantine.insert(site.clone(), id);
            }
            NodeKind::Operator { .. } => {}
        }
        self.nodes.push(LineageNode { id, kind, inputs });
        id
    }

    /// Register a document node (idempotent per URL).
    pub fn document(&mut self, url: &str) -> NodeId {
        if let Some(&id) = self.by_document.get(url) {
            return id;
        }
        self.add(NodeKind::Document(url.to_string()), Vec::new())
    }

    /// Register an operator application over inputs.
    pub fn operator(&mut self, name: &str, inputs: Vec<NodeId>) -> NodeId {
        self.add(
            NodeKind::Operator {
                name: name.to_string(),
            },
            inputs,
        )
    }

    /// The single quarantine entry point, shared by transport-level and
    /// content-level quarantine. Idempotent per key — re-quarantining keeps
    /// the first node (and its reason). Returns the node id.
    pub fn quarantine_scoped(&mut self, scope: QuarantineScope, key: &str, reason: &str) -> NodeId {
        let existing = match scope {
            QuarantineScope::Page => self.by_quarantine.get(key),
            QuarantineScope::Site => self.by_site_quarantine.get(key),
        };
        if let Some(&id) = existing {
            return id;
        }
        let kind = match scope {
            QuarantineScope::Page => NodeKind::Quarantined {
                url: key.to_string(),
                reason: reason.to_string(),
            },
            QuarantineScope::Site => NodeKind::QuarantinedSite {
                site: key.to_string(),
                reason: reason.to_string(),
            },
        };
        self.add(kind, Vec::new())
    }

    /// Record that a page was quarantined (or skipped) during the crawl,
    /// with the reason. Idempotent per URL — re-quarantining keeps the
    /// first node (and its reason). Returns the node id.
    pub fn quarantine(&mut self, url: &str, reason: &str) -> NodeId {
        self.quarantine_scoped(QuarantineScope::Page, url, reason)
    }

    /// Record that a whole site's content was quarantined (its trust fell
    /// below threshold). Idempotent per site, first reason wins.
    pub fn quarantine_site(&mut self, site: &str, reason: &str) -> NodeId {
        self.quarantine_scoped(QuarantineScope::Site, site, reason)
    }

    /// Every content-quarantined site as `(site, reason)`, sorted by site.
    pub fn quarantined_sites(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = self
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::QuarantinedSite { site, reason } => {
                    Some((site.as_str(), reason.as_str()))
                }
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// True when the site's content was quarantined by the trust model.
    pub fn is_site_quarantined(&self, site: &str) -> bool {
        self.by_site_quarantine.contains_key(site)
    }

    /// Every quarantined page as `(url, reason)`, sorted by URL.
    pub fn quarantined(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = self
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Quarantined { url, reason } => Some((url.as_str(), reason.as_str())),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// True when the crawl quarantined this URL.
    pub fn is_quarantined(&self, url: &str) -> bool {
        self.by_quarantine.contains_key(url)
    }

    /// Register a record produced by `producer`.
    pub fn record(&mut self, id: LrecId, producer: NodeId) -> NodeId {
        self.add(NodeKind::Record(id), vec![producer])
    }

    /// Register a value produced by `producer`.
    pub fn value(&mut self, record: LrecId, attr: &str, producer: NodeId) -> NodeId {
        self.add(
            NodeKind::Value {
                record,
                attr: attr.to_string(),
            },
            vec![producer],
        )
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Option<&LineageNode> {
        self.nodes.get(id.0 as usize)
    }

    /// All nodes belonging to a record.
    pub fn nodes_of_record(&self, id: LrecId) -> &[NodeId] {
        self.by_record.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All ancestors of a node (transitive inputs), breadth-first.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<NodeId> = self
            .node(id)
            .map(|n| n.inputs.iter().copied().collect())
            .unwrap_or_default();
        let mut out = Vec::new();
        while let Some(x) = queue.pop_front() {
            if !seen.insert(x) {
                continue;
            }
            out.push(x);
            if let Some(n) = self.node(x) {
                queue.extend(n.inputs.iter().copied());
            }
        }
        out
    }

    /// All descendants of a node (what was derived from it).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<NodeId> = self
            .downstream
            .get(&id)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        let mut out = Vec::new();
        while let Some(x) = queue.pop_front() {
            if !seen.insert(x) {
                continue;
            }
            out.push(x);
            if let Some(ds) = self.downstream.get(&x) {
                queue.extend(ds.iter().copied());
            }
        }
        out
    }

    /// Explain a record: the chain of operators and documents upstream of
    /// it, as display strings ("the user might want to look at the documents
    /// … used to construct the information").
    pub fn explain(&self, id: LrecId) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for &n in self.nodes_of_record(id) {
            for a in self.ancestors(n) {
                if !seen.insert(a) {
                    continue;
                }
                match &self
                    .node(a)
                    .expect("invariant: ancestors() returns in-bounds node ids")
                    .kind
                {
                    NodeKind::Document(url) => out.push(format!("document {url}")),
                    NodeKind::Operator { name } => out.push(format!("operator {name}")),
                    NodeKind::Record(r) => out.push(format!("record {r}")),
                    NodeKind::Value { record, attr } => out.push(format!("value {record}.{attr}")),
                    NodeKind::Quarantined { url, reason } => {
                        out.push(format!("quarantined {url} ({reason})"))
                    }
                    NodeKind::QuarantinedSite { site, reason } => {
                        out.push(format!("quarantined-site {site} ({reason})"))
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The source documents a record was derived from.
    pub fn source_documents(&self, id: LrecId) -> Vec<String> {
        let mut out: Vec<String> = self
            .explain(id)
            .into_iter()
            .filter_map(|s| s.strip_prefix("document ").map(str::to_string))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Records downstream of a document — exactly what incremental
    /// maintenance must reprocess when the document changes (paper §7.3).
    pub fn records_from_document(&self, url: &str) -> Vec<LrecId> {
        let Some(&doc) = self.by_document.get(url) else {
            return Vec::new();
        };
        let mut out: Vec<LrecId> = self
            .descendants(doc)
            .into_iter()
            .filter_map(|n| {
                match &self
                    .node(n)
                    .expect("invariant: descendants() returns in-bounds node ids")
                    .kind
                {
                    NodeKind::Record(r) => Some(*r),
                    _ => None,
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Error attribution: given records flagged as bad, count how often each
    /// operator appears upstream of them — the suspect ranking of §7.3
    /// ("keeping track of lineage helps us pinpoint the locations of
    /// errors").
    pub fn attribute_error(&self, bad_records: &[LrecId]) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for &r in bad_records {
            let mut ops = HashSet::new();
            for &n in self.nodes_of_record(r) {
                for a in self.ancestors(n) {
                    let node = self
                        .node(a)
                        .expect("invariant: ancestors() returns in-bounds node ids");
                    if let NodeKind::Operator { name } = &node.kind {
                        ops.insert(name.clone());
                    }
                }
            }
            // woc-lint: allow(map-iter-order) — counts accumulate with += into a
            // map that is sorted before being returned.
            for op in ops {
                *counts.entry(op).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Lineage, LrecId, LrecId) {
        let mut l = Lineage::new();
        let d1 = l.document("http://a.example.com/biz/gochi");
        let d2 = l.document("http://b.example.com/biz/gochi");
        let ex1 = l.operator("list-extractor", vec![d1]);
        let ex2 = l.operator("detail-extractor", vec![d2]);
        let r1 = LrecId(1);
        let r2 = LrecId(2);
        let n1 = l.record(r1, ex1);
        let n2 = l.record(r2, ex2);
        let merge = l.operator("entity-matcher", vec![n1, n2]);
        l.record(r1, merge); // r1 survives the merge
        (l, r1, r2)
    }

    #[test]
    fn document_idempotent() {
        let mut l = Lineage::new();
        let a = l.document("u");
        let b = l.document("u");
        assert_eq!(a, b);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn explain_includes_all_upstream() {
        let (l, r1, _) = sample();
        let explanation = l.explain(r1);
        assert!(explanation.iter().any(|s| s.contains("list-extractor")));
        assert!(explanation.iter().any(|s| s.contains("entity-matcher")));
        assert!(explanation.iter().any(|s| s.contains("a.example.com")));
        // Through the merge, r1 is also derived from b.example.com.
        assert!(explanation.iter().any(|s| s.contains("b.example.com")));
    }

    #[test]
    fn source_documents_of_merged_record() {
        let (l, r1, _) = sample();
        let docs = l.source_documents(r1);
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn records_from_document_for_maintenance() {
        let (l, r1, r2) = sample();
        let recs = l.records_from_document("http://b.example.com/biz/gochi");
        assert!(recs.contains(&r2));
        assert!(
            recs.contains(&r1),
            "merge makes r1 downstream of doc 2 as well"
        );
        assert!(l.records_from_document("http://unknown/").is_empty());
    }

    #[test]
    fn error_attribution_ranks_shared_operator() {
        let mut l = Lineage::new();
        let d = l.document("u");
        let bad_op = l.operator("buggy-extractor", vec![d]);
        let ok_op = l.operator("good-extractor", vec![d]);
        let r1 = LrecId(1);
        let r2 = LrecId(2);
        let r3 = LrecId(3);
        l.record(r1, bad_op);
        l.record(r2, bad_op);
        l.record(r3, ok_op);
        let ranked = l.attribute_error(&[r1, r2]);
        assert_eq!(ranked[0].0, "buggy-extractor");
        assert_eq!(ranked[0].1, 2);
        assert!(!ranked.iter().any(|(op, _)| op == "good-extractor"));
    }

    #[test]
    fn quarantine_records_reason_and_is_idempotent() {
        let mut l = Lineage::new();
        let a = l.quarantine("http://flaky.example.com/p1", "truncated");
        let b = l.quarantine("http://flaky.example.com/p1", "timeout");
        assert_eq!(a, b, "re-quarantining the same URL keeps the first node");
        l.quarantine("http://flaky.example.com/p0", "circuit-open");
        assert_eq!(
            l.quarantined(),
            vec![
                ("http://flaky.example.com/p0", "circuit-open"),
                ("http://flaky.example.com/p1", "truncated"),
            ],
            "sorted by URL, first reason wins"
        );
        assert!(l.is_quarantined("http://flaky.example.com/p1"));
        assert!(!l.is_quarantined("http://healthy.example.com/"));
    }

    #[test]
    fn quarantine_nodes_do_not_disturb_provenance_queries() {
        let (mut l, r1, _) = sample();
        l.quarantine("http://c.example.com/lost", "http-5xx");
        let explanation = l.explain(r1);
        assert!(
            !explanation.iter().any(|s| s.contains("quarantined")),
            "quarantine nodes have no edges into record provenance"
        );
        assert!(l
            .records_from_document("http://c.example.com/lost")
            .is_empty());
    }

    #[test]
    fn site_and_page_quarantine_share_one_code_path() {
        let mut l = Lineage::new();
        let p = l.quarantine_scoped(QuarantineScope::Page, "http://x/p", "truncated");
        assert_eq!(
            l.quarantine("http://x/p", "other"),
            p,
            "page route delegates"
        );
        let s = l.quarantine_site("spam.example.net", "trust 0.33 < 0.60");
        assert_eq!(
            l.quarantine_scoped(QuarantineScope::Site, "spam.example.net", "again"),
            s,
            "site route is idempotent, first reason wins"
        );
        assert!(l.is_site_quarantined("spam.example.net"));
        assert!(!l.is_site_quarantined("honest.example.com"));
        assert_eq!(
            l.quarantined_sites(),
            vec![("spam.example.net", "trust 0.33 < 0.60")]
        );
        // Page-scope listing is unaffected by site entries: W012's page
        // accounting must not see content-level quarantine.
        assert_eq!(l.quarantined(), vec![("http://x/p", "truncated")]);
        assert!(!l.is_quarantined("spam.example.net"));
    }

    #[test]
    #[should_panic(expected = "must exist")]
    fn forward_reference_rejected() {
        let mut l = Lineage::new();
        l.operator("op", vec![NodeId(99)]);
    }

    #[test]
    fn descendants_and_ancestors_consistent() {
        let (l, _, _) = sample();
        // For every edge, ancestor/descendant views agree.
        for n in 0..l.len() as u32 {
            let id = NodeId(n);
            for a in l.ancestors(id) {
                assert!(
                    l.descendants(a).contains(&id),
                    "{a:?} is ancestor of {id:?} but not vice versa"
                );
            }
        }
    }
}
