//! The construction pipeline: from a crawled corpus to a web of concepts.
//!
//! Paper §4: "We can view today's web as a simplified web of concepts, where
//! each record is of type Document. We want to start from here and extract
//! records of richer types" via the three operation families the paper
//! lists — *information extraction* (lists + detail pages), *linking*
//! (entity resolution, review→record matching, semantic linking) and
//! *analysis* (reconciliation, quality scoring). Every operator application
//! is recorded in [`crate::lineage::Lineage`] and every value carries a
//! confidence, so §7.3's uncertainty/lineage requirements hold end to end.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use woc_extract::lists::{extract_lists, ConceptProfile};
use woc_extract::ExtractedRecord;
use woc_index::{InvertedIndex, LrecIndex, MergePolicy, SegmentedLrecIndex};
use woc_lrec::domains::{standard_registry, StandardConcepts};
use woc_lrec::value::Date;
use woc_lrec::{AttrValue, ConceptId, ConceptRegistry, Lrec, LrecId, Provenance, Store, Tick};
use woc_matching::{candidate_pairs_sharded, CollectiveConfig, FellegiSunter, GenerativeMatcher};
use woc_textkit::gazetteer;
use woc_textkit::recognize::{self, FieldKind};
use woc_textkit::tokenize::normalize;
use woc_webgen::{Page, WebCorpus};

use crate::graph::{AssocKind, ConceptWeb};
use crate::lineage::Lineage;
use crate::memo::{self, BuildCaches};
use crate::parallel::{resolve_threads, shard_map};
use crate::report::PipelineReport;
use crate::trust::{pool_key, Claim, Selection, TrustConfig, TrustModel};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Logical time of this construction run.
    pub tick: Tick,
    /// Worker threads for the sharded stages (0 = all available cores).
    /// Output is byte-identical at any thread count.
    pub threads: usize,
    /// Use collective (relational) resolution instead of purely pairwise.
    pub collective: bool,
    /// Minimum generative-matcher margin to accept a review→record link.
    pub review_margin: f64,
    /// Run domain-centric list extraction (ablation flag).
    pub use_lists: bool,
    /// Run detail-page extraction (ablation flag).
    pub use_detail: bool,
    /// Run entity resolution (ablation flag).
    pub resolve_entities: bool,
    /// Run value reconciliation (ablation flag).
    pub reconcile_values: bool,
    /// Source-reliability model: fixpoint trust per site, quarantine of
    /// systematically wrong sites, reliability-weighted reconciliation.
    pub trust: TrustConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            tick: Tick(1),
            threads: 0,
            collective: true,
            review_margin: 0.5,
            use_lists: true,
            use_detail: true,
            resolve_entities: true,
            reconcile_values: true,
            trust: TrustConfig::default(),
        }
    }
}

/// The constructed web of concepts.
///
/// `Clone` supports the serving layer's maintenance cycle: clone the
/// currently-published web, run [`crate::maintain::recrawl`] on the copy,
/// then publish it as a new snapshot epoch while readers drain the old one.
#[derive(Debug, Clone)]
pub struct WebOfConcepts {
    /// Concept registry.
    pub registry: ConceptRegistry,
    /// Standard concept ids.
    pub concepts: StandardConcepts,
    /// Canonical records.
    pub store: Store,
    /// Operator provenance DAG.
    pub lineage: Lineage,
    /// Record↔document associations.
    pub web: ConceptWeb,
    /// Fielded index over canonical records (concept search).
    pub record_index: LrecIndex,
    /// Inverted index over document text (vanilla search).
    pub doc_index: InvertedIndex,
    /// Document URLs by doc-index id.
    pub doc_urls: Vec<String>,
    /// Page titles by doc-index id.
    pub doc_titles: Vec<String>,
    /// The source-reliability model: per-site trust, quarantine decisions,
    /// and the selection/exclusion log reconciliation produced under it.
    pub trust: TrustModel,
    /// Stage timings and record counts of the build that produced this web.
    pub report: PipelineReport,
}

impl WebOfConcepts {
    /// Canonical (post-merge) id for any record id.
    pub fn canonical(&self, id: LrecId) -> Option<LrecId> {
        self.store.resolve(id)
    }

    /// Live records of a concept.
    pub fn records_of(&self, concept: woc_lrec::ConceptId) -> Vec<&Lrec> {
        self.store
            .by_concept(concept)
            .into_iter()
            .filter_map(|id| self.store.latest(id))
            .collect()
    }

    /// The URL of a doc-index hit.
    pub fn doc_url(&self, doc: woc_index::DocId) -> &str {
        &self.doc_urls[doc.0 as usize]
    }

    /// A segmented record index over the live records, with base stats
    /// pinned at this corpus state. The base segment indexes exactly the
    /// token lists [`record_index`](Self::record_index) holds, so a fresh
    /// segmented index is byte-identical to the flat one.
    pub fn segmented_record_index(&self, policy: MergePolicy) -> SegmentedLrecIndex {
        let entries = self
            .store
            .live_ids()
            .into_iter()
            .map(|id| {
                let rec = self
                    .store
                    .latest(id)
                    .expect("invariant: live_ids() yields ids with a latest version");
                (id, rec.concept(), LrecIndex::record_tokens(rec))
            })
            .collect();
        SegmentedLrecIndex::new(entries, policy)
    }
}

/// Field name → typed value, using the recognizer/kind conventions shared
/// with `woc-extract`.
pub fn type_value(field: &str, raw: &str) -> AttrValue {
    match field {
        "phone" => AttrValue::parse_phone(raw).unwrap_or_else(|| AttrValue::Text(raw.to_string())),
        "zip" => {
            let digits: String = raw.chars().take_while(|c| c.is_ascii_digit()).collect();
            if digits.len() == 5 {
                AttrValue::Zip(digits)
            } else {
                AttrValue::Text(raw.to_string())
            }
        }
        "price" => AttrValue::parse_price(raw).unwrap_or_else(|| AttrValue::Text(raw.to_string())),
        "date" => parse_date(raw)
            .map(AttrValue::Date)
            .unwrap_or_else(|| AttrValue::Text(raw.to_string())),
        "rating" | "year" => raw
            .parse::<i64>()
            .map(AttrValue::Int)
            .unwrap_or_else(|_| AttrValue::Text(raw.to_string())),
        "homepage" | "url" => AttrValue::Url(raw.to_string()),
        _ => AttrValue::Text(raw.to_string()),
    }
}

/// Parse the date formats the recognizers accept into a typed [`Date`].
pub fn parse_date(raw: &str) -> Option<Date> {
    let toks = woc_textkit::tokenize::tokenize(raw);
    // Month D, YYYY
    if toks.len() >= 3 {
        if let Some(month) = gazetteer::MONTHS
            .iter()
            .position(|m| m.eq_ignore_ascii_case(&toks[0].text))
        {
            let day: u8 = toks[1].text.parse().ok()?;
            let year: u16 = toks.last()?.text.parse().ok()?;
            if (1..=31).contains(&day) && year >= 1000 {
                return Some(Date {
                    year,
                    month: month as u8 + 1,
                    day,
                });
            }
        }
    }
    // YYYY-MM-DD
    let iso: Vec<&str> = raw.split('-').map(str::trim).collect();
    if iso.len() == 3 && iso[0].len() == 4 {
        if let (Ok(year), Ok(month), Ok(day)) = (
            iso[0].parse::<u16>(),
            iso[1].parse::<u8>(),
            iso[2].parse::<u8>(),
        ) {
            if (1..=12).contains(&month) && (1..=31).contains(&day) {
                return Some(Date { year, month, day });
            }
        }
    }
    // M/D/YYYY
    let nums: Vec<&str> = raw.split('/').collect();
    if nums.len() == 3 {
        let month: u8 = nums[0].trim().parse().ok()?;
        let day: u8 = nums[1].trim().parse().ok()?;
        let year: u16 = nums[2].trim().parse().ok()?;
        if (1..=12).contains(&month) && (1..=31).contains(&day) {
            return Some(Date { year, month, day });
        }
    }
    None
}

/// Detail-page extraction: one record from a page that is *about* a single
/// entity (biz pages, homepages, product pages, event pages). Unsupervised:
/// headline = name, recognizers supply typed fields, simple cues pick the
/// concept.
pub fn detail_extract(page: &Page, exclude_concepts: &[&str]) -> Option<ExtractedRecord> {
    let dom = &page.dom;
    let h1 = dom.find_tag("h1").first().map(|n| n.text_content())?;
    if h1.is_empty() || h1.len() > 90 {
        return None;
    }
    // Boilerplate headlines ("Search results for …", "Find …") are not
    // entity names; drop the name but keep extracting typed fields.
    let h1_lower = h1.to_lowercase();
    let boilerplate = [
        "search results",
        "find ",
        "welcome",
        "join our",
        "upcoming events",
    ]
    .iter()
    .any(|b| h1_lower.starts_with(b));
    let h1 = if boilerplate { String::new() } else { h1 };
    let text = page.text();
    let spans = recognize::recognize_all(&text);
    let mut fields: Vec<(String, String)> = Vec::new();
    if !h1.is_empty() {
        fields.push(("name".to_string(), h1));
    }
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for s in &spans {
        let (field, limit) = match s.kind {
            FieldKind::Phone => ("phone", 2),
            FieldKind::Zip => ("zip", 1),
            FieldKind::StreetAddress => ("street", 1),
            FieldKind::City => ("city", 1),
            FieldKind::Cuisine => ("cuisine", 1),
            FieldKind::Time => ("hours", 2),
            FieldKind::Date => ("date", 1),
            FieldKind::Price => ("price", 1),
            FieldKind::Email => ("email", 1),
            FieldKind::Url => continue,
        };
        let c = counts.entry(field).or_insert(0);
        if *c < limit {
            fields.push((field.to_string(), s.text.clone()));
            *c += 1;
        }
    }
    // Label mining: sites that label their fields ("Brand: Nikon") expose
    // (label, value) pairs no recognizer is needed for — unsupervised
    // key-value extraction off the markup, §4.2's "exploit markup and other
    // contextual cues".
    for (label, value) in labeled_fields(dom) {
        let field = match label.as_str() {
            "brand" => "brand",
            "model" => "model",
            "category" => "category",
            "cuisine" => "cuisine",
            "venue" | "where" => "venue",
            _ => continue,
        };
        if !fields.iter().any(|(k, _)| k == field) && !value.is_empty() && value.len() < 60 {
            fields.push((field.to_string(), value));
        }
    }

    // Homepage link: an anchor whose text mentions "homepage".
    for (_, n) in dom.walk() {
        if n.tag() == Some("a") && n.text_content().to_lowercase().contains("homepage") {
            if let Some(href) = n.get_attr("href") {
                fields.push(("homepage".to_string(), href.to_string()));
                break;
            }
        }
    }
    // Hours range "9am - 9pm": merge the first two time spans into one
    // opening-hours value.
    let times: Vec<&str> = fields
        .iter()
        .filter(|(k, _)| k == "hours")
        .map(|(_, v)| v.as_str())
        .collect();
    let hours_merged = match times.as_slice() {
        [open] => Some((*open).to_string()),
        [open, close, ..] => Some(format!("{open} - {close}")),
        [] => None,
    };

    // Concept guess from the field mix.
    let has = |f: &str| fields.iter().any(|(k, _)| k == f);
    let brandish = fields
        .iter()
        .any(|(k, v)| k == "name" && gazetteer::BRANDS.iter().any(|b| v.starts_with(b)));
    let concept = if has("street") || has("zip") || (has("phone") && has("city")) {
        "restaurant"
    } else if brandish {
        "product"
    } else if has("date") && has("name") {
        "event"
    } else {
        return None;
    };
    // Lists on this page already claimed the concept: the page is a listing,
    // not a detail page about one entity.
    if exclude_concepts.contains(&concept) {
        return None;
    }
    // A record with nothing but a city is noise.
    if fields.len() < 2 {
        return None;
    }
    if let Some(h) = hours_merged {
        fields.retain(|(k, _)| k != "hours");
        if concept == "restaurant" {
            fields.push(("hours".to_string(), h));
        }
    }
    if concept != "restaurant" {
        fields.retain(|(k, _)| !matches!(k.as_str(), "street" | "zip" | "hours"));
    }
    if concept != "event" {
        fields.retain(|(k, _)| k != "date");
    }
    Some(ExtractedRecord {
        concept: Some(concept.to_string()),
        fields,
        confidence: 0.75,
        source_url: page.url.clone(),
    })
}

/// Mine `(label, value)` pairs from labeled-field markup: an element whose
/// first child's text ends with `:` labels the text of its remaining
/// children. Site-independent — only the labeling *convention* is assumed.
pub fn labeled_fields(dom: &woc_webgen::Node) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (_, node) in dom.walk() {
        let kids = node.child_nodes();
        if kids.len() < 2 {
            continue;
        }
        let label_text = kids[0].text_content();
        let Some(label) = label_text.strip_suffix(':') else {
            continue;
        };
        if label.is_empty() || label.len() > 20 || label.contains(' ') && label.len() > 16 {
            continue;
        }
        let value = kids[1..]
            .iter()
            .map(|k| k.text_content())
            .collect::<Vec<_>>()
            .join(" ")
            .trim()
            .to_string();
        if !value.is_empty() {
            out.push((label.trim().to_lowercase(), value));
        }
    }
    out
}

/// Extract all records from one page honoring ablation flags.
pub fn extract_page_with(
    page: &Page,
    profiles: &[ConceptProfile],
    use_lists: bool,
    use_detail: bool,
) -> Vec<ExtractedRecord> {
    let mut out = if use_lists {
        extract_lists(page, profiles)
    } else {
        Vec::new()
    };
    if use_detail {
        let claimed = woc_extract::lists::claimed_concepts(page, profiles, 2);
        let claimed_refs: Vec<&str> = claimed.iter().map(String::as_str).collect();
        if let Some(rec) = detail_extract(page, &claimed_refs) {
            out.push(rec);
        }
    }
    out
}

/// Extract all records from one page (lists + detail).
pub fn extract_page(page: &Page, profiles: &[ConceptProfile]) -> Vec<ExtractedRecord> {
    let mut out = extract_lists(page, profiles);
    // Suppression uses a lower row minimum than extraction: even a two-row
    // listing marks the page as a listing, not a detail page.
    let claimed = woc_extract::lists::claimed_concepts(page, profiles, 2);
    let claimed_refs: Vec<&str> = claimed.iter().map(String::as_str).collect();
    // Detail extraction complements lists: the page-level record — unless a
    // list already claimed the same concept (listing pages are not about one
    // entity).
    if let Some(rec) = detail_extract(page, &claimed_refs) {
        out.push(rec);
    }
    out
}

/// Build the web of concepts from a corpus.
///
/// The heavy stages (extraction, candidate generation, pair scoring, the
/// mention scan) shard across `config.threads` workers via
/// [`crate::parallel::shard_map`]; the produced web is byte-identical at any
/// thread count. Stage timings and counts are returned in
/// [`WebOfConcepts::report`].
pub fn build(corpus: &WebCorpus, config: &PipelineConfig) -> WebOfConcepts {
    build_with_caches(corpus, config, None)
}

/// Like [`build`], threading [`BuildCaches`] memo caches through the pure
/// heavy stages: page extraction, pair scoring, the mention scan and index
/// construction. `build_with_caches(c, cfg, Some(&mut caches))` returns a
/// web **byte-identical** to `build(c, cfg)` — every memo is keyed purely
/// on the content its computation reads — while recomputing only what
/// changed since the caches were last used. The `woc-incr` maintenance
/// engine is the caller; [`build`] itself delegates here with `None`.
pub fn build_with_caches(
    corpus: &WebCorpus,
    config: &PipelineConfig,
    mut caches: Option<&mut BuildCaches>,
) -> WebOfConcepts {
    let (registry, concepts) = standard_registry();
    let mut store = Store::new();
    let mut lineage = Lineage::new();
    let mut web = ConceptWeb::new();
    let tick = config.tick;
    let profiles = ConceptProfile::standard();
    let threads = resolve_threads(config.threads);
    let mut report = PipelineReport::new(threads);
    let mut t0 = Instant::now();

    // --- Stage A: page extraction (sharded over pages) -------------------
    let pages: Vec<&Page> = corpus.pages().iter().collect();
    let (use_lists, use_detail) = (config.use_lists, config.use_detail);
    let page_fps: Vec<u64> = if caches.is_some() {
        shard_map(&pages, threads, |p| p.fingerprint())
    } else {
        Vec::new()
    };
    if let Some(c) = caches.as_deref_mut() {
        c.begin_pass();
    }
    let extract_one = |p: &Page| extract_page_with(p, &profiles, use_lists, use_detail);
    let extracted: Vec<std::sync::Arc<Vec<ExtractedRecord>>> = match caches.as_deref_mut() {
        Some(c) => c.memo_extract(&page_fps, &pages, threads, extract_one),
        None => shard_map(&pages, threads, |p| std::sync::Arc::new(extract_one(p))),
    };
    report.pages_scanned = pages.len();
    report.stage_done("extract", pages.len(), &mut t0);

    // --- Stage B: typed record creation with lineage --------------------
    let concept_id = |name: &str| registry.id_of(name).expect("standard concept");
    let mut created: Vec<LrecId> = Vec::new();
    // Fuel for the source-reliability fixpoint: every pooled-concept claim
    // (site, entity pool, attribute, value), taken PRE-merge — absorbing a
    // duplicate record would destroy the cross-site corroboration signal.
    let mut claims: Vec<Claim> = Vec::new();
    // Which site asserted each record, so a distrusted site's records can
    // be scrubbed before entity resolution sees them.
    let mut record_sites: Vec<(LrecId, String)> = Vec::new();
    for (page, recs) in pages.iter().zip(&extracted) {
        if recs.is_empty() {
            continue;
        }
        let doc_node = lineage.document(&page.url);
        for rec in recs.iter() {
            let Some(concept_name) = rec.concept.as_deref() else {
                continue;
            };
            let cid = concept_id(concept_name);
            let op = if rec.fields.len() > 1 && rec.confidence >= 0.75 {
                "detail-extractor"
            } else {
                "list-extractor"
            };
            let op_node = lineage.operator(op, vec![doc_node]);
            // Publication rows carry the raw citation text; refine it into
            // title/authors with the unsupervised citation parser.
            let mut fields: Vec<(String, String)> = rec.fields.clone();
            if concept_name == "publication" {
                if let Some(text) = fields
                    .iter()
                    .find(|(k, _)| k == "text")
                    .map(|(_, v)| v.clone())
                {
                    let parsed = woc_extract::citations::parse_citation(&text);
                    fields.retain(|(k, _)| k != "text" && k != "name");
                    if let Some(t) = parsed.title {
                        fields.push(("title".to_string(), t));
                    }
                    if let Some(a) = parsed.authors {
                        fields.push(("author_names".to_string(), a));
                    }
                }
            }
            let id = store.insert(cid, tick, |r| {
                for (field, raw) in &fields {
                    r.add(
                        field,
                        type_value(field, raw),
                        Provenance::extracted(&page.url, op, rec.confidence, tick),
                    );
                }
            });
            lineage.record(id, op_node);
            web.associate(id, &page.url, AssocKind::ExtractedFrom);
            created.push(id);
            record_sites.push((id, page.site.clone()));
            if config.trust.enabled && config.trust.concepts.iter().any(|c| c == concept_name) {
                let name = fields
                    .iter()
                    .find(|(k, _)| k == "name")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("");
                let city = fields
                    .iter()
                    .find(|(k, _)| k == "city")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("");
                // Unnamed records would all pool together; skip them.
                if !name.is_empty() {
                    let pool = pool_key(concept_name, name, city);
                    for (field, raw) in &fields {
                        // Pool-key attributes (name, city) are tautologically
                        // in agreement within a pool — every site "wins" them,
                        // so they carry no reliability signal and would only
                        // dilute the contested facts that do.
                        if field == "name" || field == "city" {
                            continue;
                        }
                        claims.push(Claim {
                            site: page.site.clone(),
                            pool: pool.clone(),
                            attr: field.clone(),
                            value: type_value(field, raw),
                            confidence: rec.confidence,
                        });
                    }
                }
            }
        }
    }
    report.lrecs_extracted = created.len();
    report.stage_done("records", created.len(), &mut t0);

    // --- Stage B2: source-reliability fixpoint ---------------------------
    // TruthFinder-style iteration over the pre-merge claims: a site is
    // trusted to the extent its contested claims win, and a claim group wins
    // to the extent trusted sites assert it. Sites converging below the
    // threshold are content-quarantined — the same lineage story transport
    // faults use, at site scope.
    let trust_model = if config.trust.enabled {
        let model = TrustModel::compute(claims, &config.trust);
        for (site, reason) in &model.quarantined {
            lineage.quarantine_site(site, reason);
        }
        report.sites_distrusted = model.quarantined.len();
        model
    } else {
        TrustModel::default()
    };

    // --- Stage B3: scrub records asserted by distrusted sites ------------
    // Retract BEFORE entity resolution: a spam record absorbed into an
    // honest cluster would launder its values past the trust gate. After the
    // scrub the live store is exactly what a clean crawl would have built.
    let mut scrubbed = 0usize;
    if report.sites_distrusted > 0 {
        for (id, site) in &record_sites {
            if trust_model.is_quarantined(site) {
                store
                    .retract(*id)
                    .expect("retract freshly created record from distrusted site");
                web.remove_record(*id);
                scrubbed += 1;
            }
        }
    }
    report.stage_done("trust", scrubbed, &mut t0);

    // --- Stage C: entity resolution per concept --------------------------
    // Every mutating store operation gets its own strictly-increasing tick.
    let mut clock = tick;
    let mut next_tick = move || {
        clock = clock.next();
        clock
    };
    for cname in ["restaurant", "menu_item", "publication", "event", "product"] {
        if !config.resolve_entities {
            break;
        }
        let cid = concept_id(cname);
        let ids: Vec<LrecId> = store.by_concept(cid);
        if ids.len() < 2 {
            continue;
        }
        let recs: Vec<Lrec> = ids
            .iter()
            .map(|&i| {
                store
                    .latest(i)
                    .expect("invariant: by_concept() yields live ids")
                    .clone()
            })
            .collect();
        let refs: Vec<&Lrec> = recs.iter().collect();
        let pairs = candidate_pairs_sharded(&refs, 200, threads);
        let fs = scorer_for(cname);
        let scored: Vec<(usize, usize, f64)> = match caches.as_deref_mut() {
            Some(c) => {
                // Digests are taken pre-merge, before any `Ref` values
                // exist, so they are pure functions of extracted content —
                // stable under the id renumbering a removed page causes.
                let digests: Vec<u64> = shard_map(&refs, threads, |r| memo::content_digest(r));
                c.memo_scores(cid.0, &digests, &pairs, threads, |i, j| {
                    fs.score(&recs[i], &recs[j])
                })
            }
            None => shard_map(&pairs, threads, |&(i, j)| {
                (i, j, fs.score(&recs[i], &recs[j]))
            }),
        };
        report.match_pairs_scored += scored.len();
        let mut uf = if config.collective {
            // Relational evidence: records extracted from pages that mention
            // each other… for the corpus here, shared source hosts carry no
            // evidence, so neighbors are records sharing a source document.
            // BTreeMap, not HashMap: the per-doc member lists feed `neighbors`
            // in iteration order, which must not depend on hash seeding.
            let mut doc_members: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
            for (i, id) in ids.iter().enumerate() {
                for (url, _) in web.docs_of(*id) {
                    doc_members.entry(url.as_str()).or_default().push(i);
                }
            }
            let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
            for members in doc_members.values() {
                for &i in members {
                    for &j in members {
                        if i != j {
                            neighbors[i].push(j);
                        }
                    }
                }
            }
            let (uf, _) = woc_matching::resolve_collective(
                ids.len(),
                &scored,
                &neighbors,
                &CollectiveConfig {
                    accept: fs.upper,
                    relational_weight: 0.8,
                    max_iters: 5,
                },
            );
            uf
        } else {
            woc_matching::resolve_pairwise(ids.len(), &scored, fs.upper)
        };
        // Merge clusters: the member with the most values wins.
        for cluster in uf.clusters() {
            if cluster.len() < 2 {
                continue;
            }
            report.clusters_formed += 1;
            let winner_idx = *cluster
                .iter()
                .max_by_key(|&&i| recs[i].num_values())
                .expect("invariant: clusters() yields non-empty clusters");
            let winner = ids[winner_idx];
            let mut inputs = vec![];
            for &i in &cluster {
                if let Some(&n) = lineage.nodes_of_record(ids[i]).first() {
                    inputs.push(n);
                }
            }
            let op = lineage.operator("entity-matcher", inputs);
            lineage.record(winner, op);
            for &i in &cluster {
                if ids[i] != winner {
                    store
                        .merge(winner, ids[i], next_tick())
                        .expect("merge of live records");
                }
            }
        }
    }
    web.resolve_merges(&store);
    report.stage_done("resolve", report.match_pairs_scored, &mut t0);

    // --- Stage C2: reconciliation ----------------------------------------
    // Pooled concepts reconcile under the reliability model: group rank is
    // trust-weighted, quarantined-only value groups are excluded outright,
    // and winners get SiteSupport provenance. With no quarantined sites this
    // is identical to plain reconcile, so honest builds are unchanged.
    let mut trust_model = trust_model;
    let pooled: Vec<(ConceptId, &str)> = if config.trust.enabled {
        config
            .trust
            .concepts
            .iter()
            .filter_map(|n| registry.id_of(n).map(|cid| (cid, n.as_str())))
            .collect()
    } else {
        Vec::new()
    };
    let mut reconciled = 0usize;
    for id in store.live_ids() {
        if !config.reconcile_values {
            break;
        }
        let rec = store
            .latest(id)
            .expect("invariant: live_ids() yields ids with a latest version")
            .clone();
        let Some(schema) = registry.schema(rec.concept()) else {
            continue;
        };
        if let Some((_, cname)) = pooled.iter().find(|(cid, _)| *cid == rec.concept()) {
            let tr = crate::uncertainty::reconcile_with_trust(&rec, schema, &trust_model);
            if !tr.recon.conflicts.is_empty() || rec.num_values() > rec.num_attrs() {
                let pool = pool_key(
                    cname,
                    rec.best_string("name").as_deref().unwrap_or(""),
                    rec.best_string("city").as_deref().unwrap_or(""),
                );
                store
                    .update(id, next_tick(), |r| {
                        crate::uncertainty::apply_reconciliation(r, &tr.recon, "reconciler");
                    })
                    .expect("reconcile update");
                for w in tr.winners {
                    trust_model.selections.push(Selection {
                        record: id,
                        attr: w.attr,
                        pool: pool.clone(),
                        value: w.value,
                        support: w.support,
                    });
                }
                for ex in tr.excluded {
                    trust_model.exclusions.push(crate::trust::Exclusion {
                        record: id,
                        attr: ex.attr,
                        value: ex.value,
                        sites: ex.sites,
                    });
                }
                reconciled += 1;
            }
        } else {
            let recon = crate::uncertainty::reconcile(&rec, schema);
            if !recon.conflicts.is_empty() || rec.num_values() > rec.num_attrs() {
                store
                    .update(id, next_tick(), |r| {
                        crate::uncertainty::apply_reconciliation(r, &recon, "reconciler");
                    })
                    .expect("reconcile update");
                reconciled += 1;
            }
        }
    }
    report.stage_done("reconcile", reconciled, &mut t0);

    // --- Stage D: review → record linking --------------------------------
    let mut review_links = 0usize;
    let restaurant_recs: Vec<Lrec> = store
        .by_concept(concepts.restaurant)
        .into_iter()
        .map(|id| {
            store
                .latest(id)
                .expect("invariant: by_concept() yields live ids")
                .clone()
        })
        .collect();
    if !restaurant_recs.is_empty() {
        let matcher = GenerativeMatcher::build(restaurant_recs.iter(), &[], 0.6);
        for rid in store.by_concept(concepts.review) {
            let Some(text) = store
                .latest(rid)
                .and_then(|r| r.best_text("text").map(str::to_string))
            else {
                continue;
            };
            if let Some((target, margin)) = matcher.match_text(&text) {
                if margin >= config.review_margin {
                    let conf = 1.0 - (-margin).exp();
                    let t = next_tick();
                    store
                        .update(rid, t, |r| {
                            r.set(
                                "about",
                                AttrValue::Ref(target),
                                Provenance::derived("review-linker", conf, t),
                            );
                        })
                        .expect("review link update");
                    let rec_node = lineage
                        .nodes_of_record(rid)
                        .first()
                        .copied()
                        .unwrap_or_else(|| lineage.operator("review-linker", vec![]));
                    let op = lineage.operator("review-linker", vec![rec_node]);
                    lineage.record(rid, op);
                    for (url, kind) in web.docs_of(rid).to_vec() {
                        if kind == AssocKind::ExtractedFrom {
                            web.associate(target, &url, AssocKind::ReviewOf);
                        }
                    }
                    review_links += 1;
                }
            }
        }
    }
    report.stage_done("review-link", review_links, &mut t0);

    // --- Stage E: semantic linking (record mentions in documents) --------
    let mention_targets: Vec<(LrecId, String)> = store
        .live_ids()
        .into_iter()
        .filter_map(|id| {
            let rec = store.latest(id)?;
            let name = rec
                .best_string("name")
                .or_else(|| rec.best_string("title"))?;
            let norm = normalize(&name);
            // Short/generic names create false mentions; require 2+ tokens.
            (norm.split(' ').count() >= 2).then_some((id, norm))
        })
        .collect();
    // The scan (normalize + substring search over every page × target) is
    // the pure, heavy part — shard it. Association order depends only on
    // pre-E web state, so serial application in page order is identical.
    let mentions_per_page: Vec<Vec<LrecId>> = match caches.as_deref_mut() {
        Some(c) => {
            // Memoize the heavy pure part per (page, target-name set): which
            // names occur in the page text. The id-dependent filtering on
            // top replays cheaply against the current web state.
            let mut names: Vec<&str> = mention_targets.iter().map(|(_, n)| n.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            let names_digest = memo::digest_strs(&names);
            let matched = c.memo_mentions(&page_fps, &pages, names_digest, threads, |page| {
                let text = normalize(&page.text());
                names
                    .iter()
                    .filter(|n| text.contains(**n))
                    .map(|n| (*n).to_string())
                    .collect()
            });
            // name -> (position, id) pairs, so each page only touches the
            // targets its matched names name. Sorting the gathered pairs by
            // position restores the exact mention_targets iteration order the
            // uncached path produces — byte-identity depends on that.
            let mut by_name: std::collections::HashMap<&str, Vec<(usize, LrecId)>> =
                std::collections::HashMap::new();
            for (pos, (id, name)) in mention_targets.iter().enumerate() {
                by_name.entry(name.as_str()).or_default().push((pos, *id));
            }
            pages
                .iter()
                .zip(&matched)
                .map(|(page, m)| {
                    if m.is_empty() {
                        return Vec::new();
                    }
                    let mut hits: Vec<(usize, LrecId)> = m
                        .iter()
                        .filter_map(|n| by_name.get(n.as_str()))
                        .flatten()
                        .copied()
                        .collect();
                    hits.sort_unstable_by_key(|&(pos, _)| pos);
                    hits.iter()
                        .filter(|(_, id)| !web.records_of(&page.url).iter().any(|(r, _)| r == id))
                        .map(|&(_, id)| id)
                        .collect()
                })
                .collect()
        }
        None => shard_map(&pages, threads, |page| {
            let text = normalize(&page.text());
            mention_targets
                .iter()
                .filter(|(id, name)| {
                    text.contains(name.as_str())
                        && !web.records_of(&page.url).iter().any(|(r, _)| r == id)
                })
                .map(|(id, _)| *id)
                .collect()
        }),
    };
    for (page, ids) in pages.iter().zip(&mentions_per_page) {
        // A distrusted site's pages link to nothing: a spam page stuffed
        // with honest names must not become "related documents" in serving.
        if lineage.is_site_quarantined(&page.site) {
            continue;
        }
        for id in ids {
            web.associate(*id, &page.url, AssocKind::Mentions);
            report.mention_links += 1;
        }
    }
    report.stage_done("mention-scan", pages.len(), &mut t0);

    // --- Stage E2: augmentation links ("Customers also bought") ----------
    // Product pages advertise complements; resolve anchor names to product
    // records and store typed `augments` refs (the §5.4 Augmentations data).
    let product_by_name: HashMap<String, LrecId> = store
        .by_concept(concepts.product)
        .into_iter()
        .filter_map(|id| {
            store
                .latest(id)
                .and_then(|r| r.best_string("name"))
                .map(|n| (normalize(&n), id))
        })
        .collect();
    // The DOM walk for also-bought anchors is a pure function of page
    // content — memoizable per fingerprint; only the name→record resolution
    // below depends on the current store.
    let scan_also = |page: &Page| {
        let mut names: Vec<String> = Vec::new();
        let mut in_also = false;
        for (_, n) in page.dom.walk() {
            if n.tag() == Some("h2") {
                in_also = n.text_content().to_lowercase().contains("also bought");
                continue;
            }
            if in_also && n.tag() == Some("a") {
                names.push(normalize(&n.text_content()));
            }
        }
        names
    };
    let also_names: Vec<std::sync::Arc<Vec<String>>> = match caches.as_deref_mut() {
        Some(c) => c.memo_also(&page_fps, &pages, threads, scan_also),
        None => pages
            .iter()
            .map(|p| std::sync::Arc::new(scan_also(p)))
            .collect(),
    };
    let mut augment_links = 0usize;
    for (page, names) in pages.iter().zip(&also_names) {
        let also: Vec<LrecId> = names
            .iter()
            .filter_map(|n| product_by_name.get(n).copied())
            .collect();
        if also.is_empty() {
            continue;
        }
        let owner = web
            .records_of(&page.url)
            .iter()
            .filter(|(_, k)| *k == AssocKind::ExtractedFrom)
            .filter_map(|(r, _)| store.resolve(*r))
            .find(|&r| {
                store
                    .latest(r)
                    .is_some_and(|x| x.concept() == concepts.product)
            });
        if let Some(owner) = owner {
            let t = next_tick();
            let existing: Vec<LrecId> = store
                .latest(owner)
                .map(|r| {
                    r.get("augments")
                        .iter()
                        .filter_map(|e| e.value.as_ref_id())
                        .collect()
                })
                .unwrap_or_default();
            let fresh: Vec<LrecId> = also
                .into_iter()
                .filter(|a| *a != owner && !existing.contains(a))
                .collect();
            if !fresh.is_empty() {
                augment_links += fresh.len();
                store
                    .update(owner, t, |r| {
                        for a in &fresh {
                            r.add(
                                "augments",
                                AttrValue::Ref(*a),
                                Provenance::derived("augment-linker", 0.8, t),
                            );
                        }
                    })
                    .expect("augment update");
            }
        }
    }
    report.stage_done("augment", augment_links, &mut t0);

    // --- Stage F: homepage associations -----------------------------------
    let mut homepage_links = 0usize;
    for id in store.live_ids() {
        if let Some(url) = store.latest(id).and_then(|r| r.best_string("homepage")) {
            if corpus.get(&url).is_some() {
                web.associate(id, &url, AssocKind::Homepage);
                homepage_links += 1;
            }
        }
    }
    report.stage_done("homepage", homepage_links, &mut t0);

    // --- Stage G: indexes ---------------------------------------------------
    // Distrusted sites serve nothing: their pages are excluded from the
    // document index and tables. Adversarial pages are appended after the
    // honest corpus, so the surviving prefix — and with it every doc id —
    // is byte-identical to a clean crawl's.
    let (live_pages, live_fps): (Vec<&Page>, Vec<u64>) = if report.sites_distrusted > 0 {
        pages
            .iter()
            .enumerate()
            .filter(|(_, p)| !lineage.is_site_quarantined(&p.site))
            .map(|(i, p)| (*p, page_fps.get(i).copied().unwrap_or(0)))
            .unzip()
    } else {
        (pages.clone(), page_fps.clone())
    };
    let (record_index, doc_index) = match caches.as_deref_mut() {
        Some(c) => {
            let entries: Vec<(LrecId, ConceptId, Vec<String>)> = store
                .live_ids()
                .into_iter()
                .map(|id| {
                    let rec = store
                        .latest(id)
                        .expect("invariant: live_ids() yields ids with a latest version");
                    (id, rec.concept(), LrecIndex::record_tokens(rec))
                })
                .collect();
            let record_index = c.record_index_with(entries);
            let doc_index = c.doc_index_with(&live_pages, &live_fps, threads);
            (record_index, doc_index)
        }
        None => {
            let mut record_index = LrecIndex::new();
            for id in store.live_ids() {
                record_index.add(
                    store
                        .latest(id)
                        .expect("invariant: live_ids() yields ids with a latest version"),
                );
            }
            let mut doc_index = InvertedIndex::new();
            for page in &live_pages {
                doc_index.add_text(&format!("{} {}", page.title, page.text()));
            }
            (record_index, doc_index)
        }
    };
    let mut doc_urls = Vec::with_capacity(live_pages.len());
    let mut doc_titles = Vec::with_capacity(live_pages.len());
    for page in &live_pages {
        doc_urls.push(page.url.clone());
        doc_titles.push(page.title.clone());
    }
    if let Some(c) = caches {
        c.end_pass();
    }
    report.stage_done("index", store.live_count() + live_pages.len(), &mut t0);

    WebOfConcepts {
        registry,
        concepts,
        store,
        lineage,
        web,
        record_index,
        doc_index,
        doc_urls,
        doc_titles,
        trust: trust_model,
        report,
    }
}

/// The Fellegi–Sunter scorer for each concept.
pub(crate) fn scorer_for(concept: &str) -> FellegiSunter {
    use woc_matching::AttrParams;
    match concept {
        "restaurant" => FellegiSunter::restaurant_default(),
        "publication" => FellegiSunter {
            attrs: vec![
                AttrParams {
                    key: "name".into(),
                    m: 0.9,
                    u: 0.02,
                    agree_threshold: 0.8,
                },
                AttrParams {
                    key: "venue".into(),
                    m: 0.95,
                    u: 0.15,
                    agree_threshold: 0.95,
                },
                AttrParams {
                    key: "year".into(),
                    m: 0.95,
                    u: 0.1,
                    agree_threshold: 0.99,
                },
            ],
            upper: 3.0,
            lower: 0.0,
        },
        "menu_item" => FellegiSunter {
            attrs: vec![
                AttrParams {
                    key: "name".into(),
                    m: 0.95,
                    u: 0.01,
                    agree_threshold: 0.9,
                },
                AttrParams {
                    key: "price".into(),
                    m: 0.8,
                    u: 0.05,
                    agree_threshold: 0.95,
                },
            ],
            // Menu items on different restaurants share names (same dish
            // pool); require both name AND price to agree.
            upper: 5.0,
            lower: 0.0,
        },
        "event" => FellegiSunter {
            attrs: vec![
                AttrParams {
                    key: "name".into(),
                    m: 0.95,
                    u: 0.02,
                    agree_threshold: 0.85,
                },
                AttrParams {
                    key: "date".into(),
                    m: 0.95,
                    u: 0.02,
                    agree_threshold: 0.99,
                },
            ],
            upper: 3.5,
            lower: 0.0,
        },
        _ => FellegiSunter {
            attrs: vec![AttrParams {
                key: "name".into(),
                m: 0.9,
                u: 0.01,
                agree_threshold: 0.9,
            }],
            upper: 3.0,
            lower: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::{generate_corpus, CorpusConfig, PageKind, World, WorldConfig};

    fn small_woc() -> (World, WebCorpus, WebOfConcepts) {
        let world = World::generate(WorldConfig::tiny(201));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(11));
        let woc = build(&corpus, &PipelineConfig::default());
        (world, corpus, woc)
    }

    #[test]
    fn parse_date_formats() {
        assert_eq!(
            parse_date("January 20, 2010"),
            Some(Date {
                year: 2010,
                month: 1,
                day: 20
            })
        );
        assert_eq!(
            parse_date("1/20/2010"),
            Some(Date {
                year: 2010,
                month: 1,
                day: 20
            })
        );
        assert_eq!(parse_date("not a date"), None);
        assert_eq!(parse_date("13/45/2010"), None);
    }

    #[test]
    fn type_value_conversions() {
        assert_eq!(
            type_value("phone", "(408) 555-0134"),
            AttrValue::Phone("4085550134".into())
        );
        assert_eq!(type_value("zip", "95014"), AttrValue::Zip("95014".into()));
        assert_eq!(type_value("price", "$9.95"), AttrValue::PriceCents(995));
        assert_eq!(type_value("rating", "4"), AttrValue::Int(4));
        assert_eq!(type_value("name", "Gochi"), AttrValue::Text("Gochi".into()));
        // Unparseable falls back to text, never lost.
        assert_eq!(
            type_value("phone", "call us"),
            AttrValue::Text("call us".into())
        );
    }

    #[test]
    fn labeled_fields_mined_from_markup() {
        let dom = woc_webgen::parse_html(
            r#"<html><body>
                <div><span>Brand:</span><span>Nikon</span></div>
                <div><span>Model:</span><span>D40</span></div>
                <div><span>Notes</span><span>no colon, not a label</span></div>
                <div><span>Way Too Long A Label For Mining:</span><span>x</span></div>
            </body></html>"#,
        );
        let fields = labeled_fields(&dom);
        assert!(fields.contains(&("brand".to_string(), "Nikon".to_string())));
        assert!(fields.contains(&("model".to_string(), "D40".to_string())));
        assert!(!fields.iter().any(|(k, _)| k.contains("notes")));
        assert!(!fields.iter().any(|(k, _)| k.contains("too long")));
    }

    #[test]
    fn detail_extract_products_carry_brand_and_category() {
        // Label mining only works on sites that label their fields; at least
        // one seller site does, and its product records must carry
        // brand/category mined off the markup.
        let world = World::generate(WorldConfig {
            sellers: 6,
            ..WorldConfig::tiny(205)
        });
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(45));
        let mut mined = 0usize;
        let mut product_pages = 0usize;
        for page in corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == woc_webgen::PageKind::ProductPage)
        {
            product_pages += 1;
            let Some(rec) = detail_extract(page, &[]) else {
                continue;
            };
            assert_eq!(rec.concept.as_deref(), Some("product"));
            let has = |k: &str| rec.fields.iter().any(|(key, _)| key == k);
            assert!(has("name"));
            if has("brand") && has("category") {
                mined += 1;
            }
        }
        assert!(product_pages > 0);
        assert!(
            mined > 0,
            "some labeled seller site must yield mined brand/category"
        );
    }

    #[test]
    fn pipeline_builds_restaurants() {
        let (world, _corpus, woc) = small_woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        assert!(
            !restaurants.is_empty(),
            "pipeline must produce restaurant records"
        );
        // Merging should bring the count near the true number (each
        // restaurant appears on up to 2 aggregators + its homepage).
        assert!(
            restaurants.len() <= world.restaurants.len() * 2,
            "too many canonical restaurants: {} vs {} true",
            restaurants.len(),
            world.restaurants.len()
        );
    }

    #[test]
    fn canonical_records_have_sources_and_lineage() {
        let (_, _, woc) = small_woc();
        for rec in woc.records_of(woc.concepts.restaurant) {
            let docs = woc.web.docs_of_kind(rec.id(), AssocKind::ExtractedFrom);
            assert!(!docs.is_empty(), "record {} has no source docs", rec.id());
            let explanation = woc.lineage.explain(rec.id());
            assert!(
                explanation.iter().any(|s| s.starts_with("operator")),
                "record {} lineage lacks operators",
                rec.id()
            );
        }
    }

    #[test]
    fn gochi_is_findable() {
        let (_, _, woc) = small_woc();
        let hits = woc
            .record_index
            .query("gochi cupertino", 5, |n| woc.registry.id_of(n));
        assert!(!hits.is_empty(), "gochi must be in the web of concepts");
        let top = woc.store.latest(hits[0].id).unwrap();
        let name = top.best_string("name").unwrap_or_default();
        assert!(name.to_lowercase().contains("gochi"), "got {name}");
    }

    #[test]
    fn reviews_linked_to_restaurants() {
        let (_, _, woc) = small_woc();
        let reviews = woc.records_of(woc.concepts.review);
        assert!(!reviews.is_empty(), "reviews extracted");
        let linked = reviews
            .iter()
            .filter(|r| {
                r.best("about")
                    .is_some_and(|e| e.value.as_ref_id().is_some())
            })
            .count();
        assert!(
            linked * 2 > reviews.len(),
            "most reviews should link: {linked}/{}",
            reviews.len()
        );
    }

    #[test]
    fn mentions_found_in_articles() {
        let (_, corpus, woc) = small_woc();
        let article_urls: Vec<&str> = corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::Article)
            .map(|p| p.url.as_str())
            .collect();
        let mentioned = article_urls
            .iter()
            .filter(|u| {
                woc.web
                    .records_of(u)
                    .iter()
                    .any(|(_, k)| *k == AssocKind::Mentions)
            })
            .count();
        assert!(
            mentioned > 0,
            "semantic linking should annotate some of {} articles",
            article_urls.len()
        );
    }

    #[test]
    fn doc_index_covers_corpus() {
        let (_, corpus, woc) = small_woc();
        assert_eq!(woc.doc_index.num_docs(), corpus.len());
        let hits = woc.doc_index.search("gochi", 5);
        assert!(!hits.is_empty());
        assert!(woc.doc_url(hits[0].doc).contains("gochi"));
    }

    #[test]
    fn sequential_equals_parallel() {
        let world = World::generate(WorldConfig::tiny(202));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(12));
        let seq = build(
            &corpus,
            &PipelineConfig {
                threads: 1,
                ..PipelineConfig::default()
            },
        );
        let par = build(
            &corpus,
            &PipelineConfig {
                threads: 4,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(seq.store.live_count(), par.store.live_count());
        assert_eq!(seq.store.total_created(), par.store.total_created());
        // Deterministic counts match even though wall-clock timings differ.
        assert_eq!(seq.report.pages_scanned, par.report.pages_scanned);
        assert_eq!(seq.report.lrecs_extracted, par.report.lrecs_extracted);
        assert_eq!(seq.report.match_pairs_scored, par.report.match_pairs_scored);
        assert_eq!(seq.report.clusters_formed, par.report.clusters_formed);
        assert_eq!(seq.report.mention_links, par.report.mention_links);
        assert_eq!(seq.report.threads, 1);
        assert_eq!(par.report.threads, 4);
        assert!(seq.report.stage("extract").is_some());
    }

    #[test]
    fn cached_build_matches_fresh_build() {
        let world = World::generate(WorldConfig::tiny(203));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(13));
        let cfg = PipelineConfig::default();
        let fresh = build(&corpus, &cfg);
        let mut caches = BuildCaches::new();
        let cold = build_with_caches(&corpus, &cfg, Some(&mut caches));
        let warm = build_with_caches(&corpus, &cfg, Some(&mut caches));
        for woc in [&cold, &warm] {
            assert_eq!(woc.record_index.digest(), fresh.record_index.digest());
            assert_eq!(woc.doc_index.digest(), fresh.doc_index.digest());
            assert_eq!(woc.store.live_count(), fresh.store.live_count());
            assert_eq!(woc.store.total_created(), fresh.store.total_created());
            assert_eq!(woc.web.len(), fresh.web.len());
        }
        // Second pass over an unchanged corpus: everything is a memo hit.
        assert_eq!(caches.stats().pages_reextracted, 0);
        assert_eq!(caches.stats().pairs_rescored, 0);
        assert_eq!(caches.stats().mention_pages_rescanned, 0);
        assert_eq!(caches.stats().postings_patched, 0);
        assert!(!caches.stats().record_index_rebuilt);
        assert!(!caches.stats().doc_index_rebuilt);
    }

    #[test]
    fn report_counts_are_populated() {
        let (_, _, woc) = small_woc();
        let r = &woc.report;
        assert!(r.pages_scanned > 0);
        assert!(r.lrecs_extracted > 0);
        assert!(r.match_pairs_scored > 0);
        assert!(r.clusters_formed > 0);
        assert!(r.stages.len() >= 8, "stages: {:?}", r.stages);
        let shown = r.to_string();
        assert!(shown.contains("pipeline report"));
        assert!(shown.contains("extract"));
    }
}
