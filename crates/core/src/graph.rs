//! The concept-web graph: record↔document associations.
//!
//! Paper §5.1: "it is efficient to pre-compute associations between
//! documents and record identifiers, then store these associations with the
//! document in the web search index" — and §5.4's semantic linking "produces
//! a bipartite graph linking concept records to articles, and allowing users
//! to pivot back and forth between the two". This module is that bipartite
//! graph; record↔record links live inside the records themselves as typed
//! `Ref` values.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use woc_lrec::{Lrec, LrecId, Store};

/// How a document relates to a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssocKind {
    /// The record was extracted from this document.
    ExtractedFrom,
    /// The document is the record's official homepage.
    Homepage,
    /// The document mentions the record (semantic linking).
    Mentions,
    /// The document is a review of the record.
    ReviewOf,
}

/// The record↔document bipartite graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConceptWeb {
    by_record: HashMap<LrecId, Vec<(String, AssocKind)>>,
    by_doc: HashMap<String, Vec<(LrecId, AssocKind)>>,
}

impl ConceptWeb {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associate a record with a document (idempotent).
    pub fn associate(&mut self, record: LrecId, url: &str, kind: AssocKind) {
        let recs = self.by_doc.entry(url.to_string()).or_default();
        if recs.contains(&(record, kind)) {
            return;
        }
        recs.push((record, kind));
        self.by_record
            .entry(record)
            .or_default()
            .push((url.to_string(), kind));
    }

    /// Documents associated with a record.
    pub fn docs_of(&self, record: LrecId) -> &[(String, AssocKind)] {
        self.by_record
            .get(&record)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Records associated with a document.
    pub fn records_of(&self, url: &str) -> &[(LrecId, AssocKind)] {
        self.by_doc.get(url).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Documents of a record with a specific association kind.
    pub fn docs_of_kind(&self, record: LrecId, kind: AssocKind) -> Vec<&str> {
        self.docs_of(record)
            .iter()
            .filter(|(_, k)| *k == kind)
            .map(|(u, _)| u.as_str())
            .collect()
    }

    /// Rewrite associations after entity merges: every association of a
    /// merged-away record moves to its surviving record. Records are
    /// re-inserted in id order — HashMap iteration order would make the
    /// merged association lists differ from run to run.
    pub fn resolve_merges(&mut self, store: &Store) {
        let mut old: Vec<(LrecId, Vec<(String, AssocKind)>)> =
            std::mem::take(&mut self.by_record).into_iter().collect();
        old.sort_unstable_by_key(|(rec, _)| *rec);
        self.by_doc.clear();
        for (rec, assocs) in old {
            let target = store.resolve(rec).unwrap_or(rec);
            for (url, kind) in assocs {
                self.associate(target, &url, kind);
            }
        }
    }

    /// Remove every association of a record — used when maintenance
    /// tombstones a record whose source pages vanished. Document entries
    /// left empty are dropped entirely (a fresh build never creates empty
    /// association lists).
    pub fn remove_record(&mut self, record: LrecId) {
        let Some(assocs) = self.by_record.remove(&record) else {
            return;
        };
        for (url, _) in assocs {
            if let Some(v) = self.by_doc.get_mut(&url) {
                v.retain(|(r, _)| *r != record);
                if v.is_empty() {
                    self.by_doc.remove(&url);
                }
            }
        }
    }

    /// Number of associations.
    pub fn len(&self) -> usize {
        self.by_doc.values().map(Vec::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.by_doc.is_empty()
    }

    /// All documents with at least one association, in URL order. Sorted so
    /// callers materialising the list (reports, exports) are byte-stable
    /// across runs regardless of HashMap seeding.
    pub fn documents(&self) -> impl Iterator<Item = &str> {
        let mut docs: Vec<&str> = self.by_doc.keys().map(String::as_str).collect();
        docs.sort_unstable();
        docs.into_iter()
    }

    /// All records with at least one association, in id order.
    pub fn records(&self) -> Vec<LrecId> {
        let mut ids: Vec<LrecId> = self.by_record.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// Typed record→record links read off a record's `Ref` values.
pub fn record_links(rec: &Lrec) -> Vec<(String, LrecId)> {
    rec.refs()
        .into_iter()
        .map(|(k, id)| (k.to_string(), id))
        .collect()
}

/// Reverse link index over a set of records: target id → (attr, source id).
pub fn reverse_links<'a>(
    records: impl IntoIterator<Item = &'a Lrec>,
) -> HashMap<LrecId, Vec<(String, LrecId)>> {
    let mut out: HashMap<LrecId, Vec<(String, LrecId)>> = HashMap::new();
    for rec in records {
        for (attr, target) in record_links(rec) {
            out.entry(target).or_default().push((attr, rec.id()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{AttrValue, ConceptId, Provenance, Store, Tick};

    #[test]
    fn associate_and_query() {
        let mut g = ConceptWeb::new();
        let r = LrecId(1);
        g.associate(r, "http://a/biz", AssocKind::ExtractedFrom);
        g.associate(r, "http://a/biz", AssocKind::ExtractedFrom); // idempotent
        g.associate(r, "http://r.example.com/", AssocKind::Homepage);
        assert_eq!(g.len(), 2);
        assert_eq!(g.docs_of(r).len(), 2);
        assert_eq!(
            g.records_of("http://a/biz"),
            &[(r, AssocKind::ExtractedFrom)]
        );
        assert_eq!(
            g.docs_of_kind(r, AssocKind::Homepage),
            vec!["http://r.example.com/"]
        );
        assert!(g.records_of("http://unknown").is_empty());
    }

    #[test]
    fn merge_resolution_moves_associations() {
        let mut store = Store::new();
        let a = store.create(ConceptId(0), Tick(0));
        let b = store.create(ConceptId(0), Tick(0));
        store.merge(a, b, Tick(1)).unwrap();
        let mut g = ConceptWeb::new();
        g.associate(b, "http://x/", AssocKind::ExtractedFrom);
        g.resolve_merges(&store);
        assert!(g.docs_of(b).is_empty());
        assert_eq!(g.docs_of(a).len(), 1);
        assert_eq!(g.records_of("http://x/")[0].0, a);
    }

    #[test]
    fn remove_record_scrubs_both_sides() {
        let mut g = ConceptWeb::new();
        let (a, b) = (LrecId(1), LrecId(2));
        g.associate(a, "http://x/", AssocKind::ExtractedFrom);
        g.associate(b, "http://x/", AssocKind::ExtractedFrom);
        g.associate(a, "http://y/", AssocKind::Mentions);
        g.remove_record(a);
        assert!(g.docs_of(a).is_empty());
        assert_eq!(g.records_of("http://x/"), &[(b, AssocKind::ExtractedFrom)]);
        // http://y/ had only `a`: the empty entry must vanish entirely.
        assert!(g.records_of("http://y/").is_empty());
        assert!(!g.documents().any(|d| d == "http://y/"));
        assert_eq!(g.len(), 1);
        g.remove_record(LrecId(99)); // unknown id is a no-op
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn reverse_link_index() {
        let p = Provenance::ground_truth(Tick(0));
        let mut review = Lrec::new(LrecId(10), ConceptId(1));
        review.add("about", AttrValue::Ref(LrecId(1)), p.clone());
        let mut menu = Lrec::new(LrecId(11), ConceptId(2));
        menu.add("restaurant", AttrValue::Ref(LrecId(1)), p);
        let idx = reverse_links([&review, &menu]);
        let incoming = &idx[&LrecId(1)];
        assert_eq!(incoming.len(), 2);
        assert!(incoming.contains(&("about".to_string(), LrecId(10))));
        assert!(incoming.contains(&("restaurant".to_string(), LrecId(11))));
    }
}
