//! # woc-core — the web of concepts
//!
//! The paper's central artifact: a "semantically rich aggregate view of all
//! the information available on the web for each concept instance". This
//! crate assembles the substrates into that artifact:
//!
//! * [`pipeline`] — the construction pipeline (§4): page extraction (lists +
//!   detail pages) → typed records with provenance → entity resolution →
//!   reconciliation → review linking → semantic linking → indexes;
//! * [`lineage`] — the operator provenance DAG (§7.3), with explanation and
//!   error-attribution queries;
//! * [`uncertainty`] — confidence propagation (noisy-or corroboration) and
//!   value reconciliation under schema cardinalities (§7.3);
//! * [`graph`] — the record↔document bipartite graph (§5.1, §5.4);
//! * [`feed`] — structured-feed ingestion ("contractual feeds", §2.2) with
//!   match-before-create resolution against the existing corpus;
//! * [`quality`] — corpus-level quality assessment (§7.3): per-concept
//!   confidence, conformance, conflicts and corroboration roll-ups;
//! * [`maintain`] — incremental maintenance under recrawls and world change
//!   (§7.3), with cost accounting vs full rebuild;
//! * [`memo`] — content-keyed memo caches that let
//!   [`pipeline::build_with_caches`] replay the pipeline while recomputing
//!   only content that changed (the `woc-incr` engine's substrate);
//! * [`taxonomy`] — §2.3 hierarchies: curated `is_a` chains, `part_of`
//!   containment, and data-driven taxonomy construction by agglomerative
//!   clustering (the curated-vs-data-driven comparison the paper poses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feed;
pub mod graph;
pub mod lineage;
pub mod maintain;
pub mod memo;
pub mod parallel;
pub mod pipeline;
pub mod quality;
pub mod report;
pub mod taxonomy;
pub mod trust;
pub mod uncertainty;

pub use feed::{ingest_feed, parse_feed, Feed, FeedError, FeedRecord, FeedReport};
pub use graph::{record_links, reverse_links, AssocKind, ConceptWeb};
pub use lineage::{Lineage, LineageNode, NodeId, NodeKind, QuarantineScope};
pub use maintain::{recrawl, MaintenanceReport};
pub use memo::{doc_tokens, BuildCaches, CacheStats, RecordIndexChange};
pub use parallel::{resolve_threads, shard_map};
pub use pipeline::{
    build, build_with_caches, detail_extract, extract_page, extract_page_with, PipelineConfig,
    WebOfConcepts,
};
pub use quality::{assess, ConceptQuality, QualityReport};
pub use report::{PipelineReport, SiteCoverage, StageStat};
pub use taxonomy::{
    bundles_containing, cluster_purity, data_driven_taxonomy, part_of_components, Taxonomy,
};
pub use trust::{pool_key, Claim, Exclusion, Selection, TrustConfig, TrustModel};
pub use uncertainty::{
    apply_reconciliation, group_by_denotation, quality_score, reconcile, reconcile_with_trust,
    Conflict, ReconciledValue, Reconciliation, TrustedExclusion, TrustedReconciliation,
    TrustedWinner,
};
