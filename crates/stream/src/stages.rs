//! The pipelined stages: change detection and parallel extraction.
//!
//! ```text
//!  events ──▶ [fingerprint] ──seq──▶ [extract ×N] ──seq──▶ [commit]
//!             sequential,            parallel,             sequential,
//!             assigns seq,           content-keyed         reorders by seq
//!             drops no-ops           pure work
//! ```
//!
//! The fingerprint stage is the determinism anchor: it runs alone, sees
//! events in input order, drops recrawls whose content fingerprint did not
//! change, and stamps every surviving change with a dense sequence number.
//! Extraction then parallelizes freely — it computes a pure function of
//! page content — and the commit stage restores input order from the
//! sequence numbers, so nothing downstream can observe scheduling.

use std::collections::HashMap;
use std::sync::Arc;

use woc_extract::lists::ConceptProfile;
use woc_extract::ExtractedRecord;
use woc_webgen::Page;

use crate::channel::{Receiver, Sender};

/// One crawl observation entering the stream.
#[derive(Debug, Clone)]
pub enum PageEvent {
    /// The crawler fetched this page (new or recrawled).
    Updated(Page),
    /// The crawler observed this URL gone (404, delisted).
    Removed(String),
}

/// A stage message stamped with its position in the deduplicated change
/// sequence.
pub(crate) struct Seq<T> {
    pub seq: u64,
    pub msg: T,
}

/// Output of the fingerprint stage: a page change that survived dedup.
/// Pages ride boxed so a channel slot (and a removal) stays pointer-sized.
pub(crate) enum Change {
    Updated {
        page: Box<Page>,
        fp: u64,
        old_fp: Option<u64>,
    },
    Removed {
        url: String,
        old_fp: u64,
    },
}

/// Output of an extract worker: the change plus its extraction, ready for
/// the commit stage to reorder and batch.
pub(crate) enum Ready {
    Updated {
        page: Box<Page>,
        fp: u64,
        old_fp: Option<u64>,
        records: Arc<Vec<ExtractedRecord>>,
    },
    Removed {
        url: String,
        old_fp: u64,
    },
}

/// What the fingerprint stage saw, for the stream report.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FingerprintStats {
    pub events_in: u64,
    /// Events dropped because nothing changed: a recrawl with an identical
    /// fingerprint, or a removal of a URL the stream never saw.
    pub deduped: u64,
}

/// FNV-1a over a removal marker — gives page removals a deterministic
/// pseudo-fingerprint so they participate in the content-defined cut
/// decision exactly like updates do.
pub(crate) fn removal_fingerprint(url: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in "removed:".bytes().chain(url.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The sequential change-detection stage: dedup against the live
/// fingerprint map, stamp survivors with dense sequence numbers, and push
/// them downstream (blocking when extraction lags — this is where input
/// backpressure originates). `fps` is the stream's view of the latest
/// crawled content and is updated eagerly, so intra-batch recrawls dedup
/// correctly before the batch ever commits.
// woc-lint: hot-path
pub(crate) fn fingerprint_stage(
    events: impl Iterator<Item = PageEvent>,
    fps: &mut HashMap<String, u64>,
    out: &Sender<Seq<Change>>,
) -> FingerprintStats {
    let mut stats = FingerprintStats::default();
    let mut seq: u64 = 0;
    for event in events {
        stats.events_in += 1;
        let change = match event {
            PageEvent::Updated(page) => {
                let fp = page.fingerprint();
                let old_fp = fps.get(&page.url).copied();
                if old_fp == Some(fp) {
                    stats.deduped += 1;
                    continue;
                }
                fps.insert(page.url.clone(), fp);
                Change::Updated {
                    page: Box::new(page),
                    fp,
                    old_fp,
                }
            }
            PageEvent::Removed(url) => match fps.remove(&url) {
                Some(old_fp) => Change::Removed { url, old_fp },
                None => {
                    stats.deduped += 1;
                    continue;
                }
            },
        };
        let msg = Seq { seq, msg: change };
        seq += 1;
        if out.send(msg).is_err() {
            // Commit side aborted; nothing downstream will look at the
            // rest of the input.
            break;
        }
    }
    stats
}

/// One extraction worker: pull changes, run the pipeline's extraction
/// stage on updated pages (a pure function of page content), pass
/// removals through untouched. Workers share both channel ends; each
/// drops its sender clone on exit, and the last drop closes the commit
/// stage's input.
// woc-lint: hot-path
pub(crate) fn extract_worker(
    rx: &Receiver<Seq<Change>>,
    tx: &Sender<Seq<Ready>>,
    profiles: &[ConceptProfile],
    use_lists: bool,
    use_detail: bool,
) {
    while let Some(Seq { seq, msg }) = rx.recv() {
        let ready = match msg {
            Change::Updated { page, fp, old_fp } => {
                let records = Arc::new(woc_core::extract_page_with(
                    &page, profiles, use_lists, use_detail,
                ));
                Ready::Updated {
                    page,
                    fp,
                    old_fp,
                    records,
                }
            }
            Change::Removed { url, old_fp } => Ready::Removed { url, old_fp },
        };
        if tx.send(Seq { seq, msg: ready }).is_err() {
            return;
        }
    }
}
