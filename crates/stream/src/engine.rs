//! The stream engine: owns the dataflow, the micro-epoch state machine,
//! and the journal.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use woc_audit::{audit_with_stream, Audit, AuditConfig, MicroEpochView, PageChangeView};
use woc_core::{PipelineConfig, WebOfConcepts};
use woc_extract::lists::ConceptProfile;
use woc_extract::ExtractedRecord;
use woc_incr::{FaultHook, IncrEngine};
use woc_serve::ConceptServer;
use woc_webgen::{Page, WebCorpus};

use crate::channel::bounded;
use crate::stages::{
    extract_worker, fingerprint_stage, removal_fingerprint, PageEvent, Ready, Seq,
};
use crate::watermark::{MicroEpoch, Watermark};

/// Tunables for the streaming dataflow.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Capacity of each inter-stage channel. Small on purpose: the queues
    /// are for smoothing, not absorbing — a lagging stage must throttle
    /// its upstream, and the commit stage's reorder buffer stays bounded
    /// by `2 × channel_capacity + extract_workers` in-flight messages.
    pub channel_capacity: usize,
    /// Parallel extraction workers.
    pub extract_workers: usize,
    /// Content-defined micro-epoch cut: a change whose fingerprint `fp`
    /// satisfies `fp & cut_mask == 0` closes the current batch, so epoch
    /// boundaries are a function of page *content* (average batch size
    /// `cut_mask + 1` changes), never of arrival timing or worker count.
    pub cut_mask: u64,
    /// Hard batch-size cap: close the micro-epoch when this many distinct
    /// URLs are pending even if no content cut fired (bounds publish
    /// latency under pathological fingerprint distributions).
    pub max_batch_pages: usize,
    /// Pipeline configuration for the underlying incremental engine.
    pub pipeline: PipelineConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            channel_capacity: 32,
            extract_workers: 4,
            cut_mask: 0x3,
            max_batch_pages: 64,
            pipeline: PipelineConfig::default(),
        }
    }
}

/// What one [`StreamEngine::run`] call did.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Events consumed from the input.
    pub events_in: u64,
    /// Events dropped by change detection (no-op recrawls, removals of
    /// unknown URLs).
    pub deduped: u64,
    /// Pages whose extraction the parallel stage computed.
    pub pages_extracted: u64,
    /// Micro-epochs committed to the journal during this run.
    pub micro_epochs: usize,
    /// Of those, how many actually advanced the served web.
    pub effective_epochs: usize,
    /// Maintenance passes that failed; their batches carried over into
    /// the following micro-epoch instead of publishing partially.
    pub publish_failures: usize,
    /// First few failure messages, for diagnostics.
    pub failure_messages: Vec<String>,
    /// The serving epoch after the last successful publish of this run
    /// (0 if none happened).
    pub last_epoch: u64,
    /// Watermark when the run finished.
    pub final_watermark: Watermark,
    /// Distinct URLs still pending (only non-zero when every closing
    /// attempt failed — a quiesced healthy stream leaves nothing behind).
    pub pending_carryover: usize,
    /// Offset of each successful publish from run start (cadence).
    pub publish_at: Vec<Duration>,
    /// Wall time of each successful maintain-and-publish pass.
    pub publish_took: Vec<Duration>,
}

/// Latest observed state of one URL inside the open batch.
enum PendingState {
    Updated {
        page: Box<Page>,
        fp: u64,
        records: Arc<Vec<ExtractedRecord>>,
    },
    Removed,
}

/// One URL's coalesced transition inside the open batch: `old_fp` is
/// pinned at first touch (the fingerprint as of the last commit attempt's
/// baseline), the state tracks the newest observation.
struct Pending {
    old_fp: Option<u64>,
    state: PendingState,
}

/// The continuous crawl→extract→publish engine.
///
/// Owns the incremental maintenance engine ([`IncrEngine`]), the live
/// corpus view, the open batch, and the micro-epoch journal. Each
/// [`Self::run`] call wires up the staged dataflow (see [`crate`] docs),
/// drains the given events through it, and quiesces: after `run` returns,
/// every committed change has been published (or its failure recorded) and
/// [`Self::web`] is byte-identical to a from-scratch batch build of
/// [`Self::corpus`] — the equivalence suite gates exactly this.
pub struct StreamEngine {
    config: StreamConfig,
    incr: IncrEngine,
    corpus: WebCorpus,
    /// The stream's eager fingerprint map: reflects every event the
    /// fingerprint stage accepted, including not-yet-committed ones.
    fps: HashMap<String, u64>,
    watermark: Watermark,
    journal: Vec<MicroEpoch>,
    pending: BTreeMap<String, Pending>,
}

impl std::fmt::Debug for StreamEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEngine")
            .field("corpus_pages", &self.corpus.len())
            .field("micro_epochs", &self.journal.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl StreamEngine {
    /// Build the initial web from `corpus` (a full batch build that warms
    /// every memo cache) and start the stream at [`Watermark::ZERO`].
    pub fn new(corpus: WebCorpus, config: StreamConfig) -> Self {
        let incr = IncrEngine::new(&corpus, config.pipeline.clone());
        let fps = corpus
            .pages()
            .iter()
            .map(|p| (p.url.clone(), p.fingerprint()))
            .collect();
        Self {
            config,
            incr,
            corpus,
            fps,
            watermark: Watermark::ZERO,
            journal: Vec::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Adopt an already-built incremental engine instead of rebuilding:
    /// `corpus` must be exactly the crawl `incr`'s current web was last
    /// maintained against (the benches use this to switch a warm batch
    /// engine into streaming mode without paying a second full build).
    pub fn from_parts(incr: IncrEngine, corpus: WebCorpus, config: StreamConfig) -> Self {
        let fps = corpus
            .pages()
            .iter()
            .map(|p| (p.url.clone(), p.fingerprint()))
            .collect();
        Self {
            config,
            incr,
            corpus,
            fps,
            watermark: Watermark::ZERO,
            journal: Vec::new(),
            pending: BTreeMap::new(),
        }
    }

    /// The current maintained web (the last good epoch).
    pub fn web(&self) -> &WebOfConcepts {
        self.incr.web()
    }

    /// The engine's segmented record index (for audits and publishes).
    pub fn segments(&self) -> &woc_index::SegmentedLrecIndex {
        self.incr.segments()
    }

    /// The live corpus view: every committed and pending page change
    /// applied to the seed corpus.
    pub fn corpus(&self) -> &WebCorpus {
        &self.corpus
    }

    /// The current watermark.
    pub fn watermark(&self) -> Watermark {
        self.watermark
    }

    /// The micro-epoch journal, oldest first.
    pub fn journal(&self) -> &[MicroEpoch] {
        &self.journal
    }

    /// The journal as the plain-data views the W015 audit check consumes.
    pub fn journal_views(&self) -> Vec<MicroEpochView> {
        self.journal.iter().map(MicroEpoch::view).collect()
    }

    /// Distinct URLs whose changes are batched but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Run the full audit over the engine's web, segmented index and
    /// micro-epoch journal: W001–W012, W014, and the stream's own W015.
    pub fn audit(&self, cfg: &AuditConfig) -> Audit {
        audit_with_stream(
            self.incr.web(),
            self.incr.segments(),
            &self.journal_views(),
            cfg,
        )
    }

    /// Install a pre-publish gate on the underlying maintenance engine
    /// (chaos testing: a rejected pass fails the micro-epoch, whose batch
    /// then coalesces into the next one).
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.incr.set_fault_hook(hook);
    }

    /// Remove the fault hook.
    pub fn clear_fault_hook(&mut self) {
        self.incr.clear_fault_hook();
    }

    /// Drain `events` through the staged dataflow and quiesce.
    ///
    /// The fingerprint stage runs on its own thread (sequential — it is
    /// the determinism anchor), `extract_workers` threads extract in
    /// parallel, and the commit stage runs on the calling thread,
    /// restoring input order from sequence numbers before batching. All
    /// stages are joined before this returns; a panic in any stage
    /// propagates.
    ///
    /// Publishing happens *during* the run, micro-epoch by micro-epoch,
    /// through `server` — queries against the server see each published
    /// epoch atomically and never a partial batch. An empty `events` run
    /// is the retry path: it attempts to commit whatever a previous run
    /// left pending after publish failures.
    pub fn run<I>(&mut self, events: I, server: &ConceptServer) -> StreamReport
    where
        I: IntoIterator<Item = PageEvent>,
        I::IntoIter: Send,
    {
        let started = Instant::now();
        let mut report = StreamReport::default();
        let profiles = ConceptProfile::standard();
        let (use_lists, use_detail) = (
            self.config.pipeline.use_lists,
            self.config.pipeline.use_detail,
        );
        let workers = self.config.extract_workers.max(1);
        let (change_tx, change_rx) = bounded(self.config.channel_capacity);
        let (ready_tx, ready_rx) = bounded(self.config.channel_capacity);

        // Split borrows: the fingerprint map goes to the stage thread,
        // everything else stays with the commit loop on this thread.
        let fps = &mut self.fps;
        let mut committer = Committer {
            cut_mask: self.config.cut_mask,
            max_batch_pages: self.config.max_batch_pages.max(1),
            incr: &mut self.incr,
            corpus: &mut self.corpus,
            watermark: &mut self.watermark,
            journal: &mut self.journal,
            pending: &mut self.pending,
            server,
            report: &mut report,
            started,
        };
        let events = events.into_iter();

        let stats = crossbeam::scope(|s| {
            let fp_handle = s.spawn(move |_| {
                let stats = fingerprint_stage(events, fps, &change_tx);
                drop(change_tx);
                stats
            });
            for _ in 0..workers {
                let rx = change_rx.clone();
                let tx = ready_tx.clone();
                let profiles = &profiles;
                s.spawn(move |_| extract_worker(&rx, &tx, profiles, use_lists, use_detail));
            }
            // Drop the originals so channel close is worker-countdown only.
            drop(change_rx);
            drop(ready_tx);

            // Commit stage: restore input order from sequence numbers.
            // The reorder buffer is bounded by what can be in flight:
            // both channels plus one message per worker.
            let mut reorder: BTreeMap<u64, Ready> = BTreeMap::new();
            let mut next_seq: u64 = 0;
            while let Some(Seq { seq, msg }) = ready_rx.recv() {
                reorder.insert(seq, msg);
                while let Some(msg) = reorder.remove(&next_seq) {
                    next_seq += 1;
                    committer.integrate(msg);
                }
            }
            assert!(
                reorder.is_empty(),
                "invariant: the change sequence is dense, so a drained \
                 stream leaves no out-of-order remainder"
            );
            // Quiesce: whatever is still batched commits now, content cut
            // or not.
            committer.flush();
            match fp_handle.join() {
                Ok(stats) => stats,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
        .expect("invariant: the stream scope closure does not panic");

        report.events_in = stats.events_in;
        report.deduped = stats.deduped;
        report.final_watermark = self.watermark;
        report.pending_carryover = self.pending.len();
        report
    }
}

/// The commit stage's working state: mutable borrows of every engine field
/// the stage touches, split off from the fingerprint map so the stages can
/// run concurrently under one `&mut self`.
struct Committer<'a> {
    cut_mask: u64,
    max_batch_pages: usize,
    incr: &'a mut IncrEngine,
    corpus: &'a mut WebCorpus,
    watermark: &'a mut Watermark,
    journal: &'a mut Vec<MicroEpoch>,
    pending: &'a mut BTreeMap<String, Pending>,
    server: &'a ConceptServer,
    report: &'a mut StreamReport,
    started: Instant,
}

impl Committer<'_> {
    /// Fold one in-order change into the open batch, then cut if its
    /// content says so. Deliberately *not* a lint hot-path: closing a
    /// batch runs the whole incremental build, which is maintenance, not
    /// request serving — the per-event hot paths are the stages.
    fn integrate(&mut self, msg: Ready) {
        let cut_fp = match &msg {
            Ready::Updated { fp, .. } => *fp,
            Ready::Removed { url, .. } => removal_fingerprint(url),
        };
        match msg {
            Ready::Updated {
                page,
                fp,
                old_fp,
                records,
            } => {
                self.report.pages_extracted += 1;
                let url = page.url.clone();
                let state = PendingState::Updated { page, fp, records };
                match self.pending.entry(url) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // Coalesce: keep the first-touch old_fp, adopt the
                        // newest content.
                        e.get_mut().state = state;
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(Pending { old_fp, state });
                    }
                }
            }
            Ready::Removed { url, old_fp } => match self.pending.entry(url) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().state = PendingState::Removed;
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(Pending {
                        old_fp: Some(old_fp),
                        state: PendingState::Removed,
                    });
                }
            },
        }
        if cut_fp & self.cut_mask == 0 || self.pending.len() >= self.max_batch_pages {
            self.close_micro_epoch();
        }
    }

    /// Quiesce: commit the open batch regardless of content cuts.
    fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.close_micro_epoch();
        }
    }

    /// Close the open batch: apply it to the corpus, seed the extraction
    /// memos, run one maintenance pass, publish its delta, and journal the
    /// micro-epoch. On failure the batch stays pending — it coalesces into
    /// the next micro-epoch, and the server keeps serving the last good
    /// epoch (no partial state is ever visible).
    fn close_micro_epoch(&mut self) {
        // The coalesced transitions, in sorted-URL order (BTreeMap). A URL
        // that round-tripped back to its original fingerprint (update then
        // revert, or add then remove) is content-wise a no-op and is
        // excluded from the watermark.
        let mut changed: Vec<PageChangeView> = Vec::new();
        for (url, p) in self.pending.iter() {
            let new_fp = match &p.state {
                PendingState::Updated { fp, .. } => Some(*fp),
                PendingState::Removed => None,
            };
            if p.old_fp != new_fp {
                changed.push(PageChangeView {
                    url: url.clone(),
                    old_fp: p.old_fp,
                    new_fp,
                });
            }
        }

        // Apply the final coalesced state of every URL to the live corpus.
        // Idempotent on purpose: a batch that fails to publish is
        // re-applied on the next attempt.
        for (url, p) in self.pending.iter() {
            match &p.state {
                PendingState::Updated { page, .. } => self.corpus.add(page.as_ref().clone()),
                PendingState::Removed => {
                    self.corpus.remove(url);
                }
            }
        }

        if changed.is_empty() {
            // Every transition round-tripped: the corpus content equals
            // the last commit baseline, nothing to publish or journal.
            self.pending.clear();
            return;
        }

        // Seed the extraction memos so the maintenance replay hits them
        // instead of re-extracting what the parallel stage already did.
        for p in self.pending.values() {
            if let PendingState::Updated { fp, records, .. } = &p.state {
                self.incr.seed_extraction(*fp, records.clone());
            }
        }

        let t0 = Instant::now();
        match self.incr.maintain_and_publish(self.corpus, self.server) {
            Ok((mrep, epoch)) => {
                let took = t0.elapsed();
                let prev = *self.watermark;
                *self.watermark = prev.advance(&changed);
                let effective = mrep.effective_change;
                self.journal.push(MicroEpoch {
                    ordinal: self.journal.len() as u64,
                    prev,
                    watermark: *self.watermark,
                    changed_pages: changed,
                    // An ineffective pass published nothing, so its delta
                    // changed no records — the conservative candidate list
                    // belongs in `lineage_affected` only.
                    changed_records: if effective {
                        mrep.changed_records
                    } else {
                        Vec::new()
                    },
                    lineage_affected: mrep.affected_records,
                    published_epoch: epoch,
                    effective,
                    pages_reextracted: mrep.pages_reextracted,
                });
                self.pending.clear();
                self.report.micro_epochs += 1;
                if effective {
                    self.report.effective_epochs += 1;
                }
                self.report.last_epoch = epoch;
                self.report.publish_at.push(self.started.elapsed());
                self.report.publish_took.push(took);
            }
            Err(err) => {
                // Transactional failure: the incr engine still holds the
                // last good epoch, the server still serves it, and the
                // batch stays pending for the next cut.
                self.report.publish_failures += 1;
                if self.report.failure_messages.len() < 8 {
                    self.report.failure_messages.push(err.to_string());
                }
            }
        }
    }
}
