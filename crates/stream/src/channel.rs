//! A bounded MPMC channel on `std::sync::{Mutex, Condvar}` — the
//! backpressure fabric between stream stages.
//!
//! The vendored `crossbeam` exposes scoped threads only, so the channel is
//! built here, from the two std primitives, with exactly the semantics the
//! dataflow needs and nothing else:
//!
//! * **bounded**: [`Sender::send`] blocks while the queue is at capacity —
//!   a slow downstream stage throttles its upstream instead of letting an
//!   unbounded queue absorb the difference;
//! * **multi-producer, multi-consumer**: both handles are [`Clone`]; a pool
//!   of extract workers shares one receiver and one sender;
//! * **countdown close**: dropping the last [`Sender`] closes the channel;
//!   receivers drain what is queued and then see `None`. This is how stage
//!   shutdown propagates — no sentinel messages, no racy "done" flags;
//! * **receiver-side close**: [`Receiver::close`] unblocks every parked
//!   sender (sends start failing), the abort path for a consumer that stops
//!   early.
//!
//! FIFO order is per-channel, so a single-producer stage's messages arrive
//! in send order; with multiple producers the commit stage restores global
//! order from sequence numbers instead of relying on the channel.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    /// Live `Sender` clones; 0 means closed from the producer side.
    senders: usize,
    /// Set by [`Receiver::close`]: drop everything, fail every send.
    aborted: bool,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Chan<T> {
    fn closed(state: &State<T>) -> bool {
        state.senders == 0 || state.aborted
    }
}

/// Producer handle. Cloning registers another producer; the channel closes
/// when the last clone drops.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.chan.capacity)
            .finish_non_exhaustive()
    }
}

/// Consumer handle. Cloning shares the same queue (MPMC).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &self.chan.capacity)
            .finish_non_exhaustive()
    }
}

/// Create a bounded channel. `capacity` must be at least 1 — a zero-slot
/// rendezvous channel would deadlock a stage that must buffer to reorder.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "bounded channel needs at least one slot");
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            aborted: false,
        }),
        capacity,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Block until a slot frees, then enqueue. Returns the value back as
    /// `Err` if the receiver side closed the channel — the producer's cue
    /// to stop.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = self
            .chan
            .state
            .lock()
            .expect("invariant: channel lock is never poisoned (no panics while held)");
        loop {
            if state.aborted {
                return Err(value);
            }
            if state.queue.len() < self.chan.capacity {
                state.queue.push_back(value);
                drop(state);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .chan
                .not_full
                .wait(state)
                .expect("invariant: channel lock is never poisoned (no panics while held)");
        }
    }

    /// Messages currently queued (snapshot; for tests and metrics).
    pub fn len(&self) -> usize {
        self.chan
            .state
            .lock()
            .expect("invariant: channel lock is never poisoned (no panics while held)")
            .queue
            .len()
    }

    /// True if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .expect("invariant: channel lock is never poisoned (no panics while held)")
            .senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self
            .chan
            .state
            .lock()
            .expect("invariant: channel lock is never poisoned (no panics while held)");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake every parked receiver so they observe the close.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is gone. `None` means
    /// closed **and** drained — queued messages are always delivered first.
    pub fn recv(&self) -> Option<T> {
        let mut state = self
            .chan
            .state
            .lock()
            .expect("invariant: channel lock is never poisoned (no panics while held)");
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Some(value);
            }
            if Chan::closed(&state) {
                return None;
            }
            state = self
                .chan
                .not_empty
                .wait(state)
                .expect("invariant: channel lock is never poisoned (no panics while held)");
        }
    }

    /// Abort from the consumer side: drop queued messages, fail all
    /// in-flight and future sends, wake every parked thread.
    pub fn close(&self) {
        let mut state = self
            .chan
            .state
            .lock()
            .expect("invariant: channel lock is never poisoned (no panics while held)");
        state.aborted = true;
        state.queue.clear();
        drop(state);
        self.chan.not_full.notify_all();
        self.chan.not_empty.notify_all();
    }

    /// Messages currently queued (snapshot; for tests and metrics).
    pub fn len(&self) -> usize {
        self.chan
            .state
            .lock()
            .expect("invariant: channel lock is never poisoned (no panics while held)")
            .queue
            .len()
    }

    /// True if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_within_one_producer() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(
            std::iter::from_fn(|| rx.recv()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(rx.recv().is_none(), "closed and drained stays None");
    }

    #[test]
    fn send_blocks_at_capacity_until_a_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = sent.clone();
        crossbeam::scope(|s| {
            s.spawn(move |_| {
                tx.send(1).unwrap();
                sent2.store(1, Ordering::SeqCst);
            });
            // The producer must be parked: the single slot is occupied.
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(sent.load(Ordering::SeqCst), 0, "send must block when full");
            assert_eq!(rx.recv(), Some(0));
            assert_eq!(rx.recv(), Some(1));
        })
        .unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn last_sender_drop_closes() {
        let (tx, rx) = bounded(2);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        // A clone is still alive: not closed yet.
        tx2.send(8).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), Some(8));
        assert!(rx.recv().is_none());
    }

    #[test]
    fn receiver_close_unblocks_full_senders() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        crossbeam::scope(|s| {
            let h = s.spawn(move |_| tx.send(1).is_err());
            std::thread::sleep(Duration::from_millis(50));
            rx.close();
            assert!(h.join().unwrap(), "send into a closed channel must fail");
        })
        .unwrap();
        assert!(rx.recv().is_none(), "aborted channel delivers nothing");
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = bounded(4);
        let total = 200usize;
        let sum = AtomicUsize::new(0);
        let got = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for w in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..total / 4 {
                        tx.send(w * (total / 4) + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..3 {
                let rx = rx.clone();
                let (sum, got) = (&sum, &got);
                s.spawn(move |_| {
                    while let Some(v) = rx.recv() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        got.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(got.load(Ordering::SeqCst), total);
        assert_eq!(sum.load(Ordering::SeqCst), (0..total).sum::<usize>());
    }
}
