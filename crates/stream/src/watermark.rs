//! Content-defined watermarks and the micro-epoch journal.
//!
//! A watermark is a pure function of *what changed*: an event count plus an
//! FNV digest chained over each micro-epoch's deduplicated page
//! transitions in sorted-URL order ([`woc_audit::stream_digest`] — the
//! audit recomputes the same chain in its W015 check, so there is exactly
//! one definition). Nothing about arrival order, worker count, channel
//! timing or wall clock reaches the watermark — two runs of the same event
//! stream produce identical journals at any parallelism.

use woc_audit::{stream_digest, MicroEpochView, PageChangeView};
use woc_lrec::LrecId;

/// A position in the stream: how many page changes have been applied since
/// the stream started, and the digest chained over all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Watermark {
    /// Cumulative deduplicated page changes.
    pub events: u64,
    /// FNV chain over every committed transition, in micro-epoch order.
    pub digest: u64,
}

impl Watermark {
    /// The stream origin: nothing committed yet.
    pub const ZERO: Watermark = Watermark {
        events: 0,
        digest: 0,
    };

    /// The watermark after committing `changed` on top of `self`. Strictly
    /// greater in `events` whenever `changed` is non-empty.
    pub fn advance(&self, changed: &[PageChangeView]) -> Watermark {
        Watermark {
            events: self.events + changed.len() as u64,
            digest: stream_digest(self.digest, changed),
        }
    }
}

/// One committed micro-epoch: the journal entry the engine appends for
/// every batch it published (or proved ineffective). Failed maintenance
/// passes append nothing — their batch coalesces into the next entry.
#[derive(Debug, Clone)]
pub struct MicroEpoch {
    /// Journal position, counting from 0.
    pub ordinal: u64,
    /// Watermark before this micro-epoch.
    pub prev: Watermark,
    /// Watermark after: `prev.advance(&changed_pages)`.
    pub watermark: Watermark,
    /// The deduplicated page transitions this micro-epoch applied, each a
    /// real change (`old_fp != new_fp`), at most one per URL.
    pub changed_pages: Vec<PageChangeView>,
    /// Records the published delta changed (empty for an ineffective
    /// pass — nothing was published).
    pub changed_records: Vec<LrecId>,
    /// The lineage-affected candidate set `changed_records` was filtered
    /// from; W015 checks `changed_records ⊆ lineage_affected`.
    pub lineage_affected: Vec<LrecId>,
    /// Serving epoch after this micro-epoch's publish.
    pub published_epoch: u64,
    /// Whether the publish actually advanced the served web (a batch of
    /// cosmetic page edits can rebuild to a byte-identical web).
    pub effective: bool,
    /// Pages whose extraction the maintenance pass recomputed — with the
    /// extract stage seeding the memo this stays 0 in steady state.
    pub pages_reextracted: usize,
}

impl MicroEpoch {
    /// The plain-data view the W015 audit check consumes.
    pub fn view(&self) -> MicroEpochView {
        MicroEpochView {
            ordinal: self.ordinal,
            prev_events: self.prev.events,
            prev_digest: self.prev.digest,
            events: self.watermark.events,
            digest: self.watermark.digest,
            changed_pages: self.changed_pages.clone(),
            changed_records: self.changed_records.clone(),
            lineage_affected: self.lineage_affected.clone(),
            published_epoch: self.published_epoch,
            effective: self.effective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(url: &str, old: Option<u64>, new: Option<u64>) -> PageChangeView {
        PageChangeView {
            url: url.into(),
            old_fp: old,
            new_fp: new,
        }
    }

    #[test]
    fn advance_is_order_free_and_strictly_monotone() {
        let a = pc("http://a.test/1", None, Some(1));
        let b = pc("http://b.test/1", Some(2), Some(3));
        let fwd = Watermark::ZERO.advance(&[a.clone(), b.clone()]);
        let rev = Watermark::ZERO.advance(&[b, a]);
        assert_eq!(fwd, rev, "digest must not depend on arrival order");
        assert_eq!(fwd.events, 2);
        assert!(fwd.digest != 0);
    }

    #[test]
    fn chain_distinguishes_history() {
        let a = pc("http://a.test/1", None, Some(1));
        let b = pc("http://b.test/1", None, Some(2));
        // Same final set of pages, different epoch boundaries → different
        // digests: the chain commits to the grouping, not just the union.
        let one_epoch = Watermark::ZERO.advance(&[a.clone(), b.clone()]);
        let two_epochs = Watermark::ZERO.advance(&[a]).advance(&[b]);
        assert_eq!(one_epoch.events, two_epochs.events);
        assert_ne!(one_epoch.digest, two_epochs.digest);
    }
}
