//! # woc-stream — continuous crawl→extract→publish dataflow
//!
//! The batch pipeline (`woc-core`) and the incremental engine (`woc-incr`)
//! both assume a *finished* crawl: hand them a corpus, get a web. Real
//! crawls never finish — pages arrive one at a time, forever, while the
//! serving tier keeps answering queries. This crate closes that gap: a
//! staged dataflow that turns an unbounded stream of page events into a
//! sequence of atomically-published **micro-epochs**, with the headline
//! guarantee that after quiescing, the maintained web is byte-identical
//! ([`woc_incr::canonical_bytes`]) to a from-scratch batch build of the
//! same final crawl — streaming is an *execution strategy*, never a
//! semantic fork.
//!
//! ```text
//!                 bounded channel             bounded channel
//!  PageEvent ──▶ [fingerprint/dedup] ──seq──▶ [extract ×N] ──seq──▶ [commit]
//!                 sequential: assigns          parallel: pure          reorder by seq,
//!                 seq numbers, drops           fn of page              coalesce per URL,
//!                 no-op recrawls               content                 content-defined cut
//!                                                                        │ cut
//!                                                                        ▼
//!                                                          seed memos → IncrEngine::maintain
//!                                                                        │ SegmentDelta
//!                                                                        ▼
//!                                                  ConceptServer::publish_delta_segmented
//!                                                  (readers never block, cache retained)
//! ```
//!
//! **Backpressure.** Stages are connected by bounded MPMC channels built
//! on `Mutex`+`Condvar` ([`channel`]): when the commit stage is busy
//! publishing, the extract workers fill their output channel and park;
//! when the workers are saturated, the fingerprint stage parks; pressure
//! propagates to the input instead of accumulating in unbounded queues.
//! The commit-side reorder buffer is bounded too — by total channel
//! capacity plus one message per worker — because sequence numbers are
//! dense. The stage graph is acyclic, so there is no deadlock to have:
//! the chaos suite runs the whole dataflow under fault injection behind a
//! watchdog to keep it that way.
//!
//! **Micro-epochs are content-defined.** A change whose fingerprint has
//! its low [`StreamConfig::cut_mask`] bits zero closes the open batch
//! (think content-defined chunking, applied to time instead of bytes).
//! Epoch boundaries are therefore a pure function of *what was crawled* —
//! two runs of the same event stream cut identically at any worker count,
//! channel capacity, or machine load, which is what makes the journal
//! replayable and the equivalence suite meaningful. Each committed
//! micro-epoch advances a [`Watermark`]: a cumulative event count plus a
//! digest chained over the coalesced page transitions in sorted-URL order
//! ([`woc_audit::stream_digest`] — the audit's W015 check recomputes the
//! same chain, so a journal that drifts from what was actually applied is
//! caught, not trusted).
//!
//! **Read-while-write.** Each micro-epoch publishes through
//! [`woc_serve::ConceptServer::publish_delta_segmented`] with the exact
//! changed-term/changed-record delta from the maintenance report: readers
//! keep answering against the previous epoch's snapshot during the pass,
//! the swap is atomic, and cached answers the delta provably does not
//! touch survive it. A failed pass (fault hook, panic) publishes nothing —
//! the batch coalesces into the next micro-epoch and the last good epoch
//! keeps serving. Partial state is structurally unobservable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
mod engine;
mod stages;
mod watermark;

pub use engine::{StreamConfig, StreamEngine, StreamReport};
pub use stages::PageEvent;
pub use watermark::{MicroEpoch, Watermark};
