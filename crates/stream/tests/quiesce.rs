//! The stream's headline invariant: after quiescing, the streamed web is
//! **byte-identical** ([`woc_incr::canonical_bytes`]) to a from-scratch
//! batch build of the same final crawl — at any churn rate and any worker
//! count — and the full audit (including the stream's own W015) passes.
//! The `stream` CI job runs exactly these tests.

use woc_audit::AuditConfig;
use woc_core::{build, PipelineConfig};
use woc_incr::canonical_bytes;
use woc_lrec::Tick;
use woc_serve::{ConceptServer, ServeConfig};
use woc_stream::{PageEvent, StreamConfig, StreamEngine};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, WebCorpus, World, WorldConfig};

/// Churn the world until at least one event actually fires (tiny worlds at
/// 1% churn usually roll zero events; a zero-event call is a no-op, so
/// retrying seeds is sound).
fn churn_until_events(world: &mut World, rate: f64, tick: Tick, mut seed: u64) {
    while churn_restaurants(world, rate, tick, seed).is_empty() {
        seed += 1;
        assert!(seed < 1000, "no churn events after a thousand seeds");
    }
}

fn stream_config(workers: usize) -> StreamConfig {
    StreamConfig {
        extract_workers: workers,
        pipeline: PipelineConfig {
            threads: 2,
            ..PipelineConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// The full recrawl as an event stream: every page of the new crawl as an
/// update (unchanged ones must dedup away), plus a removal for every URL
/// that vanished.
fn event_stream(old: &WebCorpus, new: &WebCorpus) -> Vec<PageEvent> {
    let mut events: Vec<PageEvent> = new
        .pages()
        .iter()
        .cloned()
        .map(PageEvent::Updated)
        .collect();
    for p in old.pages() {
        if new.get(&p.url).is_none() {
            events.push(PageEvent::Removed(p.url.clone()));
        }
    }
    events
}

fn assert_quiesced_clean(engine: &StreamEngine) {
    let report = engine.audit(&AuditConfig::default());
    let failing: Vec<_> = report
        .checks
        .iter()
        .filter(|c| c.violations > 0)
        .map(|c| (c.code.clone(), c.violations))
        .collect();
    assert!(report.passed(), "audit violations: {failing:?}");
    assert!(
        report.check("W015").is_some(),
        "stream audit must include the watermark check"
    );
}

/// Seed from crawl v1, churn at `rate`, stream the recrawl through
/// `workers` extract workers, and require byte-identity with a
/// from-scratch batch build plus a clean audit.
fn quiesce_scenario(rate: f64, workers: usize) {
    let mut world = World::generate(WorldConfig::tiny(500));
    let corpus_cfg = CorpusConfig::tiny(50);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = StreamEngine::new(corpus_v1.clone(), stream_config(workers));
    let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());

    churn_until_events(&mut world, rate, Tick(10), 1);
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);

    let report = engine.run(event_stream(&corpus_v1, &corpus_v2), &server);
    assert_eq!(report.publish_failures, 0, "{:?}", report.failure_messages);
    assert_eq!(
        report.pending_carryover, 0,
        "quiesced stream leaves nothing"
    );
    assert!(report.micro_epochs >= 1, "churn must commit something");
    assert!(
        report.deduped > 0,
        "recrawling unchanged pages must dedup at the fingerprint stage"
    );
    assert_eq!(report.final_watermark.events, {
        let changed: u64 = corpus_v2
            .pages()
            .iter()
            .filter(|p| corpus_v1.get(&p.url).map(|q| q.fingerprint()) != Some(p.fingerprint()))
            .count() as u64;
        changed
    });

    let fresh = build(&corpus_v2, &stream_config(workers).pipeline);
    assert_eq!(
        canonical_bytes(engine.web()),
        canonical_bytes(&fresh),
        "streamed web must be byte-identical to a batch build \
         (rate {rate}, {workers} workers)"
    );
    assert_eq!(
        server.epoch(),
        engine
            .journal()
            .iter()
            .map(|e| e.published_epoch)
            .max()
            .unwrap_or(1),
        "server must end on the last published micro-epoch"
    );
    assert_quiesced_clean(&engine);
}

#[test]
fn quiesce_equivalent_at_1pct_churn_1_worker() {
    quiesce_scenario(0.01, 1);
}

#[test]
fn quiesce_equivalent_at_1pct_churn_8_workers() {
    quiesce_scenario(0.01, 8);
}

#[test]
fn quiesce_equivalent_at_50pct_churn_1_worker() {
    quiesce_scenario(0.5, 1);
}

#[test]
fn quiesce_equivalent_at_50pct_churn_8_workers() {
    quiesce_scenario(0.5, 8);
}

/// The journal — ordinals, watermarks, transitions, changed records — is a
/// pure function of the event stream: worker count must not leak into it.
#[test]
fn journal_deterministic_across_worker_counts() {
    let mut world = World::generate(WorldConfig::tiny(500));
    let corpus_cfg = CorpusConfig::tiny(50);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    churn_until_events(&mut world, 0.5, Tick(10), 1);
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);
    let events = event_stream(&corpus_v1, &corpus_v2);

    let mut journals = Vec::new();
    for workers in [1usize, 8] {
        let mut engine = StreamEngine::new(corpus_v1.clone(), stream_config(workers));
        let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());
        let report = engine.run(events.clone(), &server);
        assert_eq!(report.publish_failures, 0);
        journals.push(engine.journal_views());
    }
    assert_eq!(
        journals[0], journals[1],
        "micro-epoch boundaries and watermarks must not depend on scheduling"
    );
}

/// Adds and removals: stream a recrawl where pages appear and vanish, then
/// require byte-identity against a batch build of the streamed corpus and
/// a clean audit (removals exercise tombstoning end to end).
#[test]
fn quiesce_equivalent_with_added_and_removed_pages() {
    let mut world = World::generate(WorldConfig::tiny(501));
    let corpus_cfg = CorpusConfig::tiny(51);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = StreamEngine::new(corpus_v1.clone(), stream_config(4));
    let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());

    churn_until_events(&mut world, 0.3, Tick(10), 1);
    let full_v2 = generate_corpus(&world, &corpus_cfg);
    // Drop every third page of the recrawl: those URLs get removal events.
    let mut corpus_v2 = WebCorpus::new();
    for (i, p) in full_v2.pages().iter().enumerate() {
        if i % 3 != 0 {
            corpus_v2.add(p.clone());
        }
    }

    let report = engine.run(event_stream(&corpus_v1, &corpus_v2), &server);
    assert_eq!(report.publish_failures, 0, "{:?}", report.failure_messages);
    assert_eq!(report.pending_carryover, 0);

    // The streamed corpus is the truth the engine maintained against;
    // batch-building it from scratch must reproduce the web exactly.
    let fresh = build(engine.corpus(), &stream_config(4).pipeline);
    assert_eq!(canonical_bytes(engine.web()), canonical_bytes(&fresh));
    assert_eq!(
        engine.corpus().len(),
        corpus_v2.len(),
        "removals must have shrunk the live corpus to the new crawl"
    );
    assert_quiesced_clean(&engine);
}
