//! Backpressure and watermark properties: the dataflow stays correct when
//! the channels are too small to absorb anything (every stage throttles),
//! batch sizes respect their cap, and the watermark algebra holds for
//! arbitrary transition sets.

use proptest::prelude::*;
use woc_audit::{stream_digest, PageChangeView};
use woc_core::{build, PipelineConfig};
use woc_incr::canonical_bytes;
use woc_lrec::Tick;
use woc_serve::{ConceptServer, ServeConfig};
use woc_stream::{PageEvent, StreamConfig, StreamEngine, Watermark};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

/// Single-slot channels, more workers than slots, a hard 3-page batch cap:
/// the stream must throttle end to end and still quiesce byte-identically,
/// with no journal entry exceeding the cap.
#[test]
fn single_slot_channels_throttle_but_stay_exact() {
    let mut world = World::generate(WorldConfig::tiny(503));
    let corpus_cfg = CorpusConfig::tiny(53);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let config = StreamConfig {
        channel_capacity: 1,
        extract_workers: 8,
        // Never cut on content: every micro-epoch closes on the size cap,
        // so the cap is what this test exercises.
        cut_mask: u64::MAX,
        max_batch_pages: 3,
        pipeline: PipelineConfig {
            threads: 2,
            ..PipelineConfig::default()
        },
    };
    let mut engine = StreamEngine::new(corpus_v1.clone(), config.clone());
    let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());

    let mut seed = 1;
    while churn_restaurants(&mut world, 0.6, Tick(10), seed).is_empty() {
        seed += 1;
    }
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);
    let events: Vec<PageEvent> = corpus_v2
        .pages()
        .iter()
        .cloned()
        .map(PageEvent::Updated)
        .collect();

    let report = engine.run(events, &server);
    assert_eq!(report.publish_failures, 0, "{:?}", report.failure_messages);
    assert_eq!(report.pending_carryover, 0);
    for e in engine.journal() {
        assert!(
            e.changed_pages.len() <= 3,
            "micro-epoch {} exceeded the batch cap: {} pages",
            e.ordinal,
            e.changed_pages.len()
        );
    }
    let fresh = build(&corpus_v2, &config.pipeline);
    assert_eq!(canonical_bytes(engine.web()), canonical_bytes(&fresh));
}

fn arb_change() -> impl Strategy<Value = PageChangeView> {
    (
        "[a-z]{1,8}",
        prop::option::of(0u64..u64::MAX),
        prop::option::of(0u64..u64::MAX),
    )
        .prop_map(|(path, old_fp, new_fp)| PageChangeView {
            url: format!("http://p.test/{path}"),
            old_fp,
            new_fp,
        })
}

proptest! {
    /// `advance` strictly increases `events` for non-empty batches, by
    /// exactly the batch size, from any starting watermark.
    #[test]
    fn watermark_events_strictly_monotone(
        start_events in 0u64..1_000_000,
        start_digest in 0u64..u64::MAX,
        changes in prop::collection::vec(arb_change(), 1..20),
    ) {
        let start = Watermark { events: start_events, digest: start_digest };
        let next = start.advance(&changes);
        prop_assert_eq!(next.events, start.events + changes.len() as u64);
        prop_assert!(next.events > start.events);
    }

    /// The digest is arrival-order-free (any permutation chains equally)
    /// but history-sensitive: it must depend on the previous digest.
    #[test]
    fn watermark_digest_order_free_and_chained(
        start_digest in 0u64..u64::MAX,
        mut changes in prop::collection::vec(arb_change(), 1..12),
        rotate in 0usize..12,
    ) {
        let fwd = stream_digest(start_digest, &changes);
        let r = rotate % changes.len();
        changes.rotate_left(r);
        prop_assert_eq!(fwd, stream_digest(start_digest, &changes));
        prop_assert_ne!(fwd, stream_digest(start_digest ^ 0x5a5a_5a5a, &changes));
    }
}
