//! The stream under fault injection: degraded crawls flow through the
//! dataflow while queries run, behind a watchdog. Required outcomes —
//! no deadlock (the watchdog fires otherwise), no partial micro-epoch
//! ever visible (every observed serving epoch is one the journal
//! published, or the initial build), and quiesced byte-identity holds on
//! whatever corpus the degraded crawl produced.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use woc_audit::AuditConfig;
use woc_chaos::{crawl, FaultProfile, RetryPolicy};
use woc_core::{build, PipelineConfig};
use woc_incr::canonical_bytes;
use woc_lrec::Tick;
use woc_serve::{ConceptServer, ServeConfig};
use woc_stream::{PageEvent, StreamConfig, StreamEngine, StreamReport};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, WebCorpus, World, WorldConfig};

/// Watchdog budget: generous for CI machines, tiny next to a real hang.
const WATCHDOG: Duration = Duration::from_secs(120);

fn stream_config() -> StreamConfig {
    StreamConfig {
        extract_workers: 4,
        // Small channels so backpressure actually engages under the test
        // corpus sizes.
        channel_capacity: 4,
        pipeline: PipelineConfig {
            threads: 2,
            ..PipelineConfig::default()
        },
        ..StreamConfig::default()
    }
}

fn event_stream(old: &WebCorpus, new: &WebCorpus) -> Vec<PageEvent> {
    let mut events: Vec<PageEvent> = new
        .pages()
        .iter()
        .cloned()
        .map(PageEvent::Updated)
        .collect();
    for p in old.pages() {
        if new.get(&p.url).is_none() {
            events.push(PageEvent::Removed(p.url.clone()));
        }
    }
    events
}

/// Run the stream on its own thread under the watchdog while a query
/// thread hammers the server and records every serving epoch it observes.
/// Returns the engine, the run report, and the observed epoch set.
fn run_with_watchdog(
    mut engine: StreamEngine,
    server: Arc<ConceptServer>,
    events: Vec<PageEvent>,
) -> (StreamEngine, StreamReport, Vec<u64>) {
    let (done_tx, done_rx) = mpsc::channel();
    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen: Vec<u64> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let answer = server.search("verde", 3);
                if seen.last() != Some(&answer.epoch) {
                    seen.push(answer.epoch);
                }
                std::thread::yield_now();
            }
            seen
        })
    };
    let runner = std::thread::spawn(move || {
        let report = engine.run(events, &server);
        (engine, report)
    });
    // The watchdog: a deadlocked dataflow never sends, and the test fails
    // loudly instead of hanging CI.
    let (engine, report) = {
        let handle = std::thread::spawn(move || {
            let out = runner.join().expect("stream thread must not panic");
            done_tx.send(()).ok();
            out
        });
        done_rx
            .recv_timeout(WATCHDOG)
            .expect("watchdog: stream did not quiesce — deadlock or livelock");
        handle.join().expect("collector thread must not panic")
    };
    stop.store(true, Ordering::Relaxed);
    let seen = observer.join().expect("observer thread must not panic");
    (engine, report, seen)
}

/// Every epoch a reader ever observed must be the initial build or a
/// journal-published one: partial micro-epochs are unobservable.
fn assert_no_partial_epochs(engine: &StreamEngine, initial_epoch: u64, seen: &[u64]) {
    let mut valid: Vec<u64> = engine.journal().iter().map(|e| e.published_epoch).collect();
    valid.push(initial_epoch);
    for epoch in seen {
        assert!(
            valid.contains(epoch),
            "observed serving epoch {epoch} was never published by a \
             micro-epoch (valid: {valid:?})"
        );
    }
}

fn chaos_scenario(profile: FaultProfile, seed: u64) {
    let mut world = World::generate(WorldConfig::tiny(500));
    let corpus_cfg = CorpusConfig::tiny(50);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let engine = StreamEngine::new(corpus_v1.clone(), stream_config());
    let server = Arc::new(ConceptServer::new(
        engine.web().clone(),
        ServeConfig::default(),
    ));
    let initial_epoch = server.epoch();

    let mut churn_seed = seed;
    while churn_restaurants(&mut world, 0.4, Tick(10), churn_seed).is_empty() {
        churn_seed += 1;
    }
    let truth_v2 = generate_corpus(&world, &corpus_cfg);
    // The degraded crawl: faults quarantine some pages; patch those from
    // the last good crawl, exactly as a resilient recrawl loop would.
    let outcome = crawl(&truth_v2, &profile, &RetryPolicy::default(), seed);
    let patched = outcome.patched_with(&corpus_v1);
    let events = event_stream(&corpus_v1, &patched);

    let (engine, report, seen) = run_with_watchdog(engine, Arc::clone(&server), events);
    assert_eq!(report.publish_failures, 0, "{:?}", report.failure_messages);
    assert_eq!(report.pending_carryover, 0, "chaos run must still quiesce");

    // Quiesced byte-identity on the corpus the degraded crawl produced.
    let fresh = build(engine.corpus(), &stream_config().pipeline);
    assert_eq!(
        canonical_bytes(engine.web()),
        canonical_bytes(&fresh),
        "degraded crawl ({}, seed {seed}) must still stream to a \
         byte-identical web",
        profile.name
    );
    assert_no_partial_epochs(&engine, initial_epoch, &seen);
    let audit = engine.audit(&AuditConfig::default());
    assert!(audit.passed(), "{}", audit.render());
}

#[test]
fn stream_survives_timeouts_seed_11() {
    chaos_scenario(FaultProfile::timeouts(), 11);
}

#[test]
fn stream_survives_timeouts_seed_17() {
    chaos_scenario(FaultProfile::timeouts(), 17);
}

#[test]
fn stream_survives_truncation_seed_11() {
    chaos_scenario(FaultProfile::truncation(), 11);
}

#[test]
fn stream_survives_truncation_seed_17() {
    chaos_scenario(FaultProfile::truncation(), 17);
}

#[test]
fn stream_survives_flapping_seed_11() {
    chaos_scenario(FaultProfile::flapping(), 11);
}

#[test]
fn stream_survives_flapping_seed_17() {
    chaos_scenario(FaultProfile::flapping(), 17);
}

/// Maintenance-side faults: a hook that rejects the first two passes makes
/// those micro-epochs fail. Their batches must coalesce — not vanish, not
/// publish partially — and a retry run must quiesce to byte-identity with
/// one journal entry covering the union of the failed batches.
#[test]
fn failed_publishes_coalesce_and_retry_quiesces() {
    let mut world = World::generate(WorldConfig::tiny(502));
    let corpus_cfg = CorpusConfig::tiny(52);
    let corpus_v1 = generate_corpus(&world, &corpus_cfg);
    let mut engine = StreamEngine::new(corpus_v1.clone(), stream_config());
    let server = ConceptServer::new(engine.web().clone(), ServeConfig::default());

    let rejections = Arc::new(AtomicUsize::new(0));
    let gate = Arc::clone(&rejections);
    engine.set_fault_hook(Box::new(move |_changes| {
        if gate.fetch_add(1, Ordering::SeqCst) < 2 {
            Err("injected: maintenance rejected".to_string())
        } else {
            Ok(())
        }
    }));

    let mut churn_seed = 1;
    while churn_restaurants(&mut world, 0.5, Tick(10), churn_seed).is_empty() {
        churn_seed += 1;
    }
    let corpus_v2 = generate_corpus(&world, &corpus_cfg);
    let report = engine.run(event_stream(&corpus_v1, &corpus_v2), &server);
    assert!(
        report.publish_failures >= 1,
        "the gate must have rejected at least one pass"
    );
    assert!(report
        .failure_messages
        .iter()
        .all(|m| m.contains("injected")));

    // Whether the stream already recovered in-run (later cuts retry the
    // coalesced batch) or still carries pending work, a quiesce retry with
    // no new events must finish the job.
    engine.clear_fault_hook();
    let retry = engine.run(Vec::new(), &server);
    assert_eq!(retry.publish_failures, 0);
    assert_eq!(engine.pending_len(), 0, "retry must drain the carry-over");

    let fresh = build(&corpus_v2, &stream_config().pipeline);
    assert_eq!(canonical_bytes(engine.web()), canonical_bytes(&fresh));
    let audit = engine.audit(&AuditConfig::default());
    assert!(audit.passed(), "{}", audit.render());
    // The failed batches surface as coalesced journal entries: total
    // transitions still account for every changed page exactly once.
    let journaled: usize = engine.journal().iter().map(|e| e.changed_pages.len()).sum();
    assert_eq!(journaled as u64, engine.watermark().events);
}
