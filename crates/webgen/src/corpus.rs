//! The crawled web: a corpus of pages with URL and site indexes.

use std::collections::{BTreeMap, HashMap};

use crate::page::Page;

/// A web corpus — what a crawler would hand to the extraction pipeline.
#[derive(Debug, Clone, Default)]
pub struct WebCorpus {
    pages: Vec<Page>,
    by_url: HashMap<String, usize>,
    by_site: BTreeMap<String, Vec<usize>>,
}

impl WebCorpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a page. Re-adding a URL replaces the old page (a recrawl).
    pub fn add(&mut self, page: Page) {
        match self.by_url.get(&page.url) {
            Some(&i) => {
                // Recrawl: site index unchanged (site is derived from URL).
                self.pages[i] = page;
            }
            None => {
                let i = self.pages.len();
                self.by_url.insert(page.url.clone(), i);
                self.by_site.entry(page.site.clone()).or_default().push(i);
                self.pages.push(page);
            }
        }
    }

    /// Look up a page by URL.
    pub fn get(&self, url: &str) -> Option<&Page> {
        self.by_url.get(url).map(|&i| &self.pages[i])
    }

    /// Remove a page by URL, preserving the insertion order of the rest —
    /// the streaming ingest path applies page removals this way so that a
    /// corpus maintained event-by-event stays order-identical (and thus
    /// doc-id-identical) to one regenerated from the final world. Returns
    /// the removed page, or `None` if the URL was never crawled.
    pub fn remove(&mut self, url: &str) -> Option<Page> {
        let i = self.by_url.remove(url)?;
        let page = self.pages.remove(i);
        // Every later page shifted down one slot; rebuild both indexes'
        // positions. (Removal is O(n); the streaming commit stage batches
        // removals per micro-epoch, and corpora are bounded by crawl size.)
        // woc-lint: allow(map-iter-order) — independent per-entry decrement; commutative.
        for idx in self.by_url.values_mut() {
            if *idx > i {
                *idx -= 1;
            }
        }
        let site_ids = self
            .by_site
            .get_mut(&page.site)
            .expect("invariant: every indexed page has a site bucket");
        site_ids.retain(|&p| p != i);
        if site_ids.is_empty() {
            self.by_site.remove(&page.site);
        }
        for ids in self.by_site.values_mut() {
            for idx in ids.iter_mut() {
                if *idx > i {
                    *idx -= 1;
                }
            }
        }
        Some(page)
    }

    /// All pages.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Site names in deterministic order.
    pub fn sites(&self) -> Vec<&str> {
        self.by_site.keys().map(String::as_str).collect()
    }

    /// Pages of one site, in insertion order.
    pub fn pages_of_site(&self, site: &str) -> Vec<&Page> {
        self.by_site
            .get(site)
            .map(|ids| ids.iter().map(|&i| &self.pages[i]).collect())
            .unwrap_or_default()
    }

    /// The hyperlink graph: URL → outgoing in-corpus link URLs.
    ///
    /// Links pointing outside the corpus are dropped — crawlers only know
    /// about pages they fetched.
    pub fn link_graph(&self) -> HashMap<&str, Vec<&str>> {
        let mut g: HashMap<&str, Vec<&str>> = HashMap::new();
        for p in &self.pages {
            let outs: Vec<&str> = p
                .links()
                .into_iter()
                .filter_map(|u| self.by_url.get(&u).map(|&i| self.pages[i].url.as_str()))
                .collect();
            g.insert(p.url.as_str(), outs);
        }
        g
    }

    /// Merge another corpus into this one (recrawls replace).
    pub fn extend(&mut self, other: WebCorpus) {
        for p in other.pages {
            self.add(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Node;
    use crate::page::{PageKind, PageTruth};

    fn page(url: &str, link_to: Option<&str>) -> Page {
        let mut body = Node::elem("body");
        if let Some(l) = link_to {
            body = body.child(Node::elem("a").attr("href", l).text_child("x"));
        }
        Page {
            url: url.to_string(),
            site: crate::page::url_host(url).to_string(),
            title: String::new(),
            dom: Node::elem("html").child(body),
            truth: PageTruth {
                kind: PageKind::Article,
                about: None,
                records: vec![],
                mentions: vec![],
            },
        }
    }

    #[test]
    fn add_get_and_site_index() {
        let mut c = WebCorpus::new();
        c.add(page("http://a.example.com/1", None));
        c.add(page("http://a.example.com/2", None));
        c.add(page("http://b.example.com/1", None));
        assert_eq!(c.len(), 3);
        assert!(c.get("http://a.example.com/1").is_some());
        assert!(c.get("http://nope").is_none());
        assert_eq!(c.sites(), vec!["a.example.com", "b.example.com"]);
        assert_eq!(c.pages_of_site("a.example.com").len(), 2);
    }

    #[test]
    fn remove_preserves_order_and_indexes() {
        let mut c = WebCorpus::new();
        c.add(page("http://a.example.com/1", None));
        c.add(page("http://b.example.com/1", None));
        c.add(page("http://a.example.com/2", None));
        let removed = c.remove("http://b.example.com/1").expect("page present");
        assert_eq!(removed.url, "http://b.example.com/1");
        assert_eq!(c.len(), 2);
        assert!(c.remove("http://b.example.com/1").is_none());
        // Order of the survivors is untouched and lookups still resolve.
        let urls: Vec<&str> = c.pages().iter().map(|p| p.url.as_str()).collect();
        assert_eq!(
            urls,
            vec!["http://a.example.com/1", "http://a.example.com/2"]
        );
        assert_eq!(c.get("http://a.example.com/2").unwrap().url, urls[1]);
        assert_eq!(c.sites(), vec!["a.example.com"]);
        assert_eq!(c.pages_of_site("a.example.com").len(), 2);
        assert!(c.pages_of_site("b.example.com").is_empty());
    }

    #[test]
    fn recrawl_replaces() {
        let mut c = WebCorpus::new();
        c.add(page("http://a.example.com/1", None));
        c.add(page(
            "http://a.example.com/1",
            Some("http://a.example.com/2"),
        ));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("http://a.example.com/1").unwrap().links().len(), 1);
    }

    #[test]
    fn link_graph_drops_external() {
        let mut c = WebCorpus::new();
        c.add(page(
            "http://a.example.com/1",
            Some("http://a.example.com/2"),
        ));
        c.add(page(
            "http://a.example.com/2",
            Some("http://external.example.org/"),
        ));
        let g = c.link_graph();
        assert_eq!(g["http://a.example.com/1"], vec!["http://a.example.com/2"]);
        assert!(g["http://a.example.com/2"].is_empty());
    }
}
