//! Deterministic synthetic prose: reviews and articles.
//!
//! Review text correlates with the review's star rating (sentiment words)
//! and mentions real attributes of the reviewed entity (dishes, city,
//! cuisine) so that record↔text matching and semantic linking have real
//! signal to find, as they would on the web.

// woc-lint: allow-file(panic-in-lib) — prose generator: unwraps are choose() over
// statically non-empty template pools.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

use woc_textkit::gazetteer::{NEGATIVE_WORDS, POSITIVE_WORDS};

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).copied().unwrap_or("")
}

/// Generate review text for a restaurant with the given attributes.
///
/// `rating` is 1..=5; ratings ≥ 4 draw positive sentiment, ≤ 2 negative,
/// 3 mixes both.
pub fn review_text(
    rng: &mut StdRng,
    restaurant_name: &str,
    city: &str,
    cuisine: &str,
    dishes: &[String],
    rating: i64,
) -> String {
    let pos = rating >= 4 || (rating == 3 && rng.random_bool(0.5));
    let sentiment = if pos {
        pick(rng, POSITIVE_WORDS)
    } else {
        pick(rng, NEGATIVE_WORDS)
    };
    let dish = dishes
        .choose(rng)
        .cloned()
        .unwrap_or_else(|| "food".to_string());
    let openers = [
        format!("The {dish} at {restaurant_name} was {sentiment}."),
        format!("{restaurant_name} serves {sentiment} {cuisine} food."),
        format!("Stopped by {restaurant_name} in {city} last week."),
    ];
    let middles = if pos {
        [
            format!(
                "Service was {} and the room felt {}.",
                pick(rng, POSITIVE_WORDS),
                pick(rng, POSITIVE_WORDS)
            ),
            format!("The {dish} alone is worth the trip."),
            format!("Easily the best {cuisine} spot in {city}."),
        ]
    } else {
        [
            format!(
                "Service was {} and the room felt {}.",
                pick(rng, NEGATIVE_WORDS),
                pick(rng, NEGATIVE_WORDS)
            ),
            format!("The {dish} arrived {}.", pick(rng, NEGATIVE_WORDS)),
            format!("There are better {cuisine} options in {city}."),
        ]
    };
    let closers = if pos {
        [
            "Would eat again!",
            "Highly recommended.",
            "Five happy stomachs.",
        ]
    } else {
        [
            "Would not return.",
            "Skip this one.",
            "Disappointed overall.",
        ]
    };
    let mut text = format!(
        "{} {} {}",
        openers.choose(rng).unwrap(),
        middles.choose(rng).unwrap(),
        pick(rng, &closers),
    );
    // Every review must carry at least one lexicon word matching its
    // rating's polarity — sentiment analysis over the usage logs counts on
    // it — and the sampled sentences may all be the neutral ones.
    if !text.contains(sentiment) {
        text.push_str(&format!(" In a word: {sentiment}."));
    }
    text
}

/// Generate article text that mentions the given entity names verbatim —
/// fodder for semantic linking (Table 1: Article↔Concept).
pub fn article_text(rng: &mut StdRng, topic: &str, mentions: &[&str]) -> String {
    let mut out = format!("An in-depth look at {topic}.");
    for m in mentions {
        let templates = [
            format!(" Readers keep asking about {m}, and for good reason."),
            format!(" Few places illustrate the trend better than {m}."),
            format!(" Our correspondent spent an evening at {m} to find out."),
            format!(" The story of {m} is instructive."),
        ];
        out.push_str(templates.choose(rng).unwrap());
    }
    out.push_str(" More coverage to follow in next week's edition.");
    out
}

/// A short biography/abstract sentence for academic pages.
pub fn research_blurb(rng: &mut StdRng, name: &str, topic: &str, institution: &str) -> String {
    let templates = [
        format!("{name} works on {topic} at {institution}."),
        format!("At {institution}, {name} studies {topic}."),
        format!("{name} is a researcher at {institution} focusing on {topic}."),
    ];
    templates.choose(rng).unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn review_sentiment_tracks_rating() {
        let mut rng = StdRng::seed_from_u64(7);
        let dishes = vec!["Pad Thai".to_string()];
        let good = review_text(&mut rng, "Gochi", "Cupertino", "Japanese", &dishes, 5);
        let bad = review_text(&mut rng, "Gochi", "Cupertino", "Japanese", &dishes, 1);
        let has_pos = |t: &str| POSITIVE_WORDS.iter().any(|w| t.contains(w));
        let has_neg = |t: &str| NEGATIVE_WORDS.iter().any(|w| t.contains(w));
        assert!(has_pos(&good) && !has_neg(&good), "good: {good}");
        assert!(has_neg(&bad) && !has_pos(&bad), "bad: {bad}");
    }

    #[test]
    fn review_mentions_restaurant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let t = review_text(
                &mut rng,
                "Blue Lotus",
                "Austin",
                "Thai",
                &["Tom Yum Soup".into()],
                4,
            );
            assert!(
                t.contains("Blue Lotus") || t.contains("Tom Yum Soup") || t.contains("Austin"),
                "review must carry matchable signal: {t}"
            );
        }
    }

    #[test]
    fn article_mentions_all_entities() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = article_text(&mut rng, "dining trends", &["Gochi", "Blue Lotus"]);
        assert!(t.contains("Gochi") && t.contains("Blue Lotus"));
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = || {
            let mut rng = StdRng::seed_from_u64(42);
            review_text(&mut rng, "X", "Y", "Z", &["D".into()], 4)
        };
        assert_eq!(gen(), gen());
    }
}
