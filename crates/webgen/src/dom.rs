//! A small DOM: the tree structure extractors actually see.
//!
//! Site-centric extraction (paper §4.1) "relies on the rich HTML structure
//! employed by the author for presenting the content"; our DOM keeps exactly
//! what that requires — element tags, `class`/`id`/`href` attributes, child
//! order and text — plus an HTML writer and a robust (never-panicking)
//! parser so pages can round-trip through markup like a real crawl.

// woc-lint: allow-file(panic-in-lib) — parser invariant: roots is seeded with one
// element before the loop and never drained.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A DOM node: an element with attributes and children, or a text node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// An element.
    Element {
        /// Lowercase tag name (`div`, `ul`, `li`, `span`, …).
        tag: String,
        /// Attributes, sorted by name for deterministic rendering.
        attrs: BTreeMap<String, String>,
        /// Children in document order.
        children: Vec<Node>,
    },
    /// A text node.
    Text(String),
}

impl Node {
    /// New element with no attributes or children.
    pub fn elem(tag: &str) -> Node {
        Node::Element {
            tag: tag.to_string(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// New text node.
    pub fn text(t: impl Into<String>) -> Node {
        Node::Text(t.into())
    }

    /// Builder: set an attribute.
    #[must_use]
    pub fn attr(mut self, name: &str, value: &str) -> Node {
        if let Node::Element { attrs, .. } = &mut self {
            attrs.insert(name.to_string(), value.to_string());
        }
        self
    }

    /// Builder: set the `class` attribute.
    #[must_use]
    pub fn class(self, value: &str) -> Node {
        self.attr("class", value)
    }

    /// Builder: append a child.
    #[must_use]
    pub fn child(mut self, c: Node) -> Node {
        if let Node::Element { children, .. } = &mut self {
            children.push(c);
        }
        self
    }

    /// Builder: append many children.
    #[must_use]
    pub fn children(mut self, cs: impl IntoIterator<Item = Node>) -> Node {
        if let Node::Element { children, .. } = &mut self {
            children.extend(cs);
        }
        self
    }

    /// Builder: append a text child.
    #[must_use]
    pub fn text_child(self, t: impl Into<String>) -> Node {
        self.child(Node::text(t))
    }

    /// Tag name, or `None` for text nodes.
    pub fn tag(&self) -> Option<&str> {
        match self {
            Node::Element { tag, .. } => Some(tag),
            Node::Text(_) => None,
        }
    }

    /// Attribute value.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        match self {
            Node::Element { attrs, .. } => attrs.get(name).map(String::as_str),
            Node::Text(_) => None,
        }
    }

    /// Element children (empty slice for text nodes).
    pub fn child_nodes(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            Node::Text(_) => &[],
        }
    }

    /// Mutable element children.
    pub fn child_nodes_mut(&mut self) -> Option<&mut Vec<Node>> {
        match self {
            Node::Element { children, .. } => Some(children),
            Node::Text(_) => None,
        }
    }

    /// Concatenated text content of the subtree, with single spaces between
    /// adjacent text runs.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out.trim().to_string()
    }

    fn collect_text(&self, out: &mut String) {
        match self {
            Node::Text(t) => {
                if !out.is_empty() && !out.ends_with(' ') {
                    out.push(' ');
                }
                out.push_str(t.trim());
            }
            Node::Element { children, .. } => {
                for c in children {
                    c.collect_text(out);
                }
            }
        }
    }

    /// Depth-first iterator over all nodes (self included) paired with their
    /// [`NodePath`] from this node.
    pub fn walk(&self) -> Vec<(NodePath, &Node)> {
        let mut out = Vec::new();
        self.walk_into(NodePath::root(), &mut out);
        out
    }

    fn walk_into<'a>(&'a self, path: NodePath, out: &mut Vec<(NodePath, &'a Node)>) {
        out.push((path.clone(), self));
        let mut tag_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for child in self.child_nodes() {
            match child {
                Node::Element { tag, .. } => {
                    let idx = tag_counts.entry(tag.as_str()).or_insert(0);
                    let p = path.push(tag, *idx);
                    *idx += 1;
                    child.walk_into(p, out);
                }
                Node::Text(_) => {
                    // Text nodes are addressed through their parent.
                    out.push((path.push("#text", 0), child));
                }
            }
        }
    }

    /// Find the first descendant element with the given class.
    pub fn find_class(&self, class: &str) -> Option<&Node> {
        self.walk().into_iter().map(|(_, n)| n).find(|n| {
            n.get_attr("class")
                .is_some_and(|c| c.split(' ').any(|x| x == class))
        })
    }

    /// Find all descendant elements with the given tag.
    pub fn find_tag(&self, tag: &str) -> Vec<&Node> {
        self.walk()
            .into_iter()
            .map(|(_, n)| n)
            .filter(|n| n.tag() == Some(tag))
            .collect()
    }

    /// Resolve a [`NodePath`] from this node.
    pub fn resolve(&self, path: &NodePath) -> Option<&Node> {
        let mut cur = self;
        for step in &path.steps {
            let mut seen = 0usize;
            let mut found = None;
            for child in cur.child_nodes() {
                if child.tag() == Some(step.tag.as_str()) {
                    if seen == step.index {
                        found = Some(child);
                        break;
                    }
                    seen += 1;
                }
            }
            cur = found?;
        }
        Some(cur)
    }

    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.child_nodes().iter().map(Node::size).sum::<usize>()
    }

    /// Render the subtree as HTML.
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    fn render(&self, out: &mut String) {
        match self {
            Node::Text(t) => out.push_str(&escape(t)),
            Node::Element {
                tag,
                attrs,
                children,
            } => {
                let _ = write!(out, "<{tag}");
                for (k, v) in attrs {
                    let _ = write!(out, " {k}=\"{}\"", escape(v));
                }
                out.push('>');
                for c in children {
                    c.render(out);
                }
                let _ = write!(out, "</{tag}>");
            }
        }
    }
}

fn escape(t: &str) -> String {
    t.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(t: &str) -> String {
    t.replace("&quot;", "\"")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

/// One step in a structural path: a tag plus its index among same-tag
/// siblings. These paths are the hypothesis space of wrapper induction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathStep {
    /// Child tag.
    pub tag: String,
    /// Index among siblings with the same tag.
    pub index: usize,
}

/// A structural path from a root node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct NodePath {
    /// Steps from the root.
    pub steps: Vec<PathStep>,
}

impl NodePath {
    /// The empty path (the root itself).
    pub fn root() -> NodePath {
        NodePath::default()
    }

    /// Extend with one step.
    #[must_use]
    pub fn push(&self, tag: &str, index: usize) -> NodePath {
        let mut steps = self.steps.clone();
        steps.push(PathStep {
            tag: tag.to_string(),
            index,
        });
        NodePath { steps }
    }

    /// Path depth.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Render like `html/0 > body/0 > div/2`.
    pub fn display(&self) -> String {
        self.steps
            .iter()
            .map(|s| format!("{}/{}", s.tag, s.index))
            .collect::<Vec<_>>()
            .join(" > ")
    }

    /// True if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &NodePath) -> bool {
        other.steps.len() >= self.steps.len()
            && self.steps.iter().zip(&other.steps).all(|(a, b)| a == b)
    }
}

/// Parse HTML produced by [`Node::to_html`] (or reasonably similar markup)
/// back into a tree. The parser never panics: mismatched or stray close tags
/// are skipped, unclosed elements are closed at end of input, and anything
/// unparseable becomes text. Returns a synthetic `html` root if the input
/// has multiple top-level nodes.
pub fn parse_html(input: &str) -> Node {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let mut roots = parser.parse_nodes(None);
    if roots.len() == 1 && roots[0].tag().is_some() {
        roots.pop().unwrap()
    } else {
        Node::Element {
            tag: "html".to_string(),
            attrs: BTreeMap::new(),
            children: roots,
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_nodes(&mut self, parent: Option<&str>) -> Vec<Node> {
        let mut out = Vec::new();
        while self.pos < self.input.len() {
            if self.input[self.pos] == b'<' {
                if self.peek_close() {
                    let tag = self.read_close_tag();
                    match (parent, tag) {
                        (Some(p), Some(t)) if p == t => return out,
                        // Stray close tag: if it matches an ancestor we are
                        // lenient and treat it as closing us too, else skip.
                        (Some(_), Some(_)) => return out,
                        _ => continue, // top level stray close: skip
                    }
                }
                if let Some(node) = self.parse_element() {
                    out.push(node);
                } else {
                    // '<' that is not a tag: consume as text.
                    self.pos += 1;
                    out.push(Node::text("<"));
                }
            } else {
                let text = self.read_text();
                if !text.trim().is_empty() {
                    out.push(Node::text(unescape(text.trim())));
                }
            }
        }
        out
    }

    fn peek_close(&self) -> bool {
        self.input.get(self.pos) == Some(&b'<') && self.input.get(self.pos + 1) == Some(&b'/')
    }

    fn read_close_tag(&mut self) -> Option<String> {
        // at '</'
        self.pos += 2;
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'>' {
            self.pos += 1;
        }
        let tag = String::from_utf8_lossy(&self.input[start..self.pos])
            .trim()
            .to_lowercase();
        if self.pos < self.input.len() {
            self.pos += 1; // consume '>'
        }
        (!tag.is_empty()).then_some(tag)
    }

    fn parse_element(&mut self) -> Option<Node> {
        let save = self.pos;
        self.pos += 1; // '<'
        let start = self.pos;
        while self.pos < self.input.len() && (self.input[self.pos].is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        if self.pos == start {
            self.pos = save;
            return None;
        }
        let tag = String::from_utf8_lossy(&self.input[start..self.pos]).to_lowercase();
        let mut attrs = BTreeMap::new();
        // Attributes until '>' or '/>'.
        loop {
            self.skip_ws();
            match self.input.get(self.pos) {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    // self-closing
                    self.pos += 1;
                    if self.input.get(self.pos) == Some(&b'>') {
                        self.pos += 1;
                    }
                    return Some(Node::Element {
                        tag,
                        attrs,
                        children: Vec::new(),
                    });
                }
                _ => {
                    if let Some((k, v)) = self.read_attr() {
                        attrs.insert(k, v);
                    } else {
                        self.pos += 1; // garbage: skip a byte
                    }
                }
            }
        }
        let children = self.parse_nodes(Some(&tag));
        Some(Node::Element {
            tag,
            attrs,
            children,
        })
    }

    fn read_attr(&mut self) -> Option<(String, String)> {
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric()
                || self.input[self.pos] == b'-'
                || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let name = String::from_utf8_lossy(&self.input[start..self.pos]).to_lowercase();
        self.skip_ws();
        if self.input.get(self.pos) != Some(&b'=') {
            return Some((name, String::new()));
        }
        self.pos += 1;
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b'"') {
            self.pos += 1;
            let vstart = self.pos;
            while self.pos < self.input.len() && self.input[self.pos] != b'"' {
                self.pos += 1;
            }
            let value = String::from_utf8_lossy(&self.input[vstart..self.pos]).to_string();
            if self.pos < self.input.len() {
                self.pos += 1;
            }
            Some((name, unescape(&value)))
        } else {
            let vstart = self.pos;
            while self.pos < self.input.len()
                && !self.input[self.pos].is_ascii_whitespace()
                && self.input[self.pos] != b'>'
            {
                self.pos += 1;
            }
            Some((
                name,
                String::from_utf8_lossy(&self.input[vstart..self.pos]).to_string(),
            ))
        }
    }

    fn read_text(&mut self) -> &'a str {
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'<' {
            self.pos += 1;
        }
        std::str::from_utf8(&self.input[start..self.pos]).unwrap_or("")
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Node {
        Node::elem("html").child(
            Node::elem("body")
                .child(Node::elem("h1").text_child("Gochi"))
                .child(Node::elem("ul").class("menu").children([
                    Node::elem("li").text_child("Pad Thai $9.95"),
                    Node::elem("li").text_child("Green Curry $11.50"),
                ])),
        )
    }

    #[test]
    fn build_and_text_content() {
        let d = sample();
        assert_eq!(d.text_content(), "Gochi Pad Thai $9.95 Green Curry $11.50");
        assert_eq!(d.size(), 9);
    }

    #[test]
    fn html_round_trip() {
        let d = sample();
        let html = d.to_html();
        let parsed = parse_html(&html);
        assert_eq!(parsed, d);
    }

    #[test]
    fn escaping_round_trip() {
        let d = Node::elem("p")
            .attr("title", "a \"quoted\" & <odd> title")
            .text_child("5 < 6 & 7 > 2");
        let parsed = parse_html(&d.to_html());
        assert_eq!(parsed, d);
    }

    #[test]
    fn parser_survives_malformed_input() {
        // Never panic, always return something (failure injection, DESIGN §8).
        for bad in [
            "",
            "<",
            "<<<>>>",
            "<div><p>unclosed",
            "</stray>text</more>",
            "<div class=>x</div>",
            "<a href=unquoted>y</a>",
            "plain text only",
            "<div><span></div></span>",
        ] {
            let _ = parse_html(bad);
        }
        let n = parse_html("<div><p>unclosed");
        assert_eq!(n.text_content(), "unclosed");
    }

    #[test]
    fn unquoted_attr_parsed() {
        let n = parse_html("<a href=unquoted>y</a>");
        assert_eq!(n.get_attr("href"), Some("unquoted"));
    }

    #[test]
    fn walk_paths_resolve() {
        let d = sample();
        for (path, node) in d.walk() {
            if node.tag().is_some() {
                assert_eq!(d.resolve(&path), Some(node), "path {}", path.display());
            }
        }
    }

    #[test]
    fn path_indexing_by_tag() {
        let d = sample();
        let path = NodePath::root().push("body", 0).push("ul", 0).push("li", 1);
        let li = d.resolve(&path).unwrap();
        assert_eq!(li.text_content(), "Green Curry $11.50");
        assert!(d
            .resolve(&NodePath::root().push("body", 0).push("ul", 1))
            .is_none());
    }

    #[test]
    fn path_prefix() {
        let a = NodePath::root().push("body", 0);
        let b = a.push("ul", 0);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(NodePath::root().is_prefix_of(&a));
    }

    #[test]
    fn find_helpers() {
        let d = sample();
        assert!(d.find_class("menu").is_some());
        assert!(d.find_class("nope").is_none());
        assert_eq!(d.find_tag("li").len(), 2);
    }

    #[test]
    fn multi_root_wrapped() {
        let n = parse_html("<p>a</p><p>b</p>");
        assert_eq!(n.tag(), Some("html"));
        assert_eq!(n.child_nodes().len(), 2);
    }
}
