//! Ground-truth world generation.
//!
//! A [`World`] is the "real world" behind the synthetic web: actual
//! restaurants, people, publications, products, sellers and events, stored as
//! ground-truth lrecs. Sites (see [`crate::sites`]) render pages *about*
//! these entities; extraction quality is then measurable against the world.

// woc-lint: allow-file(panic-in-lib) — world generator: unwraps are choose() over
// statically non-empty gazetteers/pools; a panic here is a broken fixture, not a
// user-facing failure mode.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use woc_lrec::domains::{standard_registry, StandardConcepts};
use woc_lrec::value::Date;
use woc_lrec::{AttrValue, ConceptRegistry, LrecId, Provenance, Store, Tick};
use woc_textkit::gazetteer::{
    BRANDS, CITIES, CUISINES, DISHES, EVENT_CATEGORIES, FIRST_NAMES, INSTITUTIONS, LAST_NAMES,
    PRODUCT_CATEGORIES, RESEARCH_TOPICS, RESTAURANT_HEADS, RESTAURANT_TAILS, STREETS,
    STREET_SUFFIXES, VENUES,
};

use crate::prose;

/// Sizing knobs for world generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of restaurants.
    pub restaurants: usize,
    /// Reviews per restaurant (upper bound; actual is 1..=this).
    pub max_reviews_per_restaurant: usize,
    /// Menu items per restaurant (range 4..=this).
    pub max_menu_items: usize,
    /// Number of researchers.
    pub people: usize,
    /// Number of publications.
    pub publications: usize,
    /// Number of products.
    pub products: usize,
    /// Number of sellers.
    pub sellers: usize,
    /// Number of events.
    pub events: usize,
    /// How many cities from the gazetteer to use (denser categories with
    /// fewer cities).
    pub cities: usize,
    /// How many cuisines from the gazetteer to use.
    pub cuisines: usize,
    /// RNG seed: same seed ⇒ identical world.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            restaurants: 60,
            max_reviews_per_restaurant: 6,
            max_menu_items: 10,
            people: 30,
            publications: 50,
            products: 40,
            sellers: 6,
            events: 30,
            cities: 5,
            cuisines: 4,
            seed: 0xC0FFEE,
        }
    }
}

impl WorldConfig {
    /// A small world for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            restaurants: 10,
            max_reviews_per_restaurant: 3,
            max_menu_items: 6,
            people: 8,
            publications: 12,
            products: 10,
            sellers: 3,
            events: 8,
            cities: 4,
            cuisines: 4,
            seed,
        }
    }
}

/// The ground-truth world.
#[derive(Debug, Clone)]
pub struct World {
    /// Concept registry (standard concepts + domains).
    pub registry: ConceptRegistry,
    /// Ids of the standard concepts.
    pub concepts: StandardConcepts,
    /// Ground-truth records.
    pub store: Store,
    /// Restaurant record ids.
    pub restaurants: Vec<LrecId>,
    /// Menu-item ids per restaurant (parallel to `restaurants`).
    pub menus: Vec<Vec<LrecId>>,
    /// Review ids per restaurant (parallel to `restaurants`).
    pub reviews: Vec<Vec<LrecId>>,
    /// Person ids.
    pub people: Vec<LrecId>,
    /// Institution ids.
    pub institutions: Vec<LrecId>,
    /// Publication ids.
    pub publications: Vec<LrecId>,
    /// Product ids (components and bundles).
    pub products: Vec<LrecId>,
    /// Bundle product ids (subset of `products`).
    pub bundles: Vec<LrecId>,
    /// Seller ids.
    pub sellers: Vec<LrecId>,
    /// Offer ids.
    pub offers: Vec<LrecId>,
    /// Event ids.
    pub events: Vec<LrecId>,
    /// The config used.
    pub config: WorldConfig,
}

impl World {
    /// Generate a world from a config (fully deterministic in the seed).
    pub fn generate(config: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (registry, concepts) = standard_registry();
        let mut store = Store::new();
        let t0 = Tick(0);
        let gt = || Provenance::ground_truth(Tick(0));

        let city_pool = &CITIES[..config.cities.clamp(1, CITIES.len())];
        let cuisine_pool = &CUISINES[..config.cuisines.clamp(1, CUISINES.len())];

        // --- Restaurants, menus, reviews -------------------------------
        let mut restaurants = Vec::new();
        let mut menus = Vec::new();
        let mut reviews = Vec::new();
        let mut used_names = std::collections::HashSet::new();
        for i in 0..config.restaurants {
            let cuisine = *cuisine_pool.choose(&mut rng).unwrap();
            let name = loop {
                let head = *RESTAURANT_HEADS.choose(&mut rng).unwrap();
                let tail = *RESTAURANT_TAILS.choose(&mut rng).unwrap();
                let candidate = if rng.random_bool(0.3) {
                    format!("{head} {cuisine} {tail}")
                } else {
                    format!("{head} {tail}")
                };
                if used_names.insert(candidate.clone()) {
                    break candidate;
                }
            };
            let &(city, state, zip_prefix) = city_pool.choose(&mut rng).unwrap();
            let zip = format!("{zip_prefix}{:02}", rng.random_range(0..100));
            let street_no = rng.random_range(100..20000);
            let street = format!(
                "{} {}",
                STREETS.choose(&mut rng).unwrap(),
                STREET_SUFFIXES.choose(&mut rng).unwrap()
            );
            let phone = format!(
                "{}555{:04}",
                ["408", "650", "415", "312", "206", "512"]
                    .choose(&mut rng)
                    .unwrap(),
                rng.random_range(0..10000)
            );
            let second_phone = rng
                .random_bool(0.3)
                .then(|| format!("{}555{:04}", "408", rng.random_range(0..10000)));
            let open = rng.random_range(7..12);
            let close = rng.random_range(20..24) - 12;
            let hours = format!("{open}am - {close}pm");
            let rating = (rng.random_range(20..50) as f64) / 10.0;
            let price_level = rng.random_range(1..5i64);
            let slug = slugify(&name);
            let homepage = format!("http://{slug}.example.com/");

            let rid = store.insert(concepts.restaurant, t0, |r| {
                r.add("name", AttrValue::Text(name.clone()), gt());
                r.add(
                    "street",
                    AttrValue::Text(format!("{street_no} {street}")),
                    gt(),
                );
                r.add("city", AttrValue::Text(city.to_string()), gt());
                r.add("state", AttrValue::Text(state.to_string()), gt());
                r.add("zip", AttrValue::Zip(zip.clone()), gt());
                r.add("phone", AttrValue::Phone(phone.clone()), gt());
                if let Some(p2) = &second_phone {
                    r.add("phone", AttrValue::Phone(p2.clone()), gt());
                }
                r.add("cuisine", AttrValue::Text(cuisine.to_string()), gt());
                r.add("hours", AttrValue::Text(hours.clone()), gt());
                r.add("homepage", AttrValue::Url(homepage.clone()), gt());
                r.add("rating", AttrValue::Float(rating), gt());
                r.add("price_level", AttrValue::Int(price_level), gt());
            });

            // Menu.
            let n_items = rng.random_range(4..=config.max_menu_items.max(5));
            let mut dish_pool: Vec<&str> = DISHES.to_vec();
            let mut items = Vec::new();
            let mut dish_names = Vec::new();
            for k in 0..n_items {
                if dish_pool.is_empty() {
                    break;
                }
                let di = rng.random_range(0..dish_pool.len());
                let dish = dish_pool.swap_remove(di);
                let price = rng.random_range(595..2695) / 5 * 5; // cents
                let section = if k < n_items / 2 { "Mains" } else { "Specials" };
                let mid = store.insert(concepts.menu_item, t0, |r| {
                    r.add("name", AttrValue::Text(dish.to_string()), gt());
                    r.add("price", AttrValue::PriceCents(price as i64), gt());
                    r.add("restaurant", AttrValue::Ref(rid), gt());
                    r.add("section", AttrValue::Text(section.to_string()), gt());
                });
                items.push(mid);
                dish_names.push(dish.to_string());
            }

            // Reviews.
            let n_reviews = rng.random_range(1..=config.max_reviews_per_restaurant.max(1));
            let mut revs = Vec::new();
            for _ in 0..n_reviews {
                let rating = rng.random_range(1..=5i64);
                let author = format!(
                    "{} {}",
                    FIRST_NAMES.choose(&mut rng).unwrap(),
                    LAST_NAMES.choose(&mut rng).unwrap()
                );
                let text = prose::review_text(&mut rng, &name, city, cuisine, &dish_names, rating);
                let vid = store.insert(concepts.review, t0, |r| {
                    r.add("text", AttrValue::Text(text.clone()), gt());
                    r.add("rating", AttrValue::Int(rating), gt());
                    r.add("author_name", AttrValue::Text(author.clone()), gt());
                    r.add("about", AttrValue::Ref(rid), gt());
                });
                revs.push(vid);
            }

            restaurants.push(rid);
            menus.push(items);
            reviews.push(revs);
            let _ = i;
        }

        // --- Academic domain --------------------------------------------
        let mut institutions = Vec::new();
        for inst in INSTITUTIONS {
            let &(city, _, _) = CITIES.choose(&mut rng).unwrap();
            let iid = store.insert(concepts.institution, t0, |r| {
                r.add("name", AttrValue::Text(inst.to_string()), gt());
                r.add("city", AttrValue::Text(city.to_string()), gt());
            });
            institutions.push(iid);
        }
        let mut people = Vec::new();
        let mut person_names = std::collections::HashSet::new();
        for _ in 0..config.people {
            let name = loop {
                let n = format!(
                    "{} {}",
                    FIRST_NAMES.choose(&mut rng).unwrap(),
                    LAST_NAMES.choose(&mut rng).unwrap()
                );
                if person_names.insert(n.clone()) {
                    break n;
                }
            };
            let email = format!("{}@example.edu", slugify(&name));
            let homepage = format!("http://people.example.edu/~{}/", slugify(&name));
            let pid = store.insert(concepts.person, t0, |r| {
                r.add("name", AttrValue::Text(name.clone()), gt());
                r.add("email", AttrValue::Text(email.clone()), gt());
                r.add("homepage", AttrValue::Url(homepage.clone()), gt());
            });
            people.push(pid);
        }
        let mut publications = Vec::new();
        for _ in 0..config.publications {
            let topic = *RESEARCH_TOPICS.choose(&mut rng).unwrap();
            let topic2 = *RESEARCH_TOPICS.choose(&mut rng).unwrap();
            let title = format!(
                "{} {}: {} for {}",
                [
                    "Towards",
                    "Scalable",
                    "Efficient",
                    "Robust",
                    "Adaptive",
                    "Principled"
                ]
                .choose(&mut rng)
                .unwrap(),
                capitalize_words(topic),
                [
                    "a Framework",
                    "New Techniques",
                    "an Approach",
                    "Foundations"
                ]
                .choose(&mut rng)
                .unwrap(),
                topic2,
            );
            let venue = *VENUES.choose(&mut rng).unwrap();
            let year = rng.random_range(1999..2010i64);
            let n_authors = rng.random_range(1..=4.min(people.len()));
            let mut authors: Vec<LrecId> = Vec::new();
            while authors.len() < n_authors {
                let p = *people.choose(&mut rng).unwrap();
                if !authors.contains(&p) {
                    authors.push(p);
                }
            }
            let pid = store.insert(concepts.publication, t0, |r| {
                r.add("title", AttrValue::Text(title.clone()), gt());
                r.add("venue", AttrValue::Text(venue.to_string()), gt());
                r.add("year", AttrValue::Int(year), gt());
                for a in &authors {
                    r.add("author", AttrValue::Ref(*a), gt());
                }
                r.add("topic", AttrValue::Text(topic.to_string()), gt());
            });
            publications.push(pid);
        }

        // --- Shopping domain --------------------------------------------
        let mut products = Vec::new();
        for _ in 0..config.products {
            let brand = *BRANDS.choose(&mut rng).unwrap();
            let &(category, lo, hi) = PRODUCT_CATEGORIES.choose(&mut rng).unwrap();
            let model = format!(
                "{}{}",
                ["D", "G", "EOS-", "A", "X", "FZ"].choose(&mut rng).unwrap(),
                rng.random_range(10..100)
            );
            let name = format!("{brand} {model}");
            let _ = (lo, hi);
            let pid = store.insert(concepts.product, t0, |r| {
                r.add("name", AttrValue::Text(name.clone()), gt());
                r.add("brand", AttrValue::Text(brand.to_string()), gt());
                r.add("category", AttrValue::Text(category.to_string()), gt());
                r.add("model", AttrValue::Text(model.clone()), gt());
                r.add("is_a", AttrValue::Text(category.to_string()), gt());
            });
            products.push(pid);
        }
        // Augmentation links (camera ↔ battery/lens/bag), §5.4 "Augmentations".
        let accessory_ids: Vec<LrecId> = products
            .iter()
            .copied()
            .filter(|&p| {
                let cat = store
                    .latest(p)
                    .unwrap()
                    .best_string("category")
                    .unwrap_or_default();
                cat.contains("Battery")
                    || cat.contains("Lens")
                    || cat.contains("Bag")
                    || cat.contains("Card")
                    || cat.contains("Tripod")
                    || cat.contains("Flash")
            })
            .collect();
        let camera_ids: Vec<LrecId> = products
            .iter()
            .copied()
            .filter(|&p| {
                let cat = store
                    .latest(p)
                    .unwrap()
                    .best_string("category")
                    .unwrap_or_default();
                // Actual cameras only — lenses/bags/batteries are accessories.
                cat.ends_with("Camera")
            })
            .collect();
        for &cam in &camera_ids {
            if accessory_ids.is_empty() {
                break;
            }
            let n = rng.random_range(1..=3.min(accessory_ids.len()));
            let mut chosen: Vec<LrecId> = Vec::new();
            while chosen.len() < n {
                let a = *accessory_ids.choose(&mut rng).unwrap();
                if !chosen.contains(&a) {
                    chosen.push(a);
                }
            }
            store
                .update(cam, Tick(1), |r| {
                    for a in &chosen {
                        r.add(
                            "augments",
                            AttrValue::Ref(*a),
                            Provenance::ground_truth(Tick(1)),
                        );
                    }
                })
                .expect("augment update");
        }

        // Bundles (§2.3 "part of a special camera package"): a camera plus
        // accessories grouped as a product whose components carry `part_of`
        // references to it.
        let mut bundles = Vec::new();
        if !camera_ids.is_empty() && accessory_ids.len() >= 2 {
            for b in 0..2usize {
                let cam = camera_ids[b % camera_ids.len()];
                let acc1 = accessory_ids[b % accessory_ids.len()];
                let acc2 = accessory_ids[(b + 1) % accessory_ids.len()];
                let cam_name = store
                    .latest(cam)
                    .and_then(|r| r.best_string("name"))
                    .unwrap_or_default();
                let bundle = store.insert(concepts.product, t0, |r| {
                    r.add(
                        "name",
                        AttrValue::Text(format!("{cam_name} Travel Bundle")),
                        gt(),
                    );
                    r.add(
                        "brand",
                        AttrValue::Text(cam_name.split(' ').next().unwrap_or("").to_string()),
                        gt(),
                    );
                    r.add(
                        "category",
                        AttrValue::Text("Camera Bundle".to_string()),
                        gt(),
                    );
                    r.add("model", AttrValue::Text(format!("BNDL-{b}")), gt());
                    r.add("is_a", AttrValue::Text("Camera Bundle".to_string()), gt());
                });
                for &component in &[cam, acc1, acc2] {
                    store
                        .update(component, Tick(1).max(store.max_tick()).next(), |r| {
                            r.add(
                                "part_of",
                                AttrValue::Ref(bundle),
                                Provenance::ground_truth(Tick(1)),
                            );
                        })
                        .expect("part_of update");
                }
                bundles.push(bundle);
                products.push(bundle);
            }
        }

        let mut sellers = Vec::new();
        for s in 0..config.sellers {
            let name = format!(
                "{} {}",
                ["Shutter", "Pixel", "Photo", "Optic", "Lens", "Aperture"]
                    .choose(&mut rng)
                    .unwrap(),
                ["Mart", "World", "Depot", "Hub", "Outlet", "Bazaar"]
                    .choose(&mut rng)
                    .unwrap()
            );
            let sid = store.insert(concepts.seller, t0, |r| {
                r.add("name", AttrValue::Text(format!("{name} {s}")), gt());
                r.add(
                    "homepage",
                    AttrValue::Url(format!("http://seller{s}.example.com/")),
                    gt(),
                );
            });
            sellers.push(sid);
        }
        let mut offers = Vec::new();
        for &p in &products {
            let cat = store
                .latest(p)
                .unwrap()
                .best_string("category")
                .unwrap_or_default();
            let (lo, hi) = PRODUCT_CATEGORIES
                .iter()
                .find(|&&(c, _, _)| c == cat)
                .map(|&(_, lo, hi)| (lo, hi))
                .unwrap_or((10, 100));
            let base = rng.random_range(lo..=hi) as i64 * 100;
            for &s in &sellers {
                if rng.random_bool(0.6) {
                    let jitter = rng.random_range(-10..=10) as i64 * 50;
                    let oid = store.insert(concepts.offer, t0, |r| {
                        r.add("product", AttrValue::Ref(p), gt());
                        r.add("seller", AttrValue::Ref(s), gt());
                        r.add(
                            "price",
                            AttrValue::PriceCents((base + jitter).max(500)),
                            gt(),
                        );
                        r.add("in_stock", AttrValue::Bool(rng.random_bool(0.85)), gt());
                    });
                    offers.push(oid);
                }
            }
        }

        // --- Events -------------------------------------------------------
        let mut events = Vec::new();
        for _ in 0..config.events {
            let category = *EVENT_CATEGORIES.choose(&mut rng).unwrap();
            let &(city, _, _) = CITIES.choose(&mut rng).unwrap();
            let name = format!(
                "{} {} {}",
                city,
                ["Winter", "Spring", "Summer", "Fall", "Annual", "Grand"]
                    .choose(&mut rng)
                    .unwrap(),
                category
            );
            let date = Date {
                year: 2009,
                month: rng.random_range(1..=12),
                day: rng.random_range(1..=28),
            };
            let venue = format!(
                "{} {}",
                ["Civic", "Memorial", "Riverside", "Downtown", "Harbor"]
                    .choose(&mut rng)
                    .unwrap(),
                ["Hall", "Arena", "Theater", "Center", "Pavilion"]
                    .choose(&mut rng)
                    .unwrap()
            );
            let price = rng.random_range(0..15i64) * 500;
            let eid = store.insert(concepts.event, t0, |r| {
                r.add("name", AttrValue::Text(name.clone()), gt());
                r.add("category", AttrValue::Text(category.to_string()), gt());
                r.add("city", AttrValue::Text(city.to_string()), gt());
                r.add("venue", AttrValue::Text(venue.clone()), gt());
                r.add("date", AttrValue::Date(date), gt());
                r.add("price", AttrValue::PriceCents(price), gt());
            });
            events.push(eid);
        }

        // Pin restaurant 0 to the paper's Figure 1 example — Gochi in
        // Cupertino — so the `gochi cupertino` concept-box experiment (F1)
        // works against any seed.
        if let Some(&gochi) = restaurants.first() {
            store
                .update(gochi, Tick(1), |r| {
                    let p = Provenance::ground_truth(Tick(1));
                    r.set(
                        "name",
                        AttrValue::Text("Gochi Fusion Tapas".into()),
                        p.clone(),
                    );
                    r.set("city", AttrValue::Text("Cupertino".into()), p.clone());
                    r.set("state", AttrValue::Text("CA".into()), p.clone());
                    r.set(
                        "street",
                        AttrValue::Text("19980 Homestead Rd".into()),
                        p.clone(),
                    );
                    r.set("zip", AttrValue::Zip("95014".into()), p.clone());
                    r.set("cuisine", AttrValue::Text("Japanese".into()), p.clone());
                    r.set(
                        "homepage",
                        AttrValue::Url("http://gochi-fusion-tapas.example.com/".into()),
                        p,
                    );
                })
                .expect("gochi pin");
        }

        World {
            registry,
            concepts,
            store,
            restaurants,
            menus,
            reviews,
            people,
            institutions,
            publications,
            products,
            bundles,
            sellers,
            offers,
            events,
            config,
        }
    }

    /// Convenience: the ground-truth record for an id.
    pub fn rec(&self, id: LrecId) -> &woc_lrec::Lrec {
        self.store.latest(id).expect("world ids are always live")
    }

    /// Convenience: best string attribute of a record.
    pub fn attr(&self, id: LrecId, key: &str) -> String {
        self.rec(id).best_string(key).unwrap_or_default()
    }
}

/// Lowercase, hyphen-separated slug of a name (for URLs).
pub fn slugify(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut dash = true;
    for c in name.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            dash = false;
        } else if !dash {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

fn capitalize_words(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_sizes_match_config() {
        let w = World::generate(WorldConfig::tiny(1));
        assert_eq!(w.restaurants.len(), 10);
        assert_eq!(w.menus.len(), 10);
        assert_eq!(w.reviews.len(), 10);
        assert_eq!(w.people.len(), 8);
        assert_eq!(w.publications.len(), 12);
        // Products = configured components + generated bundles.
        assert_eq!(w.products.len(), 10 + w.bundles.len());
        assert_eq!(w.events.len(), 8);
        assert!(!w.offers.is_empty());
        // Bundle components link back via part_of.
        for &b in &w.bundles {
            let components: Vec<_> = w
                .products
                .iter()
                .filter(|&&p| {
                    w.rec(p)
                        .get("part_of")
                        .iter()
                        .any(|e| e.value.as_ref_id() == Some(b))
                })
                .collect();
            assert!(
                components.len() >= 3,
                "bundle {b} has {} components",
                components.len()
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = World::generate(WorldConfig::tiny(42));
        let b = World::generate(WorldConfig::tiny(42));
        for (&x, &y) in a.restaurants.iter().zip(&b.restaurants) {
            assert_eq!(a.rec(x), b.rec(y));
        }
        let c = World::generate(WorldConfig::tiny(43));
        let same = a
            .restaurants
            .iter()
            .zip(&c.restaurants)
            .all(|(&x, &y)| a.attr(x, "name") == c.attr(y, "name"));
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn restaurants_conform_to_schema() {
        let w = World::generate(WorldConfig::tiny(3));
        let schema = w.registry.schema(w.concepts.restaurant).unwrap();
        for &r in &w.restaurants {
            let v = schema.check(w.rec(r));
            assert!(v.is_empty(), "violations: {v:?}");
        }
    }

    #[test]
    fn restaurant_names_unique() {
        let w = World::generate(WorldConfig::default());
        let names: std::collections::HashSet<String> =
            w.restaurants.iter().map(|&r| w.attr(r, "name")).collect();
        assert_eq!(names.len(), w.restaurants.len());
    }

    #[test]
    fn menu_items_link_back() {
        let w = World::generate(WorldConfig::tiny(5));
        for (ri, items) in w.menus.iter().enumerate() {
            assert!(!items.is_empty());
            for &m in items {
                let about = w
                    .rec(m)
                    .best("restaurant")
                    .unwrap()
                    .value
                    .as_ref_id()
                    .unwrap();
                assert_eq!(about, w.restaurants[ri]);
            }
        }
    }

    #[test]
    fn reviews_link_back_and_have_text() {
        let w = World::generate(WorldConfig::tiny(6));
        for (ri, revs) in w.reviews.iter().enumerate() {
            for &v in revs {
                let rec = w.rec(v);
                assert_eq!(
                    rec.best("about").unwrap().value.as_ref_id().unwrap(),
                    w.restaurants[ri]
                );
                assert!(!rec.best_text("text").unwrap().is_empty());
            }
        }
    }

    #[test]
    fn publications_have_authors() {
        let w = World::generate(WorldConfig::tiny(7));
        for &p in &w.publications {
            let authors = w.rec(p).get("author");
            assert!(!authors.is_empty() && authors.len() <= 4);
        }
    }

    #[test]
    fn offers_reference_valid_products_and_sellers() {
        let w = World::generate(WorldConfig::tiny(8));
        for &o in &w.offers {
            let rec = w.rec(o);
            let p = rec.best("product").unwrap().value.as_ref_id().unwrap();
            let s = rec.best("seller").unwrap().value.as_ref_id().unwrap();
            assert!(w.products.contains(&p));
            assert!(w.sellers.contains(&s));
        }
    }

    #[test]
    fn slugify_examples() {
        assert_eq!(slugify("Gochi Fusion Tapas"), "gochi-fusion-tapas");
        assert_eq!(slugify("  -- A&B --"), "a-b");
        assert_eq!(slugify(""), "");
    }
}
