//! # woc-webgen — the synthetic web substrate
//!
//! The paper's system consumes the real 2009 web (yelp.com, city sites,
//! researcher homepages, shopping catalogs, upcoming.yahoo.com, blogs) and
//! proprietary Yahoo! logs. Neither is available, so this crate builds the
//! closest synthetic equivalent (DESIGN.md §2):
//!
//! 1. [`world`] samples a **ground-truth world** of entities (restaurants
//!    with menus and reviews, researchers and publications, products and
//!    offers, events) as lrecs;
//! 2. [`sites`] renders that world through per-site HTML **templates** into
//!    a [`corpus::WebCorpus`] of [`page::Page`]s with hyperlinks — regular
//!    markup *within* a site, different markup *across* sites, plus
//!    realistic value noise (name variants, phone formats);
//! 3. [`evolve`] models **change**: site-wide template drift and world churn
//!    (closures, phone changes), the workloads of robustness and
//!    maintenance experiments;
//! 4. every page carries a [`page::PageTruth`] annotation, invisible to
//!    extractors, against which extraction/matching/classification quality
//!    is measured.
//!
//! Everything is deterministic in the configured seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dom;
pub mod evolve;
pub mod page;
pub mod prose;
pub mod sites;
pub mod world;

pub use corpus::WebCorpus;
pub use dom::{parse_html, Node, NodePath, PathStep};
pub use evolve::{churn_restaurants, drift_site, ChurnEvent, DriftConfig, DriftPlan};
pub use page::{Page, PageKind, PageTruth, TruthRecord};
pub use sites::{
    generate_corpus, AdversarialConfig, AdversarialProfile, AdversarialSite, CorpusConfig,
    SiteStyle,
};
pub use world::{World, WorldConfig};
