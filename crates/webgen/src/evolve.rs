//! Page evolution: template drift and world churn.
//!
//! Paper §7.3: "we must develop extraction techniques that work robustly in
//! the face of such change" — sites redesign their templates, restaurants
//! "close down, move to a new location, or change phone numbers". This module
//! provides both change processes:
//!
//! * [`drift_site`] applies a *site-wide* template mutation (scripts change
//!   once, affecting every page of the site uniformly) without touching the
//!   underlying content — the workload of the robust-wrapper experiment S1.
//! * [`churn_restaurants`] mutates the ground-truth world (phone/hours
//!   changes, closures) — the workload of the maintenance experiment S6.

// woc-lint: allow-file(panic-in-lib) — corpus evolution: unwraps are choose() over
// non-empty pools and child_nodes_mut() on elements built by this module.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use woc_lrec::{AttrValue, LrecId, Provenance, Tick};

use crate::dom::Node;
use crate::page::Page;
use crate::world::World;

/// Intensity knobs for a template drift.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Probability of inserting an extra wrapper `<div>` around the body's
    /// main children.
    pub wrapper_prob: f64,
    /// Probability of renaming every class (suffix change).
    pub rename_prob: f64,
    /// Probability of injecting an ad/banner div into the body.
    pub ad_prob: f64,
    /// Probability of wrapping text values in `<b>` (per site, applied to
    /// all field-value spans).
    pub bold_prob: f64,
}

impl DriftConfig {
    /// Mild drift: the kind of incremental redesign robust wrappers should
    /// survive.
    pub fn mild() -> Self {
        Self {
            wrapper_prob: 0.5,
            rename_prob: 0.3,
            ad_prob: 0.7,
            bold_prob: 0.2,
        }
    }

    /// Heavy drift: several simultaneous mutations.
    pub fn heavy() -> Self {
        Self {
            wrapper_prob: 0.9,
            rename_prob: 0.8,
            ad_prob: 0.9,
            bold_prob: 0.6,
        }
    }
}

/// The concrete mutations chosen for one site redesign.
#[derive(Debug, Clone, Default)]
pub struct DriftPlan {
    wrap_body: bool,
    class_suffix: Option<String>,
    ad_position: Option<usize>,
    bold_values: bool,
}

impl DriftPlan {
    /// Sample a plan from a config.
    pub fn sample(cfg: &DriftConfig, rng: &mut StdRng) -> DriftPlan {
        DriftPlan {
            wrap_body: rng.random_bool(cfg.wrapper_prob),
            class_suffix: rng
                .random_bool(cfg.rename_prob)
                .then(|| format!("-r{}", rng.random_range(2..9))),
            ad_position: rng.random_bool(cfg.ad_prob).then(|| rng.random_range(0..2)),
            bold_values: rng.random_bool(cfg.bold_prob),
        }
    }

    /// True if the plan changes nothing.
    pub fn is_noop(&self) -> bool {
        !self.wrap_body
            && self.class_suffix.is_none()
            && self.ad_position.is_none()
            && !self.bold_values
    }

    /// Apply the plan to one page's DOM.
    pub fn apply(&self, dom: &Node) -> Node {
        let mut dom = dom.clone();
        if let Some(suffix) = &self.class_suffix {
            rename_classes(&mut dom, suffix);
        }
        if self.bold_values {
            bold_value_spans(&mut dom);
        }
        if let Some(body) = find_body_mut(&mut dom) {
            if self.wrap_body {
                let children = std::mem::take(body.child_nodes_mut().unwrap());
                let wrapper = Node::elem("div").class("redesign-wrap").children(children);
                body.child_nodes_mut().unwrap().push(wrapper);
            }
            if let Some(pos) = self.ad_position {
                let ad = Node::elem("div").class("ad-banner").child(
                    Node::elem("a")
                        .attr("href", "http://ads.example.net/click")
                        .text_child("Sponsored: limited time offer"),
                );
                let kids = body.child_nodes_mut().unwrap();
                let pos = pos.min(kids.len());
                kids.insert(pos, ad);
            }
        }
        dom
    }
}

fn find_body_mut(dom: &mut Node) -> Option<&mut Node> {
    if dom.tag() == Some("body") {
        return Some(dom);
    }
    if let Node::Element { children, .. } = dom {
        for c in children {
            if let Some(b) = find_body_mut(c) {
                return Some(b);
            }
        }
    }
    None
}

fn rename_classes(node: &mut Node, suffix: &str) {
    if let Node::Element {
        attrs, children, ..
    } = node
    {
        if let Some(c) = attrs.get_mut("class") {
            *c = format!("{c}{suffix}");
        }
        for ch in children {
            rename_classes(ch, suffix);
        }
    }
}

fn bold_value_spans(node: &mut Node) {
    if let Node::Element {
        tag,
        attrs,
        children,
    } = node
    {
        let is_value_span = tag == "span" && attrs.get("class").is_some_and(|c| c.ends_with("-v"));
        if is_value_span {
            let inner = std::mem::take(children);
            children.push(Node::elem("b").children(inner));
            return;
        }
        for ch in children {
            bold_value_spans(ch);
        }
    }
}

/// Redesign a whole site: sample one [`DriftPlan`] and apply it to every
/// page. Ground truth is untouched — only presentation changes.
pub fn drift_site(pages: &[Page], cfg: &DriftConfig, seed: u64) -> (Vec<Page>, DriftPlan) {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = DriftPlan::sample(cfg, &mut rng);
    let drifted = pages
        .iter()
        .map(|p| Page {
            dom: plan.apply(&p.dom),
            ..p.clone()
        })
        .collect();
    (drifted, plan)
}

/// A world-churn event (what changed in reality between crawls).
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A restaurant's phone number changed.
    PhoneChanged(LrecId, String),
    /// A restaurant's hours changed.
    HoursChanged(LrecId, String),
    /// A restaurant closed (record retracted from ground truth).
    Closed(LrecId),
}

impl ChurnEvent {
    /// The affected entity.
    pub fn entity(&self) -> LrecId {
        match self {
            ChurnEvent::PhoneChanged(id, _)
            | ChurnEvent::HoursChanged(id, _)
            | ChurnEvent::Closed(id) => *id,
        }
    }
}

/// Mutate a fraction `rate` of restaurants at `tick`. Closures are kept rare
/// (a tenth of churn events) so the corpus keeps most of its pages.
pub fn churn_restaurants(world: &mut World, rate: f64, tick: Tick, seed: u64) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let ids: Vec<LrecId> = world.restaurants.clone();
    for id in ids {
        if !rng.random_bool(rate.clamp(0.0, 1.0)) {
            continue;
        }
        let roll = rng.random_range(0..10);
        if roll == 0 {
            if world.store.retract(id).is_ok() {
                events.push(ChurnEvent::Closed(id));
            }
        } else if roll < 6 {
            let new_phone = format!(
                "{}555{:04}",
                ["408", "650", "415", "312"].choose(&mut rng).unwrap(),
                rng.random_range(0..10000)
            );
            world
                .store
                .update(id, tick, |r| {
                    // Replace the primary phone but keep any secondary one:
                    // the *number of* phones stays stable, so page rendering
                    // consumes the same randomness and only genuinely
                    // affected pages change between crawls.
                    let rest: Vec<AttrValue> = r
                        .get("phone")
                        .iter()
                        .skip(1)
                        .map(|e| e.value.clone())
                        .collect();
                    r.set(
                        "phone",
                        AttrValue::Phone(new_phone.clone()),
                        Provenance::ground_truth(tick),
                    );
                    for v in rest {
                        r.add("phone", v, Provenance::ground_truth(tick));
                    }
                })
                .expect("churn update");
            events.push(ChurnEvent::PhoneChanged(id, new_phone));
        } else {
            let open = rng.random_range(7..12);
            let close = rng.random_range(20..24) - 12;
            let new_hours = format!("{open}am - {close}pm");
            world
                .store
                .update(id, tick, |r| {
                    r.set(
                        "hours",
                        AttrValue::Text(new_hours.clone()),
                        Provenance::ground_truth(tick),
                    );
                })
                .expect("churn update");
            events.push(ChurnEvent::HoursChanged(id, new_hours));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{generate_corpus, CorpusConfig};
    use crate::world::{World, WorldConfig};

    #[test]
    fn drift_preserves_text_content_modulo_ads() {
        let w = World::generate(WorldConfig::tiny(81));
        let c = generate_corpus(&w, &CorpusConfig::tiny(1));
        let site_pages: Vec<Page> = c
            .pages_of_site("localreviews.example.com")
            .into_iter()
            .cloned()
            .collect();
        let (drifted, plan) = drift_site(&site_pages, &DriftConfig::heavy(), 7);
        assert!(!plan.is_noop());
        for (old, new) in site_pages.iter().zip(&drifted) {
            let old_text = old.text();
            let new_text = new.text();
            // All original content survives the redesign.
            for token in old_text.split(' ').take(30) {
                assert!(new_text.contains(token), "lost content token {token:?}");
            }
            assert_eq!(old.truth, new.truth, "truth is untouched by drift");
        }
    }

    #[test]
    fn drift_changes_structure() {
        let w = World::generate(WorldConfig::tiny(82));
        let c = generate_corpus(&w, &CorpusConfig::tiny(2));
        let site_pages: Vec<Page> = c
            .pages_of_site("localreviews.example.com")
            .into_iter()
            .cloned()
            .collect();
        let (drifted, plan) = drift_site(&site_pages, &DriftConfig::heavy(), 3);
        assert!(!plan.is_noop());
        let changed = site_pages
            .iter()
            .zip(&drifted)
            .filter(|(a, b)| a.dom != b.dom)
            .count();
        assert_eq!(
            changed,
            site_pages.len(),
            "site-wide redesign hits every page"
        );
    }

    #[test]
    fn drift_plan_deterministic() {
        let w = World::generate(WorldConfig::tiny(83));
        let c = generate_corpus(&w, &CorpusConfig::tiny(3));
        let pages: Vec<Page> = c
            .pages_of_site("upcoming.example.com")
            .into_iter()
            .cloned()
            .collect();
        let (a, _) = drift_site(&pages, &DriftConfig::mild(), 99);
        let (b, _) = drift_site(&pages, &DriftConfig::mild(), 99);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_changes_fraction_of_world() {
        let mut w = World::generate(WorldConfig::tiny(84));
        let phones = |w: &World, r| -> Vec<String> {
            w.rec(r)
                .get("phone")
                .iter()
                .map(|e| e.value.display_string())
                .collect()
        };
        let before: Vec<Vec<String>> = w.restaurants.iter().map(|&r| phones(&w, r)).collect();
        let events = churn_restaurants(&mut w, 0.5, Tick(10), 5);
        assert!(!events.is_empty());
        assert!(events.len() <= w.restaurants.len());
        for e in &events {
            if let ChurnEvent::PhoneChanged(id, new_phone) = e {
                let i = w.restaurants.iter().position(|r| r == id).unwrap();
                let now = phones(&w, *id);
                assert_ne!(now, before[i], "phone list must change");
                assert_eq!(now.len(), before[i].len(), "phone count preserved");
                let formatted = woc_lrec::AttrValue::Phone(new_phone.clone()).display_string();
                assert!(now.contains(&formatted), "new phone present");
            }
        }
    }

    #[test]
    fn churn_zero_rate_is_noop() {
        let mut w = World::generate(WorldConfig::tiny(85));
        let events = churn_restaurants(&mut w, 0.0, Tick(10), 5);
        assert!(events.is_empty());
    }
}
