//! Pages and their ground-truth annotations.

use serde::{Deserialize, Serialize};

use woc_lrec::{ConceptId, LrecId};

use crate::dom::Node;

/// What a page *is*, per ground truth. This is the label space for page
/// classification (paper §4.2 "Relational Classification") and the category
/// system behind the usage studies (§3: biz / search / category URLs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// Aggregator page about one business (Yelp "biz" URL).
    AggregatorBiz,
    /// Aggregator search-results page.
    AggregatorSearch,
    /// Aggregator pre-defined category page (e.g. "San Jose Italian Restaurants").
    AggregatorCategory,
    /// Aggregator front page.
    AggregatorHome,
    /// A restaurant's own homepage.
    RestaurantHome,
    /// A restaurant's menu page.
    RestaurantMenu,
    /// A restaurant's location/directions page.
    RestaurantLocation,
    /// A restaurant's coupons page.
    RestaurantCoupons,
    /// A restaurant's careers page.
    RestaurantCareers,
    /// City-guide content page in a non-event category (hotels, dining, …).
    CityCategory,
    /// City-guide events page (the positive class of experiment S3).
    CityEvents,
    /// Researcher homepage with a publication list.
    AcademicHome,
    /// Venue page listing publications.
    VenuePage,
    /// Product detail page.
    ProductPage,
    /// Product category listing.
    ProductList,
    /// Event detail page on the events aggregator.
    EventPage,
    /// Event listing page.
    EventList,
    /// Blog/news article.
    Article,
    /// Adversarial business page (spam farm, clone, stale mirror, or
    /// conflicting-fact site) asserting perturbed attribute values.
    AdversarialBiz,
    /// Adversarial site front page.
    AdversarialHome,
}

impl PageKind {
    /// Usage-study click category for this page, when it lives on the local
    /// aggregator (paper §3: 59% biz, 19% search, 11% category). `None` for
    /// pages outside that taxonomy.
    pub fn click_category(&self) -> Option<&'static str> {
        match self {
            PageKind::AggregatorBiz => Some("biz"),
            PageKind::AggregatorSearch => Some("search"),
            PageKind::AggregatorCategory => Some("c"),
            _ => None,
        }
    }
}

/// One ground-truth record rendered on a page, with the attribute values
/// *as rendered* (extraction is scored against these strings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthRecord {
    /// The concept of the record.
    pub concept: ConceptId,
    /// The world entity this rendering is about.
    pub entity: LrecId,
    /// `(attribute, rendered value)` pairs present on the page.
    pub fields: Vec<(String, String)>,
}

impl TruthRecord {
    /// Value of a field, if rendered.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Ground-truth annotation of a page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageTruth {
    /// The page's true kind.
    pub kind: PageKind,
    /// The single entity the page is about, when there is one.
    pub about: Option<LrecId>,
    /// All records rendered on the page (one for detail pages, many for lists).
    pub records: Vec<TruthRecord>,
    /// All entities *mentioned* in running text (for semantic linking).
    pub mentions: Vec<LrecId>,
}

/// A crawled page: URL, site, DOM, outgoing links and ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Page {
    /// Absolute URL.
    pub url: String,
    /// Site (hostname) the page belongs to.
    pub site: String,
    /// Page title.
    pub title: String,
    /// The DOM.
    pub dom: Node,
    /// Ground-truth annotation (never shown to extractors; used for
    /// training-label simulation and evaluation only).
    pub truth: PageTruth,
}

impl Page {
    /// All outgoing link hrefs in document order.
    pub fn links(&self) -> Vec<String> {
        self.dom
            .walk()
            .into_iter()
            .filter_map(|(_, n)| n.get_attr("href"))
            .map(str::to_string)
            .collect()
    }

    /// Full visible text of the page.
    pub fn text(&self) -> String {
        self.dom.text_content()
    }

    /// The path component of the URL (after the host).
    pub fn path(&self) -> &str {
        url_path(&self.url)
    }

    /// The top-level directory of the URL path (e.g. `calendar` for
    /// `/calendar/show-1.html`) — the relational signal of experiment S3.
    pub fn directory(&self) -> &str {
        let p = self.path().trim_start_matches('/');
        match p.find('/') {
            Some(i) => &p[..i],
            None => "",
        }
    }

    /// The page as it would travel over the wire: the DOM rendered to HTML.
    /// This is the byte stream a fault-injection layer can damage before a
    /// crawler re-parses it with [`Self::with_html`].
    pub fn to_html(&self) -> String {
        self.dom.to_html()
    }

    /// Rebuild this page from (possibly damaged) HTML bytes: the DOM is
    /// re-parsed leniently ([`crate::parse_html`] never panics), while URL,
    /// site, title and ground truth are carried over — truth describes the
    /// world entity the page renders, which damage in transit does not
    /// change.
    pub fn with_html(&self, html: &str) -> Page {
        Page {
            url: self.url.clone(),
            site: self.site.clone(),
            title: self.title.clone(),
            dom: crate::parse_html(html),
            truth: self.truth.clone(),
        }
    }

    /// Stable content fingerprint of the page, the change-detection signal
    /// of incremental maintenance: two pages fingerprint equal iff their
    /// URL, site, title, and DOM are identical. Ground truth is excluded —
    /// the pipeline never reads it, so truth-only edits must not dirty a
    /// page. The value depends only on the page's own bytes (FNV-1a with
    /// the same constants as the index digests), so it is independent of
    /// thread count and visit order by construction. Every string is
    /// length-prefixed and every node/field carries a distinct marker byte,
    /// making the encoding injective: any single-byte difference anywhere
    /// in the hashed content feeds different bytes to the hash.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.mark(0x01);
        h.str(&self.url);
        h.mark(0x02);
        h.str(&self.site);
        h.mark(0x03);
        h.str(&self.title);
        fingerprint_node(&self.dom, &mut h);
        h.0
    }
}

/// FNV-1a, same constants as `woc_index`'s digests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    /// Length-prefixed string: unambiguous regardless of content bytes.
    fn str(&mut self, s: &str) {
        self.bytes(&(s.len() as u64).to_le_bytes());
        self.bytes(s.as_bytes());
    }
    /// Structural marker byte separating fields and node types.
    fn mark(&mut self, m: u8) {
        self.bytes(&[m]);
    }
}

fn fingerprint_node(node: &Node, h: &mut Fnv) {
    match node {
        Node::Element {
            tag,
            attrs,
            children,
        } => {
            h.mark(0x04);
            h.str(tag);
            for (k, v) in attrs {
                // BTreeMap: attrs arrive in sorted, deterministic order.
                h.mark(0x05);
                h.str(k);
                h.mark(0x06);
                h.str(v);
            }
            h.mark(0x07);
            for c in children {
                fingerprint_node(c, h);
            }
            h.mark(0x08);
        }
        Node::Text(t) => {
            h.mark(0x09);
            h.str(t);
        }
    }
}

/// Path component of an absolute URL (empty string if malformed).
pub fn url_path(url: &str) -> &str {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .unwrap_or(url);
    match rest.find('/') {
        Some(i) => &rest[i..],
        None => "",
    }
}

/// Host component of an absolute URL.
pub fn url_host(url: &str) -> &str {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .unwrap_or(url);
    match rest.find('/') {
        Some(i) => &rest[..i],
        None => rest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Node;

    fn page(url: &str) -> Page {
        Page {
            url: url.to_string(),
            site: url_host(url).to_string(),
            title: "t".into(),
            dom: Node::elem("html").child(
                Node::elem("a")
                    .attr("href", "http://x.example.com/a")
                    .text_child("link"),
            ),
            truth: PageTruth {
                kind: PageKind::Article,
                about: None,
                records: vec![],
                mentions: vec![],
            },
        }
    }

    #[test]
    fn url_helpers() {
        assert_eq!(url_host("http://a.example.com/x/y"), "a.example.com");
        assert_eq!(url_path("http://a.example.com/x/y"), "/x/y");
        assert_eq!(url_path("http://a.example.com"), "");
        assert_eq!(url_host("https://b.example.com/"), "b.example.com");
    }

    #[test]
    fn page_directory() {
        let p = page("http://sanjose.example.com/calendar/show-1.html");
        assert_eq!(p.directory(), "calendar");
        // A file at the root has no directory.
        let p = page("http://sanjose.example.com/index.html");
        assert_eq!(p.directory(), "");
    }

    #[test]
    fn links_extracted() {
        let p = page("http://a.example.com/");
        assert_eq!(p.links(), vec!["http://x.example.com/a"]);
    }

    #[test]
    fn click_categories() {
        assert_eq!(PageKind::AggregatorBiz.click_category(), Some("biz"));
        assert_eq!(PageKind::AggregatorSearch.click_category(), Some("search"));
        assert_eq!(PageKind::AggregatorCategory.click_category(), Some("c"));
        assert_eq!(PageKind::Article.click_category(), None);
    }

    #[test]
    fn fingerprint_is_deterministic_and_clone_stable() {
        let p = page("http://a.example.com/x");
        assert_eq!(p.fingerprint(), p.fingerprint());
        assert_eq!(p.fingerprint(), p.clone().fingerprint());
    }

    #[test]
    fn fingerprint_sensitive_to_every_hashed_field() {
        let base = page("http://a.example.com/x");
        let fp = base.fingerprint();

        let mut m = base.clone();
        m.url = "http://a.example.com/y".into();
        assert_ne!(m.fingerprint(), fp, "url change must dirty the page");

        let mut m = base.clone();
        m.title = "u".into();
        assert_ne!(m.fingerprint(), fp, "title change must dirty the page");

        let mut m = base.clone();
        m.dom = Node::elem("html").child(
            Node::elem("a")
                .attr("href", "http://x.example.com/a")
                .text_child("lino"),
        );
        assert_ne!(m.fingerprint(), fp, "text change must dirty the page");

        let mut m = base.clone();
        m.dom = Node::elem("html").child(
            Node::elem("a")
                .attr("href", "http://x.example.com/b")
                .text_child("link"),
        );
        assert_ne!(m.fingerprint(), fp, "attr change must dirty the page");
    }

    #[test]
    fn fingerprint_ignores_ground_truth() {
        let base = page("http://a.example.com/x");
        let mut m = base.clone();
        m.truth.kind = PageKind::CityEvents;
        m.truth.mentions.push(LrecId(42));
        assert_eq!(
            m.fingerprint(),
            base.fingerprint(),
            "truth is invisible to the pipeline and must not dirty pages"
        );
    }

    #[test]
    fn fingerprint_distinguishes_text_grouping() {
        // "ab"+"c" vs "a"+"bc" as sibling text nodes: same concatenated
        // text, different DOM — length prefixes keep the encoding injective.
        let mut a = page("http://a.example.com/x");
        a.dom = Node::elem("p").text_child("ab").text_child("c");
        let mut b = page("http://a.example.com/x");
        b.dom = Node::elem("p").text_child("a").text_child("bc");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn truth_record_field_lookup() {
        let tr = TruthRecord {
            concept: woc_lrec::ConceptId(0),
            entity: woc_lrec::LrecId(1),
            fields: vec![("name".into(), "Gochi".into())],
        };
        assert_eq!(tr.field("name"), Some("Gochi"));
        assert_eq!(tr.field("zip"), None);
    }
}
