//! The academic domain: researcher homepages with publication lists, and
//! venue pages — the "list of publications from a personal homepage" of
//! paper §4 and the citation-segmentation workload for the sequence labeler.

// woc-lint: allow-file(panic-in-lib) — site generator: unwraps are choose() over
// statically non-empty pools.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

use woc_lrec::LrecId;

use crate::dom::Node;
use crate::page::{Page, PageKind, PageTruth, TruthRecord};
use crate::prose;
use crate::sites::style::SiteStyle;
use crate::world::{slugify, World};

/// A rendered citation string plus the true segmentation, used as labeled
/// data for training/evaluating the CRF-style sequence labeler.
#[derive(Debug, Clone)]
pub struct Citation {
    /// The rendered citation line.
    pub text: String,
    /// The publication entity.
    pub publication: LrecId,
    /// True segments: `(field, substring)` in order of appearance.
    pub segments: Vec<(String, String)>,
}

/// Render one citation for a publication in one of several formats.
pub fn render_citation(world: &World, pub_id: LrecId, format: usize) -> Citation {
    let rec = world.rec(pub_id);
    let title = rec.best_string("title").unwrap_or_default();
    let venue = rec.best_string("venue").unwrap_or_default();
    let year = rec.best_string("year").unwrap_or_default();
    let authors: Vec<String> = rec
        .get("author")
        .iter()
        .filter_map(|e| e.value.as_ref_id())
        .map(|id| world.attr(id, "name"))
        .collect();
    let author_str = authors.join(", ");
    let (text, segments) = match format % 3 {
        0 => (
            format!("{author_str}. {title}. In {venue}, {year}."),
            vec![
                ("authors".to_string(), author_str.clone()),
                ("title".to_string(), title.clone()),
                ("venue".to_string(), venue.clone()),
                ("year".to_string(), year.clone()),
            ],
        ),
        1 => (
            format!("{title} ({venue} {year}), with {author_str}."),
            vec![
                ("title".to_string(), title.clone()),
                ("venue".to_string(), venue.clone()),
                ("year".to_string(), year.clone()),
                ("authors".to_string(), author_str.clone()),
            ],
        ),
        _ => (
            format!("[{year}] {author_str}: {title}. {venue}."),
            vec![
                ("year".to_string(), year.clone()),
                ("authors".to_string(), author_str.clone()),
                ("title".to_string(), title.clone()),
                ("venue".to_string(), venue.clone()),
            ],
        ),
    };
    Citation {
        text,
        publication: pub_id,
        segments,
    }
}

/// Generate researcher homepages (one page per person, under a shared
/// `people.example.edu` host) and per-venue publication listings.
pub fn academic_pages(world: &World, rng: &mut StdRng) -> Vec<Page> {
    let mut pages = Vec::new();
    let host = "people.example.edu".to_string();
    let style = SiteStyle::sample(rng);

    // Person → publications map.
    let mut by_person: std::collections::HashMap<LrecId, Vec<LrecId>> =
        std::collections::HashMap::new();
    for &p in &world.publications {
        for e in world.rec(p).get("author") {
            if let Some(a) = e.value.as_ref_id() {
                by_person.entry(a).or_default().push(p);
            }
        }
    }

    for &person in &world.people {
        let name = world.attr(person, "name");
        let email = world.attr(person, "email");
        let url = format!("http://{host}/~{}/", slugify(&name));
        let institution = world
            .institutions
            .choose(rng)
            .map(|&i| world.attr(i, "name"))
            .unwrap_or_default();
        let topic = woc_textkit::gazetteer::RESEARCH_TOPICS.choose(rng).unwrap();
        let blurb = prose::research_blurb(rng, &name, topic, &institution);
        // Per-person citation format — realistic: each homepage formats its
        // list consistently, but formats differ across homepages.
        let fmt = rng.random_range(0..3);

        let pubs = by_person.get(&person).cloned().unwrap_or_default();
        let mut rows = Vec::new();
        let mut records = vec![TruthRecord {
            concept: world.concepts.person,
            entity: person,
            fields: vec![
                ("name".into(), name.clone()),
                ("email".into(), email.clone()),
            ],
        }];
        let mut mentions = vec![person];
        for &p in &pubs {
            let cit = render_citation(world, p, fmt);
            rows.push(vec![Node::elem("span")
                .class(&style.class_for("cit"))
                .text_child(&*cit.text)]);
            records.push(TruthRecord {
                concept: world.concepts.publication,
                entity: p,
                fields: cit.segments,
            });
            mentions.push(p);
        }
        let mut content = vec![
            style.headline(&name),
            style.para(&blurb),
            style.field("email", "Email", &email),
        ];
        if !rows.is_empty() {
            content.push(Node::elem("h2").text_child("Publications"));
            content.push(style.list("pubs", rows));
        }
        let nav = vec![
            ("Home".to_string(), url.clone()),
            ("Directory".to_string(), format!("http://{host}/")),
        ];
        pages.push(Page {
            url,
            site: host.clone(),
            title: format!("{name} - homepage"),
            dom: style.page(&name, nav, content),
            truth: PageTruth {
                kind: PageKind::AcademicHome,
                about: Some(person),
                records,
                mentions,
            },
        });
    }

    // Venue pages on a separate host with a separate style (a second academic
    // "source" whose records overlap personal homepages — bootstrapping fuel).
    let vhost = "proceedings.example.org".to_string();
    let vstyle = SiteStyle::sample(rng);
    let mut by_venue: std::collections::BTreeMap<String, Vec<LrecId>> =
        std::collections::BTreeMap::new();
    for &p in &world.publications {
        by_venue.entry(world.attr(p, "venue")).or_default().push(p);
    }
    for (venue, pubs) in &by_venue {
        let url = format!("http://{vhost}/venue/{}.html", slugify(venue));
        let fmt = rng.random_range(0..3);
        let mut rows = Vec::new();
        let mut records = Vec::new();
        for &p in pubs {
            let cit = render_citation(world, p, fmt);
            rows.push(vec![Node::elem("span")
                .class(&vstyle.class_for("cit"))
                .text_child(&*cit.text)]);
            records.push(TruthRecord {
                concept: world.concepts.publication,
                entity: p,
                fields: cit.segments,
            });
        }
        let content = vec![
            vstyle.headline(&format!("{venue} papers")),
            vstyle.list("pubs", rows),
        ];
        let nav = vec![("Venues".to_string(), format!("http://{vhost}/"))];
        pages.push(Page {
            url,
            site: vhost.clone(),
            title: format!("{venue} proceedings"),
            dom: vstyle.page(venue, nav, content),
            truth: PageTruth {
                kind: PageKind::VenuePage,
                about: None,
                mentions: pubs.clone(),
                records,
            },
        });
    }

    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    #[test]
    fn citation_contains_all_segments() {
        let w = World::generate(WorldConfig::tiny(31));
        for fmt in 0..3 {
            let cit = render_citation(&w, w.publications[0], fmt);
            for (field, seg) in &cit.segments {
                assert!(
                    cit.text.contains(seg),
                    "format {fmt}: segment {field}={seg:?} not in {:?}",
                    cit.text
                );
            }
            assert_eq!(cit.segments.len(), 4);
        }
    }

    #[test]
    fn every_person_gets_a_homepage() {
        let w = World::generate(WorldConfig::tiny(32));
        let mut rng = StdRng::seed_from_u64(1);
        let pages = academic_pages(&w, &mut rng);
        let homes = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::AcademicHome)
            .count();
        assert_eq!(homes, w.people.len());
    }

    #[test]
    fn venue_pages_cover_all_publications() {
        let w = World::generate(WorldConfig::tiny(33));
        let mut rng = StdRng::seed_from_u64(2);
        let pages = academic_pages(&w, &mut rng);
        let mut covered: std::collections::HashSet<woc_lrec::LrecId> =
            std::collections::HashSet::new();
        for p in pages.iter().filter(|p| p.truth.kind == PageKind::VenuePage) {
            for tr in &p.truth.records {
                covered.insert(tr.entity);
            }
        }
        for &p in &w.publications {
            assert!(covered.contains(&p));
        }
    }

    #[test]
    fn homepage_lists_own_publications() {
        let w = World::generate(WorldConfig::tiny(34));
        let mut rng = StdRng::seed_from_u64(3);
        let pages = academic_pages(&w, &mut rng);
        for p in pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::AcademicHome)
        {
            let person = p.truth.about.unwrap();
            for tr in &p.truth.records {
                if tr.concept == w.concepts.publication {
                    let authors: Vec<_> = w
                        .rec(tr.entity)
                        .get("author")
                        .iter()
                        .filter_map(|e| e.value.as_ref_id())
                        .collect();
                    assert!(
                        authors.contains(&person),
                        "listed pub must be authored by page owner"
                    );
                }
            }
        }
    }
}
